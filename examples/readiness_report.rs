//! Reproduce the paper's Table 2 (the 5×5 maturity matrix) from the
//! executable framework, then grade all four domain archetype outputs
//! against it.
//!
//! ```sh
//! cargo run --release --example readiness_report
//! ```

use drai::core::readiness::{MaturityMatrix, ProcessingStage, ReadinessLevel};
use drai::core::ReadinessAssessor;
use drai::domains::{bio, climate, fusion, materials};
use drai::io::sink::MemSink;
use std::sync::Arc;

fn main() {
    // --- Table 2, regenerated from the framework. ---
    println!("Table 2: conceptual maturity matrix (N/A cells shown as —)\n");
    print!("{:<24}", "Level");
    for stage in ProcessingStage::ALL {
        print!("{:<14}", stage.label());
    }
    println!();
    for (level, cells) in MaturityMatrix::rows() {
        print!("{:<24}", level.to_string());
        for cell in cells {
            match cell {
                Some(text) => {
                    let short: String = text.chars().take(12).collect();
                    print!("{short:<14}");
                }
                None => print!("{:<14}", "—"),
            }
        }
        println!();
    }
    println!(
        "\napplicable cells: {} (triangular, as in the paper)",
        MaturityMatrix::applicable_cell_count()
    );

    // --- Grade all four archetype outputs. ---
    println!("\nassessing domain archetype outputs:\n");
    let assessor = ReadinessAssessor::new();

    let sink = Arc::new(MemSink::new());
    let climate_run = climate::run(
        &climate::ClimateConfig {
            timesteps: 12,
            src_grid: drai::tensor::LatLonGrid::global(16, 32),
            dst_grid: drai::tensor::LatLonGrid::global(8, 16),
            ..climate::ClimateConfig::default()
        },
        sink.clone(),
    )
    .expect("climate");
    let fusion_run = fusion::run(
        &fusion::FusionConfig {
            shots: 12,
            shot_seconds: 0.5,
            clock_hz: 500.0,
            window_len: 32,
            window_stride: 16,
            ..fusion::FusionConfig::default()
        },
        sink.clone(),
    )
    .expect("fusion");
    let bio_run = bio::run(
        &bio::BioConfig {
            patients: 24,
            tile_len: 64,
            ..bio::BioConfig::default()
        },
        sink.clone(),
    )
    .expect("bio");
    let materials_run = materials::run(
        &materials::MaterialsConfig {
            structures: 16,
            cell_atoms: 2,
            ..materials::MaterialsConfig::default()
        },
        sink,
    )
    .expect("materials");

    for run in [&climate_run, &fusion_run, &bio_run, &materials_run] {
        let a = assessor.assess(&run.manifest).expect("valid manifest");
        println!(
            "  {:<12} ({:<12}) -> {}",
            run.manifest.name, run.manifest.domain, a.overall
        );
        for (stage, level) in &a.per_stage {
            let bar_len = level.number() as usize;
            println!(
                "      {:<11} {}{}",
                stage.label(),
                "█".repeat(bar_len),
                "░".repeat(5 - bar_len)
            );
        }
    }

    // --- Show what a deficiency report looks like. ---
    println!("\nexample deficiency report (climate manifest with sharding removed):");
    let mut crippled = climate_run.manifest.clone();
    crippled.sharded = false;
    crippled.split_assigned = false;
    let a = assessor.assess(&crippled).expect("valid manifest");
    println!("  overall drops to: {}", a.overall);
    for d in &a.deficiencies {
        println!(
            "  blocked at {} / {}: {}",
            d.blocked_level, d.stage, d.reason
        );
    }
    assert_ne!(
        a.overall,
        ReadinessLevel::FullyAiReady,
        "assessor must notice the missing shards"
    );
}
