//! Materials archetype end-to-end: synthetic DFT-like structures,
//! `parse → normalize → encode → shard`, then scan the BP footer index and
//! fetch one graph — the HydraGNN-style consumption pattern.
//!
//! ```sh
//! cargo run --release --example materials_graphs
//! ```

use drai::core::ReadinessAssessor;
use drai::domains::materials::{self, MaterialsConfig};
use drai::formats::bp::BpReader;
use drai::io::sink::{MemSink, StorageSink};
use drai::tensor::Tensor;
use std::sync::Arc;

fn main() {
    let cfg = MaterialsConfig {
        structures: 64,
        cell_atoms: 3, // 27 atoms per structure
        ..MaterialsConfig::default()
    };
    let sink = Arc::new(MemSink::new());
    let run = materials::run(&cfg, sink.clone()).expect("materials pipeline");

    println!("materials archetype: {} structures", cfg.structures);
    println!("\nstage metrics:");
    for s in &run.stages {
        println!(
            "  {:<10} [{:<10}] {:>5} records, {:>8.2} MiB/s",
            s.name,
            s.kind.to_string(),
            s.throughput.records,
            s.throughput.mib_per_sec()
        );
    }
    let assessment = ReadinessAssessor::new()
        .assess(&run.manifest)
        .expect("valid manifest");
    println!("\nreadiness: {}", assessment.overall);

    // The BP read path: cheap footer scan first, then selective fetch.
    let bytes = sink.read_file("materials/train.bp").expect("train bp");
    let reader = BpReader::open(&bytes).expect("bp footer");
    println!("\ntrain.bp: {} process groups", reader.group_count());
    let meta = reader.metadata();
    let total_atoms: usize = meta
        .iter()
        .map(|g| {
            g.vars
                .iter()
                .find(|(n, _, _)| n == "node_features")
                .map(|(_, _, s)| s[0])
                .unwrap_or(0)
        })
        .sum();
    println!("footer scan (no payload reads): {total_atoms} atoms total");

    let g = reader.read_group(0).expect("group 0");
    let nodes: Tensor<f32> = g.var("node_features").unwrap().to_tensor().expect("nodes");
    let edges: Tensor<i64> = g.var("edges").unwrap().to_tensor().expect("edges");
    let energy: Tensor<f64> = g
        .var("energy_per_atom")
        .unwrap()
        .to_tensor()
        .expect("energy");
    println!(
        "first graph: {} atoms, {} directed edges, normalized E/atom = {:+.3}",
        nodes.shape()[0],
        edges.shape()[0],
        energy.get(&[0]).unwrap()
    );

    // Species distribution over the whole train split shows the class
    // imbalance the paper flags for materials data.
    let mut species_counts = vec![0usize; materials::SPECIES.len()];
    for gi in 0..reader.group_count() {
        let g = reader.read_group(gi).expect("group");
        let nodes: Tensor<f32> = g.var("node_features").unwrap().to_tensor().expect("nodes");
        for lane in nodes.lanes() {
            if let Some(k) = lane.as_slice().iter().position(|&x| x > 0.5) {
                species_counts[k] += 1;
            }
        }
    }
    println!("\nspecies distribution (train):");
    for ((name, target), count) in materials::SPECIES.iter().zip(&species_counts) {
        println!("  {name:<3} {count:>6} atoms (target abundance {target:.2})");
    }
    println!("\nprovenance events: {}", run.ledger.len());
}
