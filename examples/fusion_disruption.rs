//! Fusion archetype end-to-end: synthesize an MDSplus-like shot store,
//! run `extract → align → normalize → shard`, and inspect the TFRecord
//! shards and disruption labels.
//!
//! ```sh
//! cargo run --release --example fusion_disruption
//! ```

use drai::core::ReadinessAssessor;
use drai::domains::fusion::{self, FusionConfig, ShotStore};
use drai::formats::example::Example;
use drai::formats::tfrecord;
use drai::io::shard::ShardReader;
use drai::io::sink::MemSink;
use std::sync::Arc;

fn main() {
    let cfg = FusionConfig {
        shots: 48,
        shot_seconds: 1.5,
        disruption_fraction: 0.35,
        ..FusionConfig::default()
    };

    // Peek at the raw pathologies before the pipeline cleans them up.
    let store = ShotStore::generate(&cfg);
    let disrupted = store
        .shots()
        .iter()
        .filter(|s| s.t_disrupt.is_some())
        .count();
    let dead: usize = store
        .shots()
        .iter()
        .map(|s| fusion::CHANNELS.len() - s.channels.len())
        .sum();
    println!(
        "shot store: {} shots, {} disrupted, {} dead channels total",
        store.shots().len(),
        disrupted,
        dead
    );
    for ch in &store.shots()[0].channels {
        println!(
            "  {:<8} {:>7} samples @ {:>7.0} Hz",
            ch.name,
            ch.values.len(),
            ch.mean_rate().unwrap_or(0.0)
        );
    }

    let sink = Arc::new(MemSink::new());
    let run = fusion::run(&cfg, sink.clone()).expect("fusion pipeline");

    println!("\nstage metrics:");
    for s in &run.stages {
        println!(
            "  {:<10} [{:<10}] {:>7} records, {:>8.2} MiB/s",
            s.name,
            s.kind.to_string(),
            s.throughput.records,
            s.throughput.mib_per_sec()
        );
    }
    let assessment = ReadinessAssessor::new()
        .assess(&run.manifest)
        .expect("valid manifest");
    println!("\nreadiness: {}", assessment.overall);

    // Label balance across the training shards.
    let reader = ShardReader::open("fusion/train", sink.as_ref()).expect("train shards");
    let mut positives = 0u64;
    let mut total = 0u64;
    for i in 0..reader.manifest().shards.len() {
        for record in reader.read_shard(i).expect("shard read") {
            for frame in tfrecord::read_records(&record).expect("tfrecord") {
                let ex = Example::decode(&frame).expect("tf.Example");
                total += 1;
                if ex.ints("label").map(|l| l[0]) == Some(1) {
                    positives += 1;
                }
            }
        }
    }
    println!(
        "train windows: {total} ({positives} disruption-positive, {:.1}%)",
        100.0 * positives as f64 / total.max(1) as f64
    );
    println!("provenance events: {}", run.ledger.len());
}
