//! Figure 1's feedback arrow: "data preparation outcomes inform subsequent
//! model training, and model performance provides feedback that triggers
//! further data refinement and augmentation."
//!
//! This example builds a cleaning pipeline whose outlier threshold is
//! refined by a (stand-in) model-evaluation loop: each pass cleans the
//! data, a proxy model scores it, and poor scores tighten the threshold
//! and trigger augmentation until the score gate passes.
//!
//! ```sh
//! cargo run --example iterative_refinement
//! ```

use drai::core::pipeline::{run_iterative, Feedback, Pipeline};
use drai::core::quality::QualityReport;
use drai::core::readiness::ProcessingStage;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Clone)]
struct WorkingSet {
    /// Samples (some contaminated with sensor glitches).
    values: Vec<f64>,
    /// Current outlier-clipping threshold in sigma units.
    clip_sigma: f64,
}

fn main() {
    // Contaminated measurements: a clean signal plus gross glitches.
    let mut rng = SmallRng::seed_from_u64(99);
    let mut values: Vec<f64> = (0..20_000)
        .map(|i| (i as f64 * 0.003).sin() * 2.0 + rng.gen::<f64>())
        .collect();
    for _ in 0..200 {
        let at = rng.gen_range(0..values.len());
        values[at] = rng.gen_range(50.0..500.0); // glitch
    }

    let pipeline: Pipeline<WorkingSet> = Pipeline::builder("refine")
        .stage(
            "clean",
            ProcessingStage::Preprocess,
            |mut ws: WorkingSet, c| {
                // Clip at the current sigma threshold.
                let mean = ws.values.iter().sum::<f64>() / ws.values.len() as f64;
                let var = ws
                    .values
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>()
                    / ws.values.len() as f64;
                let limit = mean + ws.clip_sigma * var.sqrt();
                let mut clipped = 0;
                for v in &mut ws.values {
                    if *v > limit {
                        *v = limit;
                        clipped += 1;
                    }
                }
                c.records = clipped;
                Ok(ws)
            },
        )
        .build();

    let result = run_iterative(
        &pipeline,
        WorkingSet {
            values,
            clip_sigma: 20.0,
        },
        12,
        |ws| {
            // "Model evaluation" proxy: training is assumed to degrade with
            // outlier contamination; gate at < 0.1% gross outliers.
            let q = QualityReport::compute("signal", &ws.values);
            if q.outlier_fraction < 0.001 {
                Feedback::Accept
            } else {
                Feedback::Refine(format!(
                    "outlier fraction {:.3}% too high at clip {:.1}σ",
                    q.outlier_fraction * 100.0,
                    ws.clip_sigma
                ))
            }
        },
        |mut ws, reason| {
            println!("refine: {reason}");
            ws.clip_sigma *= 0.6; // tighten and re-run
            ws
        },
    )
    .expect("refinement loop");

    println!(
        "\nconverged: {} after {} passes ({} refinements)",
        result.converged,
        result.passes,
        result.refinements.len()
    );
    let final_q = QualityReport::compute("signal", &result.output.values);
    println!(
        "final quality: mean {:.3}, std {:.3}, outliers {:.4}%",
        final_q.mean,
        final_q.std,
        final_q.outlier_fraction * 100.0
    );
    assert!(result.converged, "refinement loop failed to converge");
}
