//! Quickstart: take a raw synthetic dataset from readiness level 1 to
//! level 5 and watch the assessor grade each step.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use drai::core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai::core::pipeline::{Pipeline, StageCounters};
use drai::core::readiness::ProcessingStage;
use drai::core::{ReadinessAssessor, ReadinessLevel};
use drai::io::shard::{ShardSpec, ShardWriter};
use drai::io::sink::MemSink;

fn main() {
    println!("drai quickstart: raw -> fully AI-ready\n");
    let assessor = ReadinessAssessor::new();

    // A raw dataset: 1,000 records, nothing prepared.
    let mut manifest = DatasetManifest::raw("quickstart", "demo", Modality::Tabular, 1_000);
    report(&assessor, &manifest);

    // Level 2: validated ingestion into a standard format + initial alignment.
    manifest.standard_format = true;
    manifest.ingest_validated = true;
    manifest.aligned_initial = true;
    report(&assessor, &manifest);

    // Level 3: metadata, standardized alignment, normalization, basic labels.
    manifest.metadata_enriched = true;
    manifest.schema.push(VariableSpec {
        name: "x".into(),
        dtype: drai::tensor::DType::F64,
        unit: "1".into(),
        shape: vec![16],
    });
    manifest.aligned_standardized = true;
    manifest.normalized_initial = true;
    manifest.label_coverage = 0.4;
    report(&assessor, &manifest);

    // Level 4: optimized ingest, finalized stats, full labels, features.
    manifest.high_throughput_ingest = true;
    manifest.normalized_final = true;
    manifest.label_coverage = 1.0;
    manifest.features_extracted = true;
    report(&assessor, &manifest);

    // Level 5: automate everything and actually shard the data.
    let sink = MemSink::new();
    let records: Vec<Vec<u8>> = (0..1_000u32).map(|i| i.to_le_bytes().repeat(32)).collect();
    let shard_manifest = ShardWriter::new(ShardSpec::new("train", 16 * 1024), &sink)
        .write_all(&records)
        .expect("sharding in-memory records");
    println!(
        "  sharded {} records into {} shards ({} payload bytes)",
        shard_manifest.total_records,
        shard_manifest.shards.len(),
        shard_manifest.payload_bytes,
    );
    manifest.ingest_automated = true;
    manifest.alignment_automated = true;
    manifest.transform_audited = true;
    manifest.features_validated = true;
    manifest.split_assigned = true;
    manifest.sharded = true;
    report(&assessor, &manifest);

    // Pipelines carry per-stage metrics too.
    let pipeline: Pipeline<Vec<f64>> = Pipeline::builder("demo")
        .stage(
            "clean",
            ProcessingStage::Preprocess,
            |v: Vec<f64>, c: &mut StageCounters| {
                c.records = v.len() as u64;
                Ok(v.into_iter().filter(|x| x.is_finite()).collect())
            },
        )
        .stage("normalize", ProcessingStage::Transform, |v: Vec<f64>, c| {
            c.records = v.len() as u64;
            let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
            Ok(v.into_iter().map(|x| x - mean).collect())
        })
        .build();
    let run = pipeline
        .run((0..10_000).map(|i| i as f64).collect())
        .expect("demo pipeline");
    println!("\npipeline '{}' stage timings:", pipeline.name());
    for s in &run.stages {
        println!(
            "  {:<10} [{}] {} records in {:?}",
            s.name, s.kind, s.throughput.records, s.throughput.elapsed
        );
    }
}

fn report(assessor: &ReadinessAssessor, manifest: &DatasetManifest) {
    let a = assessor.assess(manifest).expect("valid manifest");
    print!("readiness: {}", a.overall);
    if a.overall == ReadinessLevel::FullyAiReady {
        println!("  — ready to train.");
    } else if let Some(d) = a.blocking() {
        println!("  (next blocked by {}: {})", d.stage, d.reason);
    } else {
        println!();
    }
}
