//! Bio/health archetype end-to-end: synthetic EHR + genomes with embedded
//! PHI, `encode → anonymize → fuse → secure-shard`, then decrypt and read
//! back as the training job inside the enclave would.
//!
//! ```sh
//! cargo run --release --example bio_secure_enclave
//! ```

use drai::core::ReadinessAssessor;
use drai::domains::bio::{self, BioConfig};
use drai::formats::h5lite::H5File;
use drai::io::sink::{MemSink, StorageSink};
use drai::tensor::Tensor;
use drai::transform::anonymize::scan_for_identifiers;
use drai::transform::split::{assign, Split};
use std::sync::Arc;

fn main() {
    let cfg = BioConfig {
        patients: 96,
        tile_len: 512,
        ..BioConfig::default()
    };
    let sink = Arc::new(MemSink::new());

    // Show the intake audit: raw data trips the PHI scanner.
    bio::generate_raw(&cfg, sink.as_ref()).expect("generate raw EHR+FASTA");
    let raw_csv = sink.read_file("raw/ehr.csv").expect("raw csv");
    let findings = scan_for_identifiers(&String::from_utf8_lossy(
        &raw_csv[..2000.min(raw_csv.len())],
    ));
    println!(
        "intake PHI audit on raw EHR (first 2 KB): {} findings, e.g. {:?}",
        findings.len(),
        findings.first().map(|(k, _)| k)
    );

    let run = bio::run(&cfg, sink.clone()).expect("bio pipeline");
    println!("\nstage metrics:");
    for s in &run.stages {
        println!(
            "  {:<14} [{:<10}] {:>5} records",
            s.name,
            s.kind.to_string(),
            s.throughput.records
        );
    }
    let assessment = ReadinessAssessor::new()
        .assess(&run.manifest)
        .expect("valid manifest");
    println!(
        "\nreadiness: {} (anonymization verified)",
        assessment.overall
    );

    // The at-rest blobs are ciphertext.
    for name in &run.shard_files {
        let enc = sink.read_file(name).expect("blob");
        let parse_fails = H5File::from_bytes(&enc).is_err();
        println!(
            "  {name}: {} bytes, parses-without-key: {}",
            enc.len(),
            !parse_fails
        );
    }

    // Decrypt the training container with the operator secret.
    // (Recompute the per-split count to rebuild the nonce, as the training
    // job would from its job metadata.)
    // We count by re-deriving the pseudonym split assignment.
    let salt = format!("{}::anon", cfg.secret);
    let train_count = (0..cfg.patients)
        .filter(|p| {
            let pseudonym =
                drai::transform::anonymize::hash_identifier(&salt, &format!("patient-{p:04}"));
            assign(&pseudonym, cfg.seed, cfg.fractions).unwrap() == Split::Train
        })
        .count();
    let f = bio::open_secure_shard(&cfg, sink.as_ref(), Split::Train, train_count)
        .expect("decrypt train container");
    let patients = f.children("/patients");
    println!("\ndecrypted train container: {} patients", patients.len());
    if let Some(first) = patients.first() {
        let labs: Tensor<f32> = f.tensor(&format!("{first}/labs")).expect("labs");
        let onehot: Tensor<f32> = f.tensor(&format!("{first}/onehot")).expect("onehot");
        println!(
            "  first patient: labs {:?} (z-scored), onehot {:?}",
            labs.shape(),
            onehot.shape()
        );
    }
    println!("provenance events: {}", run.ledger.len());
}
