//! Climate archetype end-to-end: synthesize CMIP-like NetCDF, run
//! `download → regrid → normalize → shard`, and verify the NPZ shards.
//!
//! ```sh
//! cargo run --release --example climate_pipeline
//! ```

use drai::core::ReadinessAssessor;
use drai::domains::climate::{self, ClimateConfig};
use drai::formats::npy::read_npy;
use drai::formats::zip::read_zip;
use drai::io::shard::ShardReader;
use drai::io::sink::LocalFs;
use drai::tensor::LatLonGrid;
use std::sync::Arc;

fn main() {
    let workdir = std::env::temp_dir().join("drai-climate-example");
    let _ = std::fs::remove_dir_all(&workdir);
    let sink = Arc::new(LocalFs::new(&workdir).expect("create work dir"));

    let cfg = ClimateConfig {
        src_grid: LatLonGrid::global(48, 96),
        dst_grid: LatLonGrid::global(32, 64),
        timesteps: 48,
        ..ClimateConfig::default()
    };
    println!(
        "climate archetype: {} timesteps, {}x{} -> {}x{}",
        cfg.timesteps,
        cfg.src_grid.nlat(),
        cfg.src_grid.nlon(),
        cfg.dst_grid.nlat(),
        cfg.dst_grid.nlon()
    );

    let run = climate::run(&cfg, sink.clone()).expect("climate pipeline");

    println!("\nstage metrics:");
    for s in &run.stages {
        println!(
            "  {:<10} [{:<10}] {:>6} records, {:>8.2} MiB/s",
            s.name,
            s.kind.to_string(),
            s.throughput.records,
            s.throughput.mib_per_sec()
        );
    }

    let assessment = ReadinessAssessor::new()
        .assess(&run.manifest)
        .expect("valid manifest");
    println!("\nreadiness: {}", assessment.overall);
    println!("provenance events: {}", run.ledger.len());
    println!("shard files: {}", run.shard_files.len());

    // Consume one training shard the way a data loader would.
    let reader = ShardReader::open("climate/train", sink.as_ref()).expect("train shards");
    let records = reader.read_shard(0).expect("shard 0");
    let entries = read_zip(&records[0]).expect("npz record");
    println!("\nfirst record members:");
    for e in &entries {
        let t = read_npy::<f32>(&e.data).expect("npy member");
        let mean = t.mean().unwrap_or(0.0);
        println!("  {:<8} shape {:?} mean {:+.3}", e.name, t.shape(), mean);
    }

    // Everything above was instrumented through the global telemetry
    // registry; dump the interesting latency histograms and counters.
    let snap = drai::telemetry::Registry::global().snapshot();
    println!("\ntelemetry ({} spans recorded):", snap.spans.len());
    for (name, h) in &snap.histograms {
        println!(
            "  {:<32} n={:<5} mean={:>9.1}us p99={:>9.1}us",
            name,
            h.count,
            h.mean / 1e3,
            h.p99 as f64 / 1e3
        );
    }
    for (name, v) in &snap.counters {
        println!("  {name:<32} {v}");
    }
    let telemetry_path = workdir.join("telemetry.json");
    std::fs::write(&telemetry_path, snap.to_json()).expect("write telemetry");
    println!("\nsnapshot written to {}", telemetry_path.display());
    println!("artifacts under {}", workdir.display());
}
