//! `drai` — command-line front end for the DRAI pipelines.
//!
//! ```text
//! drai run <climate|fusion|bio|materials> [--out DIR] [--seed N] [--scale N]
//! drai matrix                      # print the Table 2 maturity matrix
//! drai assess <manifest.json>      # grade a dataset manifest file
//! drai card <domain> [--out DIR]   # run a pipeline and emit its dataset card
//! ```

use drai::core::card::DatasetCard;
use drai::core::quality::QualityReport;
use drai::core::readiness::{MaturityMatrix, ProcessingStage};
use drai::core::ReadinessAssessor;
use drai::domains::{bio, climate, fusion, materials, DomainRun};
use drai::io::sink::LocalFs;
use drai::tensor::LatLonGrid;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("card") => cmd_run(&args[1..], true),
        Some("matrix") => {
            cmd_matrix();
            ExitCode::SUCCESS
        }
        Some("assess") => cmd_assess(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  drai run <climate|fusion|bio|materials> [--out DIR] [--seed N] [--scale N]\n  \
                 drai card <domain> [--out DIR]\n  drai matrix\n  drai assess <manifest.json>"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_run(args: &[String], emit_card: bool) -> ExitCode {
    let Some(domain) = args.first() else {
        eprintln!("missing domain (climate|fusion|bio|materials)");
        return ExitCode::FAILURE;
    };
    let out = flag(args, "--out").unwrap_or_else(|| format!("./drai-out/{domain}"));
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_025);
    let scale: usize = flag(args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);

    let sink = match LocalFs::new(&out) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot open output dir {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result: Result<DomainRun, _> = match domain.as_str() {
        "climate" => climate::run(
            &climate::ClimateConfig {
                src_grid: LatLonGrid::global(24 * scale, 48 * scale),
                dst_grid: LatLonGrid::global(16 * scale, 32 * scale),
                timesteps: 16 * scale,
                seed,
                ..climate::ClimateConfig::default()
            },
            sink,
        ),
        "fusion" => fusion::run(
            &fusion::FusionConfig {
                shots: 16 * scale,
                seed,
                ..fusion::FusionConfig::default()
            },
            sink,
        ),
        "bio" => bio::run(
            &bio::BioConfig {
                patients: 48 * scale,
                seed,
                ..bio::BioConfig::default()
            },
            sink,
        ),
        "materials" => materials::run(
            &materials::MaterialsConfig {
                structures: 32 * scale,
                seed,
                ..materials::MaterialsConfig::default()
            },
            sink,
        ),
        other => {
            eprintln!("unknown domain {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let run = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{} pipeline complete -> {}", domain, out);
    for s in &run.stages {
        println!(
            "  {:<14} [{:<10}] {:>8} records  {:>10.3} ms",
            s.name,
            s.kind.to_string(),
            s.throughput.records,
            s.throughput.elapsed.as_secs_f64() * 1e3
        );
    }
    let assessment = match ReadinessAssessor::new().assess(&run.manifest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("assessment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("readiness: {}", assessment.overall);
    println!(
        "shards: {} files, provenance: {} events",
        run.shard_files.len(),
        run.ledger.len()
    );

    // Persist the manifest + audit log next to the data.
    let manifest_json = run.manifest.to_json().to_string_compact();
    let _ = std::fs::write(format!("{out}/manifest.json"), &manifest_json);
    let _ = std::fs::write(format!("{out}/provenance.jsonl"), run.ledger.to_jsonl());

    if emit_card {
        let card = DatasetCard::new(run.manifest.clone(), assessment, demo_quality(&run));
        let path = format!("{out}/DATASET_CARD.md");
        if std::fs::write(&path, card.to_markdown()).is_ok() {
            println!("dataset card written to {path}");
        }
        let _ = std::fs::write(
            format!("{out}/dataset_card.json"),
            card.to_json().to_string_compact(),
        );
    }
    ExitCode::SUCCESS
}

/// Cheap post-hoc quality snapshot for the card: label coverage and
/// missing fraction come from the manifest; per-variable stats use the
/// schema names over a sampled probe (the card records the probe size).
fn demo_quality(run: &DomainRun) -> Vec<QualityReport> {
    run.manifest
        .schema
        .iter()
        .map(|v| {
            // The shards are binary; rather than re-decode every format in
            // the CLI we record the variable as "not re-profiled" with an
            // empty probe. The domain examples show full profiling.
            QualityReport::compute(&v.name, &[])
        })
        .collect()
}

fn cmd_matrix() {
    println!("Data Readiness maturity matrix (paper Table 2):\n");
    for (level, cells) in MaturityMatrix::rows() {
        println!("{level}");
        for (stage, cell) in ProcessingStage::ALL.iter().zip(cells) {
            match cell {
                Some(text) => println!("  {:<11} {}", stage.label(), text),
                None => println!("  {:<11} —", stage.label()),
            }
        }
        println!();
    }
}

fn cmd_assess(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("missing manifest path");
        return ExitCode::FAILURE;
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("cannot read {path}");
        return ExitCode::FAILURE;
    };
    // Manifest JSON decoding: reuse the evidence keys.
    let Ok(json) = drai::io::json::Json::parse(&text) else {
        eprintln!("{path} is not valid JSON");
        return ExitCode::FAILURE;
    };
    let Some(manifest) = manifest_from_json(&json) else {
        eprintln!("{path} is not a drai manifest");
        return ExitCode::FAILURE;
    };
    match ReadinessAssessor::new().assess(&manifest) {
        Ok(a) => {
            println!("{}: {}", manifest.name, a.overall);
            for (stage, level) in &a.per_stage {
                println!("  {:<11} {}", stage.label(), level);
            }
            for d in &a.deficiencies {
                println!(
                    "  blocked at {} / {}: {}",
                    d.blocked_level, d.stage, d.reason
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("assessment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn manifest_from_json(v: &drai::io::json::Json) -> Option<drai::core::DatasetManifest> {
    use drai::core::dataset::Modality;
    use drai::io::json::Json;
    let name = v.get("name")?.as_str()?;
    let domain = v.get("domain")?.as_str()?;
    let modality = Modality::from_name(v.get("modality")?.as_str()?)?;
    let records = v.get("records")?.as_u64()?;
    let mut m = drai::core::DatasetManifest::raw(name, domain, modality, records);
    let e = v.get("evidence")?;
    let b = |key: &str| e.get(key).and_then(Json::as_bool).unwrap_or(false);
    let f = |key: &str| e.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    m.standard_format = b("standard_format");
    m.ingest_validated = b("ingest_validated");
    m.metadata_enriched = b("metadata_enriched");
    m.high_throughput_ingest = b("high_throughput_ingest");
    m.ingest_automated = b("ingest_automated");
    m.aligned_initial = b("aligned_initial");
    m.aligned_standardized = b("aligned_standardized");
    m.alignment_automated = b("alignment_automated");
    m.normalized_initial = b("normalized_initial");
    m.normalized_final = b("normalized_final");
    m.transform_audited = b("transform_audited");
    m.requires_anonymization = b("requires_anonymization");
    m.anonymized = b("anonymized");
    m.label_coverage = f("label_coverage");
    m.features_extracted = b("features_extracted");
    m.features_validated = b("features_validated");
    m.split_assigned = b("split_assigned");
    m.sharded = b("sharded");
    m.missing_fraction = f("missing_fraction");
    // Schema entries (needed for the level-3 criterion).
    if let Some(schema) = v.get("schema").and_then(Json::as_arr) {
        for s in schema {
            m.schema.push(drai::core::VariableSpec {
                name: s.get("name")?.as_str()?.to_string(),
                dtype: drai::tensor::DType::F64,
                unit: s.get("unit")?.as_str()?.to_string(),
                shape: s
                    .get("shape")?
                    .as_arr()?
                    .iter()
                    .filter_map(|d| d.as_u64().map(|x| x as usize))
                    .collect(),
            });
        }
    }
    Some(m)
}
