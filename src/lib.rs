//! # drai — Data Readiness for Scientific AI at Scale
//!
//! Facade crate re-exporting the complete DRAI workspace: the readiness
//! framework (`core`), the numeric substrate (`tensor`), scientific
//! container formats (`formats`), the parallel shard/I-O engine (`io`),
//! preprocessing kernels (`transform`), provenance capture (`provenance`),
//! the simulated parallel filesystem (`sim`), runtime metrics
//! (`telemetry`), the content-addressed stage-result cache (`cache`),
//! the four domain archetypes (`domains`), and the multi-tenant job
//! scheduler (`sched`) that runs them as a shared service.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.
//!
//! ```
//! use drai::core::{ReadinessAssessor, ReadinessLevel};
//! use drai::domains::materials::{self, MaterialsConfig};
//! use drai::io::sink::MemSink;
//! use std::sync::Arc;
//!
//! let cfg = MaterialsConfig { structures: 4, cell_atoms: 2, ..MaterialsConfig::default() };
//! let run = materials::run(&cfg, Arc::new(MemSink::new())).unwrap();
//! let grade = ReadinessAssessor::new().assess(&run.manifest).unwrap();
//! assert_eq!(grade.overall, ReadinessLevel::FullyAiReady);
//! ```

#![forbid(unsafe_code)]

pub use drai_cache as cache;
pub use drai_core as core;
pub use drai_domains as domains;
pub use drai_formats as formats;
pub use drai_io as io;
pub use drai_provenance as provenance;
pub use drai_sched as sched;
pub use drai_sim as sim;
pub use drai_telemetry as telemetry;
pub use drai_tensor as tensor;
pub use drai_transform as transform;
