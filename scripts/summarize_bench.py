#!/usr/bin/env python3
"""Summarize criterion results (target/criterion) into a Markdown table.

Usage: python3 scripts/summarize_bench.py [criterion_dir]
"""
import json
import os
import sys


def fmt_time(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.3f} s"


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else "target/criterion"
    rows = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if "estimates.json" not in filenames or not dirpath.endswith(os.sep + "new"):
            continue
        bench_dir = os.path.dirname(dirpath)
        rel = os.path.relpath(bench_dir, root)
        try:
            with open(os.path.join(dirpath, "estimates.json")) as f:
                est = json.load(f)
            mean_ns = est["mean"]["point_estimate"]
        except (OSError, KeyError, json.JSONDecodeError):
            continue
        rows.append((rel.replace(os.sep, "/"), mean_ns))
    rows.sort()
    print("| benchmark | mean |")
    print("|---|---|")
    for name, ns in rows:
        print(f"| {name} | {fmt_time(ns)} |")


if __name__ == "__main__":
    main()
