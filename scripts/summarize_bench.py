#!/usr/bin/env python3
"""Summarize bench results into Markdown tables.

Two modes:

  python3 scripts/summarize_bench.py [criterion_dir]
      Walk criterion output (default target/criterion) and print one
      row per benchmark with its mean time.

  python3 scripts/summarize_bench.py --bench-reports [repo_root]
      Ingest every BENCH_<n>.json trajectory point written by
      drai-bench-report (default: repo root, i.e. the parent of this
      script's directory) and print the cross-PR trajectory: one row
      per bench per report, sorted by PR number then bench name, with
      the wall-time delta against the same bench in the previous
      comparable (same-mode) report. Scheduler benches (`sched_*`) are
      ordinary rows in this table. Every MONITOR_<n>.jsonl artifact
      (drai-monitor/v1, written by `drai-bench-report --monitor`) gets
      a second table summarizing its time series — executor.* and
      sched.* alike — whether or not a BENCH_<n>.json for the same PR
      exists (monitor-only PRs are annotated); missing or unreadable
      monitor artifacts are tolerated.
"""
import json
import os
import re
import sys


def fmt_time(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.1f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.3f} s"


def fmt_rate(per_s: float, unit: str) -> str:
    for scale, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if per_s >= scale:
            return f"{per_s / scale:.2f} {prefix}{unit}/s"
    return f"{per_s:.1f} {unit}/s"


def criterion_mode(root: str) -> None:
    rows = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if "estimates.json" not in filenames or not dirpath.endswith(os.sep + "new"):
            continue
        bench_dir = os.path.dirname(dirpath)
        rel = os.path.relpath(bench_dir, root)
        try:
            with open(os.path.join(dirpath, "estimates.json")) as f:
                est = json.load(f)
            mean_ns = est["mean"]["point_estimate"]
        except (OSError, KeyError, json.JSONDecodeError):
            continue
        rows.append((rel.replace(os.sep, "/"), mean_ns))
    rows.sort()
    print("| benchmark | mean |")
    print("|---|---|")
    for name, ns in rows:
        print(f"| {name} | {fmt_time(ns)} |")


def load_reports(root: str):
    """Parse every BENCH_<n>.json under root, sorted by PR number."""
    reports = []
    for name in os.listdir(root):
        m = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if not m:
            continue
        path = os.path.join(root, name)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {name}: {e}", file=sys.stderr)
            continue
        if doc.get("format") != "drai-bench-report/v1":
            print(f"warning: skipping {name}: unknown format", file=sys.stderr)
            continue
        reports.append((int(m.group(1)), doc))
    reports.sort(key=lambda t: t[0])
    return reports


def load_monitor(path: str):
    """Parse a drai-monitor/v1 JSONL artifact; None when unusable."""
    try:
        with open(path) as f:
            lines = [json.loads(ln) for ln in f if ln.strip()]
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: skipping {os.path.basename(path)}: {e}", file=sys.stderr)
        return None
    if not lines or lines[0].get("format") != "drai-monitor/v1":
        print(
            f"warning: skipping {os.path.basename(path)}: unknown format",
            file=sys.stderr,
        )
        return None
    header = lines[0]
    series = {}  # metric -> {"kind": ..., "points": [...]}
    for doc in lines[1:]:
        kind = doc.get("kind")
        if kind == "series":
            series[doc["metric"]] = {"kind": doc.get("metric_kind", "?"), "points": []}
        elif kind == "point" and doc.get("metric") in series:
            series[doc["metric"]]["points"].append(doc)
    return {
        "ticks": header.get("ticks", 0),
        "events": header.get("events", 0),
        "series": series,
    }


def monitor_summary(pr: int, mon: dict, standalone: bool) -> None:
    """Print the per-series summary table for one monitor artifact."""
    print()
    note = " (no matching BENCH report)" if standalone else ""
    print(
        f"monitor (PR {pr}){note}: {mon['ticks']} samples, "
        f"{len(mon['series'])} series, {mon['events']} health events"
    )
    print("| metric | kind | points | last | peak hi | mean rate |")
    print("|---|---|---|---|---|---|")
    for metric in sorted(mon["series"]):
        s = mon["series"][metric]
        pts = s["points"]
        if not pts:
            continue
        peak = max(p.get("hi", 0.0) for p in pts)
        rates = [p.get("rate", 0.0) for p in pts]
        mean_rate = sum(rates) / len(rates) if rates else 0.0
        print(
            f"| {metric} | {s['kind']} | {len(pts)} "
            f"| {pts[-1].get('value', 0.0):g} | {peak:g} | {mean_rate:.1f}/s |"
        )


def monitor_paths(root: str):
    """All MONITOR_<n>.jsonl artifacts under root, sorted by PR."""
    found = []
    for name in os.listdir(root):
        m = re.fullmatch(r"MONITOR_(\d+)\.jsonl", name)
        if m:
            found.append((int(m.group(1)), os.path.join(root, name)))
    found.sort(key=lambda t: t[0])
    return found


def bench_reports_mode(root: str) -> None:
    reports = load_reports(root)
    monitors = monitor_paths(root)
    if not reports and not monitors:
        print(f"no BENCH_<n>.json or MONITOR_<n>.jsonl files under {root}", file=sys.stderr)
        sys.exit(1)
    # prev[(mode, bench)] -> wall_ns of the latest earlier report.
    prev = {}
    if reports:
        print("| PR | bench | wall | items/s | bytes/s | top stage (self) | vs prev |")
        print("|---|---|---|---|---|---|---|")
    for pr, doc in reports:
        mode = doc.get("mode", "full")
        for bench in doc.get("benches", []):
            name = bench["name"]
            wall = bench["wall_ns"]
            stages = bench.get("stages", [])
            top = max(stages, key=lambda s: s["self_ns"], default=None)
            top_txt = (
                f"{top['name']} ({fmt_time(top['self_ns'])})" if top else "—"
            )
            key = (mode, name)
            if key in prev:
                delta = wall / prev[key] - 1.0
                delta_txt = f"{delta:+.1%}"
            else:
                delta_txt = "—"
            prev[key] = wall
            label = name if mode == "full" else f"{name} [{mode}]"
            print(
                f"| {pr} | {label} | {fmt_time(wall)} "
                f"| {fmt_rate(bench.get('items_per_s', 0.0), 'item')} "
                f"| {fmt_rate(bench.get('bytes_per_s', 0.0), 'B')} "
                f"| {top_txt} | {delta_txt} |"
            )
    bench_prs = {pr for pr, _doc in reports}
    for pr, mon_path in monitors:
        mon = load_monitor(mon_path)
        if mon is not None:
            monitor_summary(pr, mon, standalone=pr not in bench_prs)


def main() -> None:
    args = sys.argv[1:]
    if args and args[0] == "--bench-reports":
        default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        root = args[1] if len(args) > 1 else default_root
        bench_reports_mode(root)
    else:
        criterion_mode(args[0] if args else "target/criterion")


if __name__ == "__main__":
    main()
