//! Integration battery for `drai-sched`: deterministic weighted
//! fairness, overload shedding discipline, typed-rejection accounting
//! (zero silent drops), and bitwise reproducibility under the CI
//! `FAULT_SEED` matrix.

use drai::io::fault::FaultConfig;
use drai::sched::{
    JobOutcome, JobOutput, JobSpec, Priority, Rejected, Scheduler, SchedulerConfig, TenantConfig,
};
use drai::telemetry::monitor::ManualClock;
use drai::telemetry::{Registry, TraceContext};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn noop_job(tenant: &str, cost: u64) -> JobSpec {
    JobSpec::new(tenant, "noop", cost, |_ctx| {
        Ok(JobOutput {
            items: 1,
            detail: String::new(),
        })
    })
}

/// Serial scheduler on a manual clock: `max_inflight_cost: 1` makes
/// every `dispatch_next` a single observable scheduling decision.
fn serial_scheduler(cfg: SchedulerConfig) -> Scheduler {
    Scheduler::with_clock(
        SchedulerConfig {
            max_inflight_cost: 1,
            ..cfg
        },
        Arc::new(ManualClock::new()),
    )
}

/// xorshift* keyed off the fault seed: deterministic submission-order
/// permutations per CI matrix entry without any global RNG state.
fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    items
}

#[test]
fn equal_weight_tenants_stay_within_one_dispatch_at_every_step() {
    let registry = Registry::new();
    TraceContext::root(&registry).scope(|| {
        let sched = serial_scheduler(SchedulerConfig::default());
        sched.register_tenant(TenantConfig::new("a").max_queued(200));
        sched.register_tenant(TenantConfig::new("b").max_queued(200));
        for _ in 0..100 {
            sched.submit(noop_job("a", 1)).unwrap();
            sched.submit(noop_job("b", 1)).unwrap();
        }
        let (mut a, mut b) = (0i64, 0i64);
        while let Some(d) = sched.dispatch_next() {
            match d.tenant.as_str() {
                "a" => a += 1,
                "b" => b += 1,
                other => panic!("unknown tenant {other}"),
            }
            assert!(
                (a - b).abs() <= 1,
                "fairness drift at step {}: a={a} b={b}",
                a + b
            );
        }
        assert_eq!((a, b), (100, 100), "all jobs dispatched");
    });
}

#[test]
fn weight_two_tenant_gets_twice_the_throughput() {
    let registry = Registry::new();
    TraceContext::root(&registry).scope(|| {
        let sched = serial_scheduler(SchedulerConfig::default());
        sched.register_tenant(TenantConfig::new("heavy").weight(2).max_queued(200));
        sched.register_tenant(TenantConfig::new("light").max_queued(200));
        for _ in 0..120 {
            sched.submit(noop_job("heavy", 1)).unwrap();
            sched.submit(noop_job("light", 1)).unwrap();
        }
        let (mut heavy, mut light) = (0u32, 0u32);
        for _ in 0..90 {
            let d = sched.dispatch_next().expect("jobs remain");
            if d.tenant == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
        }
        assert_eq!(
            (heavy, light),
            (60, 30),
            "weight-2 tenant dispatches exactly 2x while both are backlogged"
        );
        sched.run_until_idle();
    });
}

#[test]
fn overload_sheds_only_lowest_priority_and_accounts_for_every_submission() {
    let registry = Registry::new();
    TraceContext::root(&registry).scope(|| {
        let sched = serial_scheduler(SchedulerConfig {
            shed_watermark: 12,
            ..SchedulerConfig::default()
        });
        sched.register_tenant(TenantConfig::new("a").max_queued(20));
        sched.register_tenant(TenantConfig::new("b").max_queued(20));

        let mut submitted = 0u64;
        let mut rejections = 0u64;
        let mut handles = Vec::new();
        // Six interactive jobs sit safely under the watermark...
        for _ in 0..6 {
            submitted += 1;
            let spec = noop_job("a", 1).priority(Priority::Interactive);
            handles.push((Priority::Interactive, sched.submit(spec).unwrap()));
        }
        // ...then a batch flood pushes past it: every admit over the
        // watermark sheds, and batch work is always queued when it
        // does, so interactive jobs are never the victim.
        for round in 0..20u64 {
            submitted += 1;
            let spec = noop_job("b", 1)
                .priority(Priority::Batch)
                .deadline(Duration::from_secs(600 + round));
            match sched.submit(spec) {
                Ok(h) => handles.push((Priority::Batch, h)),
                Err(rej) => panic!("batch flood unexpectedly rejected: {rej}"),
            }
        }
        // With ~12 cost units of backlog at 1 ms per unit, a 1 ms
        // deadline is infeasible: typed rejection, not a silent drop.
        for _ in 0..2 {
            submitted += 1;
            let spec = noop_job("a", 1)
                .priority(Priority::Interactive)
                .deadline(Duration::from_millis(1));
            match sched.submit(spec) {
                Err(Rejected::DeadlineInfeasible { .. }) => rejections += 1,
                other => panic!("expected DeadlineInfeasible, got {other:?}"),
            }
        }
        sched.run_until_idle();

        let (mut completed, mut shed) = (0u64, 0u64);
        for (priority, h) in handles {
            match h.wait() {
                JobOutcome::Completed(_) => completed += 1,
                JobOutcome::Shed { .. } => {
                    assert_eq!(
                        priority,
                        Priority::Batch,
                        "only the lowest queued class may be shed"
                    );
                    shed += 1;
                }
                other => panic!("unexpected outcome under overload: {other:?}"),
            }
        }
        assert!(shed > 0, "watermark 12 must shed under 36 submissions");
        assert!(rejections > 0, "max_queued 10 must reject under pressure");
        assert_eq!(
            completed + shed + rejections,
            submitted,
            "every submission ends as a typed outcome — no silent drops"
        );
    });
}

/// One full scheduler run: two tenants, three priority classes, a
/// seed-permuted submission order. Returns the rendered dispatch
/// transcript plus a sorted snapshot of the `sched.*` counters.
fn seeded_run(seed: u64) -> String {
    let registry = Registry::new();
    TraceContext::root(&registry).scope(|| {
        let sched = serial_scheduler(SchedulerConfig {
            shed_watermark: 40,
            ..SchedulerConfig::default()
        });
        sched.register_tenant(TenantConfig::new("a").weight(2).max_queued(64));
        sched.register_tenant(TenantConfig::new("b").max_queued(32));

        let mut specs = Vec::new();
        for k in 0..48u64 {
            let tenant = if k % 2 == 0 { "a" } else { "b" };
            let priority = match k % 3 {
                0 => Priority::Batch,
                1 => Priority::Normal,
                _ => Priority::Interactive,
            };
            specs.push((tenant, priority, 1 + k % 3));
        }
        let mut transcript = String::new();
        for (tenant, priority, cost) in shuffled(specs, seed) {
            match sched.submit(noop_job(tenant, cost).priority(priority)) {
                Ok(_) => {}
                Err(rej) => transcript.push_str(&format!("reject {rej}\n")),
            }
        }
        for d in sched.run_until_idle() {
            transcript.push_str(&format!("{d}\n"));
        }
        let snap = registry.snapshot();
        let counters: Vec<String> = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("sched."))
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        transcript.push_str(&counters.join("\n"));
        transcript
    })
}

#[test]
fn transcript_is_bitwise_reproducible_for_the_ci_fault_seed() {
    let seed = FaultConfig::seed_from_env(1);
    let first = seeded_run(seed);
    let second = seeded_run(seed);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same seed must replay an identical transcript and counter set"
    );
    // Different seeds permute submission order, and with unequal costs
    // that must be visible in the transcript — i.e. the determinism
    // assertion above is not vacuous.
    assert_ne!(first, seeded_run(seed.wrapping_add(17) | 2));
}

proptest! {
    /// The ±1 alternation invariant holds for any backlog size and any
    /// submission interleaving, not just the handpicked one.
    #[test]
    fn fairness_within_one_for_random_backlogs(jobs in 1usize..40, seed in any::<u64>()) {
        let registry = Registry::new();
        TraceContext::root(&registry).scope(|| {
            let sched = serial_scheduler(SchedulerConfig::default());
            sched.register_tenant(TenantConfig::new("a").max_queued(100));
            sched.register_tenant(TenantConfig::new("b").max_queued(100));
            let mut specs = Vec::new();
            for _ in 0..jobs {
                specs.push("a");
                specs.push("b");
            }
            for tenant in shuffled(specs, seed) {
                sched.submit(noop_job(tenant, 1)).unwrap();
            }
            let (mut a, mut b) = (0i64, 0i64);
            while let Some(d) = sched.dispatch_next() {
                if d.tenant == "a" { a += 1 } else { b += 1 }
                prop_assert!((a - b).abs() <= 1, "drift: a={} b={}", a, b);
            }
            prop_assert_eq!((a, b), (jobs as i64, jobs as i64));
            Ok(())
        })?;
    }
}
