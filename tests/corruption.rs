//! Adversarial corruption suite: flip bytes in shard headers, record
//! CRCs, record payloads, and manifest JSON — across every codec — and
//! assert the damage is always *detected* (strict reader errors) or
//! *quarantined* (recovering reader reports it), and that no corrupted
//! record bytes ever escape, and nothing ever panics.
//!
//! The integrity invariant under test: every record returned by any
//! read path is byte-identical to a record that was originally written.
//! CRC framing may lose data under corruption; it must never fabricate
//! or silently alter it.

use drai::io::codec::CodecId;
use drai::io::shard::{parse_shard, ShardReader, ShardSpec, ShardWriter};
use drai::io::sink::{MemSink, StorageSink};
use drai::io::IoError;
use std::collections::HashSet;

const CODECS: [CodecId; 4] = [
    CodecId::Raw,
    CodecId::Rle,
    CodecId::Delta { width: 1 },
    CodecId::Lz,
];

/// Mixed-entropy records: compressible runs plus pseudo-random tails so
/// every codec has real work to do.
fn records(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            (0..size)
                .map(|j| {
                    if j < size / 2 {
                        (i % 7) as u8
                    } else {
                        ((i * 2654435761 + j * 40503) >> 7) as u8
                    }
                })
                .collect()
        })
        .collect()
}

fn build(codec: CodecId) -> (MemSink, Vec<Vec<u8>>, String) {
    let prefix = format!("adv-{}", codec.name());
    let sink = MemSink::new();
    let recs = records(24, 512);
    ShardWriter::new(
        ShardSpec::new(prefix.clone(), 4096).with_codec(codec),
        &sink,
    )
    .write_all(&recs)
    .unwrap();
    (sink, recs, prefix)
}

/// Assert the integrity invariant for one corrupted blob state: strict
/// read errors or matches the original; recovering read never panics,
/// never returns a byte-altered record, and reports any loss.
fn assert_detected_or_quarantined(
    sink: &MemSink,
    prefix: &str,
    originals: &[Vec<u8>],
    must_detect: bool,
    what: &str,
) {
    let original_set: HashSet<&[u8]> = originals.iter().map(Vec::as_slice).collect();
    match ShardReader::open(prefix, sink) {
        Err(_) => {} // manifest damage detected at open
        Ok(reader) => {
            // Strict path: complete success must mean identical data.
            if let Ok(recs) = reader.read_all() {
                if must_detect {
                    assert_eq!(recs, originals, "{what}: strict read returned altered data");
                }
            }
            // Recovering path: must not panic; returned records must be
            // genuine; losses must be accounted.
            let recovered = reader.read_all_recovering();
            for rec in &recovered.records {
                assert!(
                    original_set.contains(rec.as_slice()),
                    "{what}: recovering read fabricated record bytes"
                );
            }
            if recovered.records.len() < originals.len() {
                assert!(
                    !recovered.damage.is_clean(),
                    "{what}: records lost without a damage report"
                );
            }
        }
    }
}

#[test]
fn shard_body_corruption_every_codec() {
    for codec in CODECS {
        let (sink, recs, prefix) = build(codec);
        let shard_name = format!("{prefix}-00001.shard");
        let pristine = sink.read_file(&shard_name).unwrap();

        // Byte offsets attacking each structural region: magic, codec
        // tag, reserved padding, first record length, first record CRC,
        // and payload bytes at several depths.
        let mut targets = vec![0usize, 8, 9, 12, 16];
        targets.extend([20, pristine.len() / 2, pristine.len() - 1]);
        for &off in &targets {
            for bit in [0u8, 3, 7] {
                let mut damaged = pristine.clone();
                damaged[off] ^= 1 << bit;
                sink.write_file(&shard_name, &damaged).unwrap();

                let reader = ShardReader::open(&prefix, &sink).unwrap();
                // The whole-file CRC catches *every* single-bit flip on
                // the strict path.
                let idx = 1;
                assert!(
                    reader.read_shard(idx).is_err(),
                    "{codec:?}: flip at {off} bit {bit} undetected by strict read"
                );
                assert_detected_or_quarantined(
                    &sink,
                    &prefix,
                    &recs,
                    true,
                    &format!("{codec:?} flip at {off} bit {bit}"),
                );
                sink.write_file(&shard_name, &pristine).unwrap();
            }
        }

        // Truncations at awkward places: mid-header, mid-record-frame,
        // one byte short.
        for cut in [4usize, 13, pristine.len() - 1] {
            sink.write_file(&shard_name, &pristine[..cut]).unwrap();
            let reader = ShardReader::open(&prefix, &sink).unwrap();
            assert!(reader.read_shard(1).is_err(), "{codec:?}: cut {cut}");
            assert_detected_or_quarantined(&sink, &prefix, &recs, true, "truncation");
            sink.write_file(&shard_name, &pristine).unwrap();
        }
    }
}

#[test]
fn manifest_corruption_never_panics_or_fabricates() {
    for codec in CODECS {
        let (sink, recs, prefix) = build(codec);
        let manifest_name = format!("{prefix}.manifest.json");
        let pristine = sink.read_file(&manifest_name).unwrap();

        // Flip one bit in every byte of the manifest JSON. Each variant
        // must parse-fail, quarantine, or (for flips in advisory fields
        // like total_records) still never fabricate record bytes.
        for off in 0..pristine.len() {
            let mut damaged = pristine.clone();
            damaged[off] ^= 0x10;
            sink.write_file(&manifest_name, &damaged).unwrap();
            assert_detected_or_quarantined(
                &sink,
                &prefix,
                &recs,
                false,
                &format!("{codec:?} manifest flip at {off}"),
            );
            sink.write_file(&manifest_name, &pristine).unwrap();
        }

        // Wholesale structural damage.
        for garbage in [
            &b""[..],
            b"{",
            b"null",
            b"[1,2,3]",
            b"{\"format\":\"nope\"}",
        ] {
            sink.write_file(&manifest_name, garbage).unwrap();
            assert!(
                ShardReader::open(&prefix, &sink).is_err(),
                "{codec:?}: garbage manifest accepted"
            );
            sink.write_file(&manifest_name, &pristine).unwrap();
        }
    }
}

#[test]
fn parse_shard_rejects_hostile_inputs_without_panicking() {
    // Raw fuzz-ish structural attacks on the body parser, including a
    // record length field pointing far past the buffer.
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        b"DSHRD1\0".to_vec(),             // short magic
        b"DSHRD1\0\0".to_vec(),           // no codec tag
        b"DSHRD1\0\0\x00\0\0\0".to_vec(), // header only (valid, empty)
        b"DSHRD1\0\0\xEE\0\0\0".to_vec(), // unknown codec tag
        {
            // Length field = u32::MAX with a tiny payload.
            let mut v = b"DSHRD1\0\0\x00\0\0\0".to_vec();
            v.extend_from_slice(&u32::MAX.to_le_bytes());
            v.extend_from_slice(&0u32.to_le_bytes());
            v.extend_from_slice(b"tiny");
            v
        },
    ];
    for (i, data) in cases.iter().enumerate() {
        let result = parse_shard(data, "hostile", CodecId::Raw);
        match i {
            3 => assert!(matches!(&result, Ok(r) if r.is_empty()), "case {i}"),
            _ => assert!(result.is_err(), "case {i} accepted: {result:?}"),
        }
    }
    // Codec disagreement between manifest and file is structural damage.
    let (sink, _, prefix) = build(CodecId::Rle);
    let data = sink.read_file(&format!("{prefix}-00000.shard")).unwrap();
    assert!(matches!(
        parse_shard(&data, "x", CodecId::Raw),
        Err(IoError::Format(_))
    ));
}
