//! Pins the shape of the hierarchical trace a full climate run
//! produces: one `domain.climate.run` root whose subtree contains the
//! ingest span (with its prefetch workers parented under it, not under
//! the global registry or a foreign trace), the pipeline run with all
//! four stages, and the shard-writer span under the shard stage — all
//! sharing a single trace id. Also validates the Chrome exporter output
//! for the same spans: parseable JSON, complete events only, and
//! child events contained within their parent's lane interval.
//!
//! This is the acceptance test for the tracing tentpole: if context
//! handoff across `prefetch_map` workers or rayon shard tasks breaks,
//! the worker spans root new traces and the assertions below fail.

use drai::domains::climate::{self, ClimateConfig};
use drai::io::json::Json;
use drai::io::sink::MemSink;
use drai::telemetry::trace::{build_forest, to_chrome_json, to_folded, TraceNode};
use drai::telemetry::{Registry, TraceContext};
use drai::tensor::LatLonGrid;
use std::sync::Arc;

fn run_climate(registry: &Registry) -> Vec<drai::telemetry::SpanRecord> {
    let _scope = TraceContext::root(registry).attach();
    let cfg = ClimateConfig {
        src_grid: LatLonGrid::global(12, 24),
        dst_grid: LatLonGrid::global(8, 16),
        timesteps: 6,
        ..ClimateConfig::default()
    };
    climate::run(&cfg, Arc::new(MemSink::new())).expect("climate run");
    registry.snapshot().spans
}

#[test]
fn climate_trace_is_one_tree_with_workers_parented() {
    let registry = Registry::new();
    let spans = run_climate(&registry);

    // Every span of the run belongs to one trace.
    let trace = spans[0].trace;
    assert!(
        spans.iter().all(|s| s.trace == trace),
        "spans split across traces: {:?}",
        spans
            .iter()
            .map(|s| (s.name.clone(), s.trace))
            .collect::<Vec<_>>()
    );

    let forest = build_forest(&spans);
    assert_eq!(forest.len(), 1, "expected a single root");
    let root = &forest[0];
    assert_eq!(root.record.name, "domain.climate.run");

    // Ingest subtree: prefetch workers hang off domain.climate.ingest.
    let ingest = root.find("domain.climate.ingest").expect("ingest span");
    let mut workers: Vec<&TraceNode> = Vec::new();
    ingest.find_all("io.prefetch.worker", &mut workers);
    assert_eq!(workers.len(), 2, "one span per prefetch worker");
    for w in &workers {
        assert_eq!(w.record.parent, Some(ingest.record.id));
    }
    let total_items: u64 = workers.iter().map(|w| w.record.items).sum();
    assert_eq!(
        total_items,
        climate::VARIABLES.len() as u64,
        "one prefetched item per climate variable"
    );

    // Pipeline subtree: the run span owns all four stages.
    let pipe = root.find("pipeline.climate.run").expect("pipeline span");
    for stage in ["validate", "regrid", "normalize", "shard"] {
        let node = pipe
            .find(&format!("pipeline.climate.{stage}"))
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert_eq!(node.record.parent, Some(pipe.record.id));
    }

    // The shard writer's span nests under the shard stage.
    let shard_stage = pipe.find("pipeline.climate.shard").unwrap();
    let write_all = shard_stage
        .find("io.shard.write_all")
        .expect("shard writer span under shard stage");
    assert!(write_all.record.bytes > 0);
}

#[test]
fn chrome_export_of_the_run_is_valid_and_contained() {
    let registry = Registry::new();
    let spans = run_climate(&registry);

    let chrome = to_chrome_json(&spans);
    let doc = Json::parse(&chrome).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len(), "one complete event per span");

    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).is_some());
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        let args = ev.get("args").expect("args");
        assert!(args.get("span_id").and_then(Json::as_u64).is_some());
    }

    // Events that share a tid must nest by containment: sort by ts and
    // check each event against the previous unclosed interval.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
    for ev in events {
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap();
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap();
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap();
        by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    for (tid, mut iv) in by_tid {
        iv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for (start, end) in iv {
            while let Some(&(_, top_end)) = stack.last() {
                if start >= top_end {
                    stack.pop();
                } else {
                    assert!(
                        end <= top_end + 1e-6,
                        "tid {tid}: event [{start}, {end}] overlaps enclosing [.., {top_end}]"
                    );
                    break;
                }
            }
            stack.push((start, end));
        }
    }

    // The folded export covers the same tree: the deepest climate path
    // must appear as a semicolon-joined stack.
    let folded = to_folded(&spans);
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("domain.climate.run;domain.climate.ingest;io.prefetch.worker ")),
        "missing worker stack in folded output:\n{folded}"
    );
    assert!(folded
        .lines()
        .any(|l| l.contains("pipeline.climate.run;pipeline.climate.shard;io.shard.write_all ")));
}
