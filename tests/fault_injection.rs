//! The resilience acceptance test: a full shard round trip survives a
//! 10% transient fault rate losslessly under the default retry policy,
//! deterministically (seeded faults, virtual-clock backoff — no real
//! sleeps anywhere), and the telemetry registry shows the injection and
//! retry machinery actually fired.
//!
//! Runs under the CI `FAULT_SEED` sweep: set the env var to replay the
//! exact same fault schedule with a different seed.

use drai::io::fault::{FaultConfig, FaultSink};
use drai::io::retry::{RetryPolicy, RetrySink, VirtualClock};
use drai::io::shard::{ShardReader, ShardSpec, ShardWriter};
use drai::io::sink::MemSink;
use drai::telemetry::Registry;

fn records(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| (0..size).map(|j| ((i * 131 + j * 7) % 251) as u8).collect())
        .collect()
}

#[test]
fn faulty_round_trip_is_lossless_under_default_retry() {
    let seed = FaultConfig::seed_from_env(1);
    let clock = VirtualClock::new();
    // 10% transient fault rate on both writes and reads.
    let sink = RetrySink::with_clock(
        FaultSink::new(MemSink::new(), FaultConfig::transient(seed, 0.10)),
        RetryPolicy::default(),
        clock.clone(),
    );

    let recs = records(400, 2048);
    let manifest = ShardWriter::new(ShardSpec::new("resilient", 32 * 1024), &sink)
        .write_all(&recs)
        .expect("write_all must succeed under retry");
    assert!(manifest.shards.len() > 10, "want a real multi-shard run");

    let reader = ShardReader::open("resilient", &sink).expect("manifest read");
    let recovered = reader.read_all_recovering();
    assert!(
        recovered.damage.is_clean(),
        "transient faults must not lose data: {:?}",
        recovered.damage
    );
    assert_eq!(recovered.records, recs, "round trip must be lossless");

    // The failure path was actually exercised, and every injected fault
    // that hit an operation was absorbed by a retry (virtual backoff
    // only — this test never sleeps for real).
    let snap = Registry::global().snapshot();
    assert!(
        snap.counters["io.fault.injected"] > 0,
        "no faults were injected at a 10% rate (seed {seed})"
    );
    assert!(
        snap.counters["io.retry.attempts"] > 0,
        "faults were injected but nothing retried (seed {seed})"
    );
    // (No assertion on `io.retry.exhausted`: sibling tests in this
    // binary share the global registry and exhaust retries on purpose;
    // losslessness above already proves this run exhausted nothing.)
    assert!(clock.slept_ns() > 0, "retries must account virtual backoff");

    // The exported snapshot carries the resilience counters.
    let json = snap.to_json();
    assert!(json.contains("\"io.fault.injected\""));
    assert!(json.contains("\"io.retry.attempts\""));
    assert!(json.contains("\"io.retry.backoff_ns\""));
}

#[test]
fn silent_corruption_is_healed_by_verify_after_write() {
    let seed = FaultConfig::seed_from_env(1);
    // 10% of writes store a bit-flipped copy; verify-after-write reads
    // each shard back and rewrites until the digest matches.
    let cfg = FaultConfig {
        seed: seed.wrapping_add(0xC0FFEE),
        corrupt: 0.10,
        ..FaultConfig::default()
    };
    let sink = FaultSink::new(MemSink::new(), cfg);
    let recs = records(200, 2048);
    let spec = ShardSpec::new("healed", 32 * 1024).with_verify(true);
    ShardWriter::new(spec, &sink).write_all(&recs).unwrap();

    // Read the *inner* sink directly: what landed on "disk" is clean.
    let reader = ShardReader::open("healed", sink.inner()).unwrap();
    let recovered = reader.read_all_recovering();
    assert!(recovered.damage.is_clean(), "{:?}", recovered.damage);
    assert_eq!(recovered.records, recs);
}

#[test]
fn exhausted_retries_surface_the_fault() {
    // At a 100% transient rate nothing can succeed: the error must come
    // back transient (so callers can classify) and the exhaustion must
    // be counted, all without data landing in the inner sink.
    let faulty = FaultSink::new(MemSink::new(), FaultConfig::transient(99, 1.0));
    let sink = RetrySink::with_clock(faulty, RetryPolicy::default(), VirtualClock::new());
    let err = ShardWriter::new(ShardSpec::new("doomed", 1 << 20), &sink)
        .write_all(records(4, 256))
        .unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert_eq!(sink.inner().inner().file_count(), 0);
    let snap = Registry::global().snapshot();
    assert!(snap.counters["io.retry.exhausted"] > 0);
}
