//! Property-based tests (proptest) on the core invariants: format
//! round-trips, codec round-trips, normalization/regrid/split laws.

use drai::formats::csv::{parse_csv, write_csv, CsvTable};
use drai::formats::npy::{read_npy, write_npy};
use drai::formats::tfrecord::{read_records, write_records};
use drai::formats::zip::{read_zip, write_zip, ZipEntry};
use drai::io::codec::{codec_for, CodecId};
use drai::io::crypto::{chacha20_xor, derive_key};
use drai::io::json::Json;
use drai::io::parallel::{chunk_slices, prefetch_map};
use drai::io::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use drai::tensor::stats::Welford;
use drai::tensor::{LatLonGrid, Tensor};
use drai::transform::impute::{impute, missing_fraction, Strategy};
use drai::transform::normalize::{Method, Normalizer};
use drai::transform::regrid;
use drai::transform::split::{assign, Fractions};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uvarint_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, v);
        let (back, n) = read_uvarint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn ivarint_round_trip(v in any::<i64>()) {
        let mut buf = Vec::new();
        write_ivarint(&mut buf, v);
        let (back, _) = read_ivarint(&buf).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codecs_round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for id in [CodecId::Raw, CodecId::Rle, CodecId::Delta { width: 1 },
                   CodecId::Delta { width: 4 }, CodecId::Lz] {
            let c = codec_for(id);
            let enc = c.encode(&data);
            prop_assert_eq!(c.decode(&enc).unwrap(), data.clone(), "{:?}", id);
        }
    }

    #[test]
    fn codec_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        for id in [CodecId::Rle, CodecId::Delta { width: 2 }, CodecId::Lz] {
            let _ = codec_for(id).decode(&data); // must not panic
        }
    }

    #[test]
    fn npy_round_trip_f64(values in proptest::collection::vec(any::<f64>(), 1..200)) {
        let n = values.len();
        let t = Tensor::from_vec(values, &[n]).unwrap();
        let back = read_npy::<f64>(&write_npy(&t)).unwrap();
        // Bitwise comparison (NaN-safe).
        let a = t.to_le_bytes();
        let b = back.to_le_bytes();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tfrecord_round_trip(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..256), 0..20)) {
        let bytes = write_records(&records);
        prop_assert_eq!(read_records(&bytes).unwrap(), records);
    }

    #[test]
    fn zip_round_trip(entries in proptest::collection::vec(
        (proptest::string::string_regex("[a-z]{1,12}(/[a-z]{1,8})?").unwrap(),
         proptest::collection::vec(any::<u8>(), 0..512)),
        0..8)) {
        // Deduplicate names (zip allows dupes; our reader returns both,
        // but equality then needs order care — keep it simple).
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<ZipEntry> = entries
            .into_iter()
            .filter(|(name, _)| seen.insert(name.clone()))
            .map(|(name, data)| ZipEntry { name, data })
            .collect();
        let bytes = write_zip(&entries).unwrap();
        prop_assert_eq!(read_zip(&bytes).unwrap(), entries);
    }

    #[test]
    fn json_round_trip_strings(s in any::<String>()) {
        let v = Json::Str(s);
        let text = v.to_string_compact();
        prop_assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn json_parse_never_panics(s in any::<String>()) {
        let _ = Json::parse(&s);
    }

    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec(proptest::string::string_regex("[ -~]{0,20}").unwrap(), 3..4),
        1..20)) {
        let table = CsvTable {
            header: vec!["a".into(), "b".into(), "c".into()],
            rows,
        };
        let text = write_csv(&table);
        prop_assert_eq!(parse_csv(&text).unwrap(), table);
    }

    #[test]
    fn chacha_round_trip(data in proptest::collection::vec(any::<u8>(), 0..1024),
                         secret in "[a-z]{1,16}") {
        let key = derive_key(&secret, "prop");
        let nonce = [9u8; 12];
        let mut enc = data.clone();
        chacha20_xor(&key, &nonce, 0, &mut enc);
        chacha20_xor(&key, &nonce, 0, &mut enc);
        prop_assert_eq!(enc, data);
    }

    #[test]
    fn welford_merge_associative(xs in proptest::collection::vec(-1e6f64..1e6, 3..100),
                                 cut1 in 0usize..100, cut2 in 0usize..100) {
        let c1 = cut1 % xs.len();
        let c2 = c1 + (cut2 % (xs.len() - c1));
        let mut wa = Welford::new();
        wa.extend(&xs[..c1]);
        let mut wb = Welford::new();
        wb.extend(&xs[c1..c2]);
        let mut wc = Welford::new();
        wc.extend(&xs[c2..]);
        let left = wa.merge(&wb).merge(&wc);
        let right = wa.merge(&wb.merge(&wc));
        let mean_tol = 1e-9 * left.mean().abs().max(1.0);
        prop_assert!((left.mean() - right.mean()).abs() < mean_tol);
        let var_tol = 1e-9 * left.variance().abs().max(1.0);
        prop_assert!((left.variance() - right.variance()).abs() < var_tol);
        prop_assert_eq!(left.count(), right.count());
    }

    #[test]
    fn zscore_normalizes(xs in proptest::collection::vec(-1e9f64..1e9, 2..200)) {
        // Skip near-constant inputs (scale clamps to 1 there by design).
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let n = Normalizer::fit(Method::ZScore, &xs).unwrap();
        let out: Vec<f64> = xs.iter().map(|&x| n.apply(x)).collect();
        let mut w = Welford::new();
        w.extend(&out);
        prop_assert!(w.mean().abs() < 1e-6, "mean {}", w.mean());
        prop_assert!((w.std() - 1.0).abs() < 1e-6, "std {}", w.std());
        // Invertibility.
        for (&orig, &norm) in xs.iter().zip(&out) {
            prop_assert!((n.invert(norm) - orig).abs() <= 1e-9 * orig.abs().max(1.0));
        }
    }

    #[test]
    fn conservative_regrid_preserves_integral(
        nlat_src in 4usize..20, nlon_src in 4usize..24,
        nlat_dst in 2usize..16, nlon_dst in 2usize..20,
        seed in any::<u64>()) {
        let src = LatLonGrid::global(nlat_src, nlon_src);
        let dst = LatLonGrid::global(nlat_dst, nlon_dst);
        // Deterministic pseudo-random field from the seed.
        let mut state = seed | 1;
        let field: Vec<f64> = (0..src.ncells())
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 100.0 - 50.0
            })
            .collect();
        let out = regrid::conservative(&src, &field, &dst).unwrap();
        let a = src.area_weighted_mean(&field).unwrap();
        let b = dst.area_weighted_mean(&out).unwrap();
        prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    #[test]
    fn split_is_deterministic_and_total(key in "[ -~]{0,40}", seed in any::<u64>()) {
        let f = Fractions::standard();
        let s1 = assign(&key, seed, f).unwrap();
        let s2 = assign(&key, seed, f).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn impute_removes_all_missing(mut xs in proptest::collection::vec(
            prop_oneof![3 => (-1e3f64..1e3), 1 => Just(f64::NAN)], 1..100)) {
        prop_assume!(xs.iter().any(|v| !v.is_nan()));
        for strategy in [Strategy::Mean, Strategy::Median, Strategy::ForwardFill,
                         Strategy::Interpolate, Strategy::Constant(0.0)] {
            let mut copy = xs.clone();
            impute(&mut copy, strategy).unwrap();
            prop_assert_eq!(missing_fraction(&copy), 0.0, "{:?}", strategy);
        }
        // And in-place on the original for good measure.
        impute(&mut xs, Strategy::Mean).unwrap();
        prop_assert!(xs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn netcdf_round_trip_float_var(values in proptest::collection::vec(any::<f32>(), 1..64)) {
        use drai::formats::netcdf::*;
        let n = values.len();
        let f = NcFile {
            dims: vec![NcDim { name: "x".into(), size: n, is_record: false }],
            global_attrs: vec![],
            vars: vec![NcVar {
                name: "v".into(),
                dims: vec![0],
                attrs: vec![],
                data: NcValues::Float(values),
            }],
        };
        let back = NcFile::from_bytes(&f.to_bytes().unwrap()).unwrap();
        // Bitwise equality via byte serialization (NaN-safe).
        prop_assert_eq!(back.to_bytes().unwrap(), f.to_bytes().unwrap());
    }
}

// Stress/property coverage for the parallel prefetch machinery: order
// preservation must hold for every (workers, queue_cap, item-count)
// combination, and chunking offsets must tile the input exactly even
// when the length is not divisible by the chunk count.
proptest! {
    #[test]
    fn prefetch_map_preserves_order(
        workers in 1usize..8, queue_cap in 1usize..8, n in 0usize..200) {
        let items: Vec<u64> = (0..n as u64).collect();
        let out: Vec<u64> = prefetch_map(items.clone(), workers, queue_cap, |x| {
            // Jitter completion order so in-order delivery is earned by
            // the reorder buffer, not by accident of scheduling.
            std::thread::sleep(std::time::Duration::from_micros((x * 29) % 120));
            x.wrapping_mul(3) ^ 7
        })
        .collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(3) ^ 7).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn chunk_slices_offsets_tile_input(len in 0usize..500, chunks in 1usize..17) {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let parts = chunk_slices(&data, chunks);
        if data.is_empty() {
            prop_assert!(parts.is_empty());
            return Ok(());
        }
        prop_assert!(!parts.is_empty() && parts.len() <= chunks);
        let size = data.len().div_ceil(chunks);
        for (i, (offset, slice)) in parts.iter().enumerate() {
            prop_assert_eq!(*offset, i * size);
            if i + 1 < parts.len() {
                // Every piece but the last is exactly `size` bytes.
                prop_assert_eq!(slice.len(), size);
            } else {
                prop_assert!(!slice.is_empty() && slice.len() <= size);
            }
        }
        let rebuilt: Vec<u8> = parts.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        prop_assert_eq!(rebuilt, data);
    }
}

#[test]
fn prefetch_map_panic_in_last_item_propagates() {
    for workers in [1usize, 2, 4] {
        let n = 37u64;
        // Worker threads hold clones of this sentinel via the closure;
        // once the panic has propagated every clone must be gone, i.e.
        // all threads were joined rather than left running detached.
        let alive = std::sync::Arc::new(());
        let sentinel = alive.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _hold = sentinel;
            let items: Vec<u64> = (0..n).collect();
            prefetch_map(items, workers, 2, move |x| {
                if x == n - 1 {
                    panic!("injected failure on final item {x}");
                }
                x * 2
            })
            .collect::<Vec<_>>()
        }));
        assert!(
            result.is_err(),
            "panic with {workers} workers did not propagate"
        );
        assert_eq!(
            std::sync::Arc::strong_count(&alive),
            1,
            "worker threads not joined after panic ({workers} workers)"
        );
    }
}
