//! Live-monitor acceptance tests (ISSUE 9 gate):
//!
//! * seeded bottleneck naming — one climate batch stage is artificially
//!   slowed (which one is chosen by the CI `FAULT_SEED` sweep) and the
//!   post-run diagnosis must name exactly that stage, with the JSONL
//!   artifact round-tripping byte-identically;
//! * sampler determinism — two registries driven through the same
//!   mutation sequence under [`ManualClock`]s produce bitwise-identical
//!   artifacts;
//! * ring-buffer wraparound — a series over capacity keeps exactly the
//!   last `capacity` points, oldest-first, ticks strictly increasing.

use drai::core::executor::{executor_health_spec, ExecutorConfig, StreamingBatchExt};
use drai::domains::climate;
use drai::io::fault::FaultConfig;
use drai::io::sink::{MemSink, StorageSink};
use drai::provenance::Ledger;
use drai::telemetry::monitor::{
    ManualClock, MonitorReport, ProgressTarget, Sampler, SamplerConfig, WallMonitorClock,
};
use drai::telemetry::{Registry, TraceContext};
use drai::tensor::LatLonGrid;
use std::sync::Arc;
use std::time::Duration;

/// The four climate batch stages, indexed by `FAULT_SEED % 4` — each CI
/// seed exercises a different injected bottleneck.
const STAGES: [&str; 4] = ["validate", "regrid", "normalize", "shard"];

fn small_cfg() -> climate::ClimateConfig {
    climate::ClimateConfig {
        src_grid: LatLonGrid::global(8, 16),
        dst_grid: LatLonGrid::global(6, 12),
        timesteps: 2,
        shard_bytes: 1 << 20,
        ..climate::ClimateConfig::default()
    }
}

/// The acceptance scenario: a streaming climate batch with one
/// artificially slowed stage, sampled live; the diagnosis must name the
/// slowed stage as the bottleneck and the artifact must round-trip.
#[test]
fn slowed_stage_is_named_by_diagnosis_and_artifact_round_trips() {
    let seed = FaultConfig::seed_from_env(1);
    let slow = STAGES[seed as usize % STAGES.len()];
    let members = 6usize;

    let registry = Registry::new();
    let scope = TraceContext::root(&registry).attach();
    let cfg = small_cfg();
    let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
    let exec = ExecutorConfig::default();
    let pipeline = climate::build_batch_pipeline_slowed(
        &cfg,
        sink,
        Arc::new(Ledger::new()),
        slow,
        Duration::from_millis(12),
    );
    let items: Vec<(usize, climate::ClimateData)> = (0..members)
        .map(|m| (m, climate::member_input(&cfg, m)))
        .collect();

    let sampler = Sampler::new(
        &registry,
        Arc::new(WallMonitorClock::new()),
        SamplerConfig {
            capacity: 512,
            progress: Some(ProgressTarget {
                counter: "executor.items_completed".to_string(),
                total: members as u64,
            }),
        },
        executor_health_spec(&exec, STAGES.len()),
    );
    let handle = sampler.start(Duration::from_millis(1));
    let (_outputs, _stages) = pipeline.run_batch_streaming(items, &exec).unwrap();
    let report = handle.stop();
    drop(scope);

    // The injected 12 ms/item lag dominates every other stage on this
    // tiny grid, so the slowed stage must win the busy-integral vote.
    let diag = report.diagnose();
    let bottleneck = diag
        .bottleneck
        .clone()
        .expect("a bottleneck stage is named");
    assert_eq!(
        (bottleneck.pipeline.as_str(), bottleneck.stage.as_str()),
        ("climate-batch", slow),
        "seed {seed}: diagnosis named the wrong stage\n{}",
        diag.render()
    );
    assert!(diag.observed_ticks >= 2, "sampler barely ticked");

    // Executor series were captured, and live progress reached total.
    assert!(report
        .series
        .iter()
        .any(|s| s.name.starts_with("executor.")));
    let done = report
        .series_named("executor.items_completed")
        .expect("live progress counter sampled");
    assert_eq!(done.latest().unwrap().value, members as f64);

    // The JSONL artifact round-trips byte-identically.
    let text = report.to_jsonl();
    let parsed = MonitorReport::parse_jsonl(&text).unwrap();
    assert_eq!(parsed.to_jsonl(), text);
    assert_eq!(parsed.ticks, report.ticks);
    assert_eq!(parsed.series.len(), report.series.len());
}

/// Drive one registry through a fixed mutation sequence under a
/// [`ManualClock`], sampling after each step; returns the artifact.
fn scripted_run() -> String {
    let registry = Registry::new();
    let clock = Arc::new(ManualClock::new());
    let sampler = Sampler::new(
        &registry,
        clock.clone(),
        SamplerConfig {
            capacity: 16,
            progress: None,
        },
        drai::telemetry::monitor::HealthSpec::new(),
    );
    let items = registry.counter("executor.items_completed");
    let depth = registry.gauge("executor.queue_depth");
    let lat = registry.histogram("stage.batch.latency_ns");
    for step in 0..12u64 {
        items.add(step % 3);
        depth.set((step % 5) as i64);
        lat.record(step * 100);
        clock.advance(Duration::from_millis(7));
        sampler.tick();
    }
    sampler.report().to_jsonl()
}

/// Injectable clock ⇒ the artifact is a pure function of the mutation
/// sequence: two independent runs are bitwise identical.
#[test]
fn sampler_is_deterministic_under_manual_clock() {
    let a = scripted_run();
    let b = scripted_run();
    assert_eq!(a, b);
    // And it parses back to the same artifact.
    let parsed = MonitorReport::parse_jsonl(&a).unwrap();
    assert_eq!(parsed.to_jsonl(), a);
}

/// Over-capacity series drop oldest points: exactly `capacity` survive,
/// oldest-first, with strictly increasing ticks ending at the latest.
#[test]
fn ring_buffer_keeps_only_the_last_capacity_points() {
    let registry = Registry::new();
    let clock = Arc::new(ManualClock::new());
    let sampler = Sampler::new(
        &registry,
        clock.clone(),
        SamplerConfig {
            capacity: 4,
            progress: None,
        },
        drai::telemetry::monitor::HealthSpec::new(),
    );
    let c = registry.counter("monitor.samples.test_feed");
    for _ in 0..10 {
        c.incr();
        clock.advance(Duration::from_millis(1));
        sampler.tick();
    }
    let report = sampler.report();
    let series = report
        .series_named("monitor.samples.test_feed")
        .expect("fed counter has a series");
    assert_eq!(series.len(), 4);
    assert_eq!(series.capacity(), 4);
    let ticks: Vec<u64> = series.iter().map(|p| p.tick).collect();
    assert!(
        ticks.windows(2).all(|w| w[0] < w[1]),
        "ticks not increasing"
    );
    assert_eq!(*ticks.last().unwrap(), 10);
    // After wraparound every surviving counter point still carries the
    // correct cumulative value and per-tick delta.
    for p in series.iter() {
        assert_eq!(p.value, p.tick as f64);
        assert_eq!(p.delta, 1.0);
    }
}
