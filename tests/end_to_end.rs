//! Cross-crate integration tests: every archetype pipeline end-to-end,
//! the readiness ladder walked by a real pipeline, provenance replay, and
//! corruption detection across the full stack.

use drai::core::readiness::{ProcessingStage, ReadinessLevel};
use drai::core::ReadinessAssessor;
use drai::domains::{bio, climate, fusion, materials};
use drai::io::shard::ShardReader;
use drai::io::sink::{LocalFs, MemSink, StorageSink};
use drai::provenance::ArtifactId;
use drai::tensor::LatLonGrid;
use std::sync::Arc;

fn climate_cfg() -> climate::ClimateConfig {
    climate::ClimateConfig {
        src_grid: LatLonGrid::global(12, 24),
        dst_grid: LatLonGrid::global(8, 16),
        timesteps: 12,
        seed: 1,
        shard_bytes: 64 * 1024,
        ..climate::ClimateConfig::default()
    }
}

fn fusion_cfg() -> fusion::FusionConfig {
    fusion::FusionConfig {
        shots: 10,
        shot_seconds: 0.6,
        clock_hz: 400.0,
        window_len: 32,
        window_stride: 16,
        seed: 2,
        ..fusion::FusionConfig::default()
    }
}

fn bio_cfg() -> bio::BioConfig {
    bio::BioConfig {
        patients: 20,
        tile_len: 64,
        seed: 3,
        ..bio::BioConfig::default()
    }
}

fn materials_cfg() -> materials::MaterialsConfig {
    materials::MaterialsConfig {
        structures: 12,
        cell_atoms: 2,
        seed: 4,
        ..materials::MaterialsConfig::default()
    }
}

#[test]
fn all_four_archetypes_reach_level_five() {
    let assessor = ReadinessAssessor::new();
    let sink = Arc::new(MemSink::new());
    let runs = [
        climate::run(&climate_cfg(), sink.clone()).unwrap().manifest,
        fusion::run(&fusion_cfg(), sink.clone()).unwrap().manifest,
        bio::run(&bio_cfg(), sink.clone()).unwrap().manifest,
        materials::run(&materials_cfg(), sink).unwrap().manifest,
    ];
    for manifest in &runs {
        let a = assessor.assess(manifest).unwrap();
        assert_eq!(
            a.overall,
            ReadinessLevel::FullyAiReady,
            "{} stuck at {} ({:?})",
            manifest.name,
            a.overall,
            a.blocking()
        );
    }
    // Four distinct modalities, as in Table 1.
    let modalities: std::collections::BTreeSet<&str> =
        runs.iter().map(|m| m.modality.name()).collect();
    assert_eq!(modalities.len(), 4);
}

#[test]
fn archetypes_cover_the_canonical_stage_sequence() {
    // §3.5: every archetype's stages map onto
    // ingest → preprocess → transform → structure → shard, in order
    // (individual archetypes may skip stages they don't need).
    let sink = Arc::new(MemSink::new());
    let runs = [
        climate::run(&climate_cfg(), sink.clone()).unwrap(),
        fusion::run(&fusion_cfg(), sink.clone()).unwrap(),
        bio::run(&bio_cfg(), sink.clone()).unwrap(),
        materials::run(&materials_cfg(), sink).unwrap(),
    ];
    for run in &runs {
        let kinds: Vec<ProcessingStage> = run.stages.iter().map(|s| s.kind).collect();
        // Monotone non-decreasing stage order.
        assert!(
            kinds.windows(2).all(|w| w[0].index() <= w[1].index()),
            "{}: stages out of canonical order: {kinds:?}",
            run.manifest.name
        );
        // Every pipeline starts by ingesting and ends by sharding.
        assert_eq!(kinds.first(), Some(&ProcessingStage::Ingest));
        assert_eq!(kinds.last(), Some(&ProcessingStage::Shard));
        // And did measurable work.
        assert!(run.stages.iter().any(|s| s.throughput.records > 0));
    }
}

#[test]
fn real_filesystem_round_trip() {
    // The same pipelines run against a real directory, not just MemSink.
    let dir = std::env::temp_dir().join(format!("drai-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sink = Arc::new(LocalFs::new(&dir).unwrap());
    let run = climate::run(&climate_cfg(), sink.clone()).unwrap();
    assert!(!run.shard_files.is_empty());
    let reader = ShardReader::open("climate/train", sink.as_ref()).unwrap();
    let records = reader.read_all().unwrap();
    assert_eq!(
        records.len() as u64,
        reader.manifest().total_records,
        "manifest record count disagrees with actual records"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn provenance_links_shards_to_raw_inputs() {
    let sink = Arc::new(MemSink::new());
    let run = climate::run(&climate_cfg(), sink.clone()).unwrap();
    // Pick a shard artifact recorded in the ledger and ask for its
    // lineage; it must reach back to recorded operations including
    // regrid and normalize.
    let jsonl = run.ledger.to_jsonl();
    assert!(jsonl.contains("\"operation\":\"ingest\""));
    assert!(jsonl.contains("\"operation\":\"regrid\""));
    assert!(jsonl.contains("\"operation\":\"normalize\""));
    assert!(jsonl.contains("\"operation\":\"shard\""));
    // Round-trip the audit log.
    let back = drai::provenance::Ledger::from_jsonl(&jsonl).unwrap();
    assert_eq!(back.len(), run.ledger.len());
    // Shard artifacts have content-derived ids matching stored bytes.
    let shard_name = &run.shard_files[0];
    let bytes = sink.read_file(shard_name).unwrap();
    let id = ArtifactId::of(&bytes);
    assert!(
        jsonl.contains(id.digest()),
        "ledger does not record the shard's content id"
    );
}

#[test]
fn reproducibility_same_seed_same_shards() {
    let cfg = climate_cfg();
    let s1 = Arc::new(MemSink::new());
    let s2 = Arc::new(MemSink::new());
    climate::run(&cfg, s1.clone()).unwrap();
    climate::run(&cfg, s2.clone()).unwrap();
    let names1 = s1.list().unwrap();
    assert_eq!(names1, s2.list().unwrap());
    for name in names1 {
        assert_eq!(
            s1.read_file(&name).unwrap(),
            s2.read_file(&name).unwrap(),
            "{name} differs across identical runs"
        );
    }
}

#[test]
fn different_seeds_different_data() {
    let mut cfg2 = climate_cfg();
    cfg2.seed += 1;
    let s1 = Arc::new(MemSink::new());
    let s2 = Arc::new(MemSink::new());
    climate::run(&climate_cfg(), s1.clone()).unwrap();
    climate::run(&cfg2, s2.clone()).unwrap();
    let raw1 = s1.read_file("raw/tas.nc").unwrap();
    let raw2 = s2.read_file("raw/tas.nc").unwrap();
    assert_ne!(raw1, raw2);
}

#[test]
fn corrupted_shard_detected_through_full_stack() {
    let sink = Arc::new(MemSink::new());
    let run = fusion::run(&fusion_cfg(), sink.clone()).unwrap();
    let name = run
        .shard_files
        .iter()
        .find(|n| n.contains("train"))
        .expect("train shard exists");
    let mut bytes = sink.read_file(name).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    sink.write_file(name, &bytes).unwrap();
    let reader = ShardReader::open("fusion/train", sink.as_ref()).unwrap();
    let mut saw_error = false;
    for i in 0..reader.manifest().shards.len() {
        if reader.read_shard(i).is_err() {
            saw_error = true;
        }
    }
    assert!(saw_error, "corruption slipped through CRC verification");
}

#[test]
fn manifest_evidence_downgrade_detected() {
    // If a pipeline claims level 5 but the shards are missing, the
    // *manifest evidence* should be falsifiable: strip the flag and the
    // assessor downgrades. (Guards against assessors that trust labels.)
    let sink = Arc::new(MemSink::new());
    let run = materials::run(&materials_cfg(), sink).unwrap();
    let assessor = ReadinessAssessor::new();
    let mut m = run.manifest.clone();
    assert_eq!(
        assessor.assess(&m).unwrap().overall,
        ReadinessLevel::FullyAiReady
    );
    m.anonymized = false; // materials has no PHI → no effect
    assert_eq!(
        assessor.assess(&m).unwrap().overall,
        ReadinessLevel::FullyAiReady
    );
    m.normalized_final = false;
    m.transform_audited = false;
    let a = assessor.assess(&m).unwrap();
    assert_eq!(a.overall, ReadinessLevel::Labeled);
}

#[test]
fn bio_secure_shards_unreadable_without_secret() {
    let cfg = bio_cfg();
    let sink = Arc::new(MemSink::new());
    let run = bio::run(&cfg, sink.clone()).unwrap();
    for name in &run.shard_files {
        let enc = sink.read_file(name).unwrap();
        assert!(
            drai::formats::h5lite::H5File::from_bytes(&enc).is_err(),
            "{name} is readable without decryption"
        );
    }
}
