//! Framework-level integration: Table 1 templates validate the real
//! domain pipelines, dataset cards generate from real runs, and the
//! simulated parallel filesystem serves as a drop-in shard sink.

use drai::core::card::DatasetCard;
use drai::core::quality::QualityReport;
use drai::core::templates::DomainTemplate;
use drai::core::ReadinessAssessor;
use drai::domains::{climate, fusion, materials};
use drai::io::json::Json;
use drai::io::sink::MemSink;
use drai::provenance::Ledger;
use drai::sim::{SimConfig, SimFs};
use drai::tensor::LatLonGrid;
use std::sync::Arc;

#[test]
fn templates_validate_real_domain_pipelines() {
    // Build the actual pipelines (not run them) and check them against
    // their declarative templates.
    let sink: Arc<MemSink> = Arc::new(MemSink::new());
    let ledger = Arc::new(Ledger::new());

    let climate_p = climate::build_pipeline(
        &climate::ClimateConfig::default(),
        sink.clone(),
        ledger.clone(),
    );
    assert!(
        DomainTemplate::climate().validate(&climate_p).is_empty(),
        "climate pipeline violates its template"
    );

    let fusion_p = fusion::build_pipeline(
        &fusion::FusionConfig::default(),
        sink.clone(),
        ledger.clone(),
    );
    assert!(
        DomainTemplate::fusion().validate(&fusion_p).is_empty(),
        "fusion pipeline violates its template"
    );

    let materials_p =
        materials::build_pipeline(&materials::MaterialsConfig::default(), sink, ledger);
    assert!(
        DomainTemplate::materials()
            .validate(&materials_p)
            .is_empty(),
        "materials pipeline violates its template"
    );
}

#[test]
fn template_catalog_matches_table1() {
    let all = DomainTemplate::all();
    assert_eq!(all.len(), 4);
    // Shard formats match the Table 1 architecture column's storage story.
    let formats: Vec<&str> = all.iter().map(|t| t.shard_format).collect();
    assert!(formats.contains(&"npz"));
    assert!(formats.contains(&"tfrecord"));
    assert!(formats.contains(&"h5lite+chacha20"));
    assert!(formats.contains(&"bp+jsonl"));
}

#[test]
fn dataset_card_from_real_run() {
    let cfg = climate::ClimateConfig {
        src_grid: LatLonGrid::global(12, 24),
        dst_grid: LatLonGrid::global(8, 16),
        timesteps: 8,
        ..climate::ClimateConfig::default()
    };
    let sink = Arc::new(MemSink::new());
    let run = climate::run(&cfg, sink).unwrap();
    let assessment = ReadinessAssessor::new().assess(&run.manifest).unwrap();
    // Quality from the raw synthetic fields.
    let quality: Vec<QualityReport> = run
        .manifest
        .schema
        .iter()
        .map(|v| QualityReport::compute(&v.name, &[1.0, 2.0, 3.0]))
        .collect();
    let card = DatasetCard::new(run.manifest.clone(), assessment, quality);
    let md = card.to_markdown();
    assert!(md.contains("# Dataset card: cmip-synth"));
    assert!(md.contains("5 - Fully AI-ready"));
    assert!(md.contains("| tas | f32 | K |"));
    // JSON card parses and carries the readiness level.
    let json = Json::parse(&card.to_json().to_string_compact()).unwrap();
    assert!(json
        .get("readiness")
        .unwrap()
        .get("overall")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("Fully AI-ready"));
}

#[test]
fn simulated_parallel_fs_serves_domain_pipeline() {
    // The Lustre-like simulator is a valid StorageSink: run the whole
    // materials archetype against it and check virtual I/O accrued.
    let fs = SimFs::new(SimConfig {
        ost_count: 16,
        stripe_count: 8,
        ..SimConfig::default()
    })
    .unwrap();
    let cfg = materials::MaterialsConfig {
        structures: 12,
        cell_atoms: 2,
        ..materials::MaterialsConfig::default()
    };
    let run = materials::run(&cfg, Arc::new(fs.clone())).unwrap();
    assert!(!run.shard_files.is_empty());
    assert!(fs.makespan() > 0.0, "no virtual I/O recorded");
    let report = fs.ost_report();
    let active = report.bytes_per_ost.iter().filter(|&&b| b > 0).count();
    assert!(active >= 2, "striping did not spread load: {report:?}");
    // The shards read back identically from the simulator.
    let bytes = drai::io::sink::StorageSink::read_file(&fs, "materials/train.bp").unwrap();
    let reader = drai::formats::bp::BpReader::open(&bytes).unwrap();
    assert!(reader.group_count() > 0);
    assert!(fs.total_read_bytes() > 0);
}

#[test]
fn grib_and_netcdf_ingest_agree() {
    let cfg = climate::ClimateConfig {
        src_grid: LatLonGrid::global(8, 16),
        dst_grid: LatLonGrid::global(4, 8),
        timesteps: 6,
        ..climate::ClimateConfig::default()
    };
    let sink = MemSink::new();
    climate::generate_raw(&cfg, &sink).unwrap();
    climate::generate_raw_grib(&cfg, &sink, drai::formats::grib::Packing { bits: 20 }).unwrap();
    let grib_fields = climate::ingest_grib(&cfg, &sink).unwrap();
    assert_eq!(grib_fields.len(), 4);
    for f in &grib_fields {
        assert_eq!(f.len(), cfg.timesteps * cfg.src_grid.ncells());
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
