//! End-to-end telemetry coverage: run the climate archetype against an
//! in-memory sink and assert that the global registry captured one span
//! per pipeline stage, sane counters, and at least one latency
//! histogram — then round-trip the snapshot through the JSON exporter.
//!
//! This lives in a dedicated integration-test binary so the global
//! registry is not shared with unrelated tests; everything below runs
//! inside a single `#[test]` to keep the snapshot deterministic.

use drai::domains::climate::{self, ClimateConfig};
use drai::io::sink::MemSink;
use drai::telemetry::Registry;
use drai::tensor::LatLonGrid;
use std::sync::Arc;

const STAGES: [&str; 4] = ["validate", "regrid", "normalize", "shard"];

#[test]
fn climate_run_populates_telemetry() {
    let cfg = ClimateConfig {
        src_grid: LatLonGrid::global(12, 24),
        dst_grid: LatLonGrid::global(8, 16),
        timesteps: 10,
        ..ClimateConfig::default()
    };
    let run = climate::run(&cfg, Arc::new(MemSink::new())).expect("climate run");
    let snap = Registry::global().snapshot();

    // One span per stage, in pipeline order, each with a measured
    // duration and the stage's record count attached.
    let mut prev_start = 0u64;
    for stage in STAGES {
        let name = format!("pipeline.climate.{stage}");
        let spans = snap.spans_named(&name);
        assert_eq!(spans.len(), 1, "expected exactly one span for {name}");
        let span = spans[0];
        assert!(span.dur_ns > 0, "{name} has zero duration");
        assert_eq!(
            span.items, cfg.timesteps as u64,
            "{name} items should equal timesteps"
        );
        assert!(span.bytes > 0, "{name} should report bytes processed");
        assert!(
            span.start_ns >= prev_start,
            "{name} started before the previous stage"
        );
        prev_start = span.start_ns;

        // Item counters accumulate monotonically with the spans: after a
        // single run each stage counter equals the stage's span items.
        let records = snap.counters[&format!("{name}.records")];
        assert_eq!(records, span.items, "{name}.records counter mismatch");
        assert!(snap.counters[&format!("{name}.bytes")] > 0);

        // Every span drop also feeds a `<name>.ns` latency histogram.
        let hist = &snap.histograms[&format!("{name}.ns")];
        assert_eq!(hist.count, 1);
        assert!(hist.min > 0 && hist.max >= hist.min);
    }

    // The domain wrapper span covers the whole run and carries the
    // manifest's record count.
    let domain = snap.spans_named("domain.climate.run");
    assert_eq!(domain.len(), 1);
    assert_eq!(domain[0].items, run.manifest.records);
    assert!(domain[0].dur_ns > 0);

    // The I/O layer underneath was exercised too: shards were encoded
    // and written through the instrumented sink.
    assert!(snap.counters["io.shard.records"] > 0);
    assert!(snap.counters["io.shard.bytes_in"] > 0);
    assert!(snap.counters["io.sink.bytes_written"] > 0);
    assert!(snap.counters["io.sink.files_written"] > 0);

    // Exported JSON carries the same data and is structurally sound.
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for stage in STAGES {
        assert!(
            json.contains(&format!("\"pipeline.climate.{stage}\"")),
            "JSON export missing stage {stage}"
        );
        assert!(json.contains(&format!("\"pipeline.climate.{stage}.ns\"")));
    }
    assert!(json.contains("\"domain.climate.run\""));
    let balance = json.chars().fold(0i64, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    });
    assert_eq!(balance, 0, "unbalanced braces in exported JSON");

    // JSONL: one well-formed object per line, spans included.
    let jsonl = snap.to_jsonl();
    assert!(jsonl.lines().count() >= snap.spans.len());
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }

    // Criterion-style estimate files land where summarize_bench.py looks.
    let dir = std::env::temp_dir().join(format!("drai-telemetry-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = drai::telemetry::write_criterion_estimates(&snap, &dir).expect("export");
    assert!(written >= STAGES.len());
    let estimate = dir.join("pipeline/climate/validate/ns/new/estimates.json");
    assert!(estimate.is_file(), "missing {}", estimate.display());
    let body = std::fs::read_to_string(estimate).unwrap();
    assert!(body.contains("\"mean\"") && body.contains("\"point_estimate\""));
    std::fs::remove_dir_all(&dir).unwrap();
}
