//! Streaming bounded-memory executor acceptance tests:
//!
//! * property — for arbitrary inputs, per-item stage delays, channel
//!   capacities and worker counts, the streaming executor produces
//!   exactly `run_batch`'s outputs in input order;
//! * a panicking stage propagates the panic to the caller without
//!   deadlocking the worker/feeder threads;
//! * error ordering — with several failing items in flight, streaming
//!   and rayon batch agree on the lowest-input-index error;
//! * fault injection — a cached stage whose cache storage corrupts
//!   entries (seeded [`FaultSink`], CI `FAULT_SEED` sweep) still
//!   streams bit-identical outputs, quarantining damaged entries.

use drai::cache::clock::LogicalClock;
use drai::cache::{CachedPipelineExt, StageCache};
use drai::core::executor::{ExecutorConfig, StreamingBatchExt};
use drai::core::pipeline::{Pipeline, StageCounters};
use drai::core::ProcessingStage as S;
use drai::io::fault::{FaultConfig, FaultSink};
use drai::io::sink::{MemSink, StorageSink};
use drai::telemetry::{Registry, TraceContext};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Deterministic busy-work standing in for stage compute time.
fn spin(iters: u64) -> u64 {
    let mut acc = 1u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

/// A three-stage arithmetic pipeline whose per-item, per-stage delay is
/// derived from `salt` — so every proptest case exercises a different
/// interleaving of fast and slow items across the stage chain.
fn delayed_pipeline(salt: u64) -> Pipeline<u64> {
    let stage_fn = |s: u64| {
        move |x: u64, c: &mut StageCounters| {
            let iters = x.wrapping_mul(salt).wrapping_add(s) % 5 * 2_000;
            std::hint::black_box(spin(iters));
            c.records = 1;
            Ok(x.wrapping_mul(3).wrapping_add(s))
        }
    };
    Pipeline::builder("delayed")
        .stage("a", S::Ingest, stage_fn(1))
        .stage("b", S::Transform, stage_fn(2))
        .stage("c", S::Shard, stage_fn(3))
        .build()
}

proptest! {
    #[test]
    fn streaming_outputs_match_run_batch_in_input_order(
        items in proptest::collection::vec(any::<u64>(), 0..16),
        salt in any::<u64>(),
        capacity in 1usize..5,
        workers in 1usize..4,
    ) {
        let pipeline = delayed_pipeline(salt);
        let cfg = ExecutorConfig {
            channel_capacity: capacity,
            workers_per_stage: workers,
        };
        let (streamed, stream_stages) = pipeline
            .run_batch_streaming(items.clone(), &cfg)
            .expect("streaming run");
        let (batched, batch_stages) = pipeline.run_batch(items).expect("batch run");
        prop_assert_eq!(streamed, batched);
        // Merged volume counters agree stage by stage (timings differ).
        for (a, b) in stream_stages.iter().zip(&batch_stages) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.throughput.records, b.throughput.records);
        }
    }
}

#[test]
fn panicking_stage_propagates_without_deadlock() {
    let pipeline: Pipeline<u64> = Pipeline::builder("panicky")
        .stage("pass", S::Ingest, |x: u64, _c: &mut StageCounters| Ok(x))
        .stage("boom", S::Transform, |x: u64, _c: &mut StageCounters| {
            if x == 13 {
                panic!("stage blew up on item 13");
            }
            Ok(x)
        })
        .build();
    let cfg = ExecutorConfig {
        channel_capacity: 2,
        workers_per_stage: 2,
    };
    // If cancellation failed to drain in-flight items this would hang,
    // not just fail — the harness timeout is the deadlock detector.
    let err = catch_unwind(AssertUnwindSafe(|| {
        pipeline.run_batch_streaming((0..64).collect(), &cfg)
    }))
    .expect_err("panic must reach the caller");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("item 13"), "unexpected payload: {msg:?}");
}

#[test]
fn streaming_and_rayon_batch_agree_on_lowest_index_error() {
    let pipeline: Pipeline<u64> = Pipeline::builder("flaky")
        .stage("slow-fail", S::Ingest, |x: u64, _c: &mut StageCounters| {
            // Items 7, 21 and 35 all fail; later ones tend to fail
            // *first* in wall time because earlier items spin longer.
            std::hint::black_box(spin((64 - x) * 1_500));
            if x % 14 == 7 {
                Err(format!("item {x} failed"))
            } else {
                Ok(x)
            }
        })
        .build();
    let cfg = ExecutorConfig {
        channel_capacity: 2,
        workers_per_stage: 3,
    };
    for rep in 0..8 {
        let stream_err = pipeline
            .run_batch_streaming((0..48).collect(), &cfg)
            .expect_err("must fail");
        let batch_err = pipeline
            .run_batch((0..48).collect())
            .expect_err("must fail");
        assert_eq!(
            stream_err.to_string(),
            batch_err.to_string(),
            "rep {rep}: executors disagree on the surfaced error"
        );
        assert!(
            stream_err.to_string().contains("item 7 failed"),
            "rep {rep}: lowest input index must win, got: {stream_err}"
        );
    }
}

#[test]
fn corrupting_cache_storage_cannot_alter_streamed_outputs() {
    let seed = FaultConfig::seed_from_env(1);
    let registry = Registry::new();
    let ctx = TraceContext::root(&registry);

    // Reference outputs: the same pipeline shape with no cache at all.
    let expected: Vec<Vec<u8>> = (0..24u8)
        .map(|i| {
            let mut v = vec![i; 64];
            v.iter_mut().for_each(|b| *b = b.wrapping_mul(31));
            v
        })
        .collect();

    let build = |cache: Arc<StageCache>| -> Pipeline<Vec<u8>> {
        Pipeline::builder("faulted")
            .cached_stage(
                "scale",
                S::Transform,
                cache,
                b"fp".to_vec(),
                |mut v: Vec<u8>, c: &mut StageCounters| {
                    v.iter_mut().for_each(|b| *b = b.wrapping_mul(31));
                    c.records = 1;
                    c.bytes = v.len() as u64;
                    Ok(v)
                },
            )
            .build()
    };
    // 30% of cache writes land bit-flipped: warm reads must detect the
    // damage by digest, quarantine the entry and recompute.
    let fault_cfg = FaultConfig {
        seed,
        corrupt: 0.30,
        ..FaultConfig::default()
    };
    let cache_sink: Arc<dyn StorageSink> = Arc::new(FaultSink::new(MemSink::new(), fault_cfg));
    let cache =
        Arc::new(StageCache::new(cache_sink, 64 << 20).with_clock(Arc::new(LogicalClock::new())));
    let items = || -> Vec<Vec<u8>> { (0..24u8).map(|i| vec![i; 64]).collect() };
    let cfg = ExecutorConfig::default();

    ctx.scope(|| {
        let cold = build(cache.clone());
        let (cold_out, _) = cold
            .run_batch_streaming(items(), &cfg)
            .expect("cold streaming run");
        assert_eq!(cold_out, expected, "cold outputs wrong (seed {seed})");

        let warm = build(cache.clone());
        let (warm_out, _) = warm
            .run_batch_streaming(items(), &cfg)
            .expect("warm streaming run");
        assert_eq!(
            warm_out, expected,
            "corrupted cache entries altered outputs (seed {seed})"
        );
    });

    let snap = registry.snapshot();
    let hits = snap.counters.get("cache.hits").copied().unwrap_or(0);
    let misses = snap.counters.get("cache.misses").copied().unwrap_or(0);
    let quarantined = snap.counters.get("cache.quarantined").copied().unwrap_or(0);
    // Every probe resolved one way or the other, across both passes.
    assert_eq!(hits + misses, 48, "counters: {:?}", snap.counters);
    // At a 30% corruption rate over 24 entries, some warm probes must
    // have quarantined (probability of zero corrupt writes ≈ 0.7^24).
    assert!(
        quarantined > 0,
        "no corrupt entry quarantined at 30% rate (seed {seed}): {:?}",
        snap.counters
    );
    // Clean entries still served as fast-path hits through the
    // executor, skipping their channel hop.
    assert_eq!(
        snap.counters
            .get("executor.shortcircuits")
            .copied()
            .unwrap_or(0),
        hits,
        "every hit must short-circuit its channel hop: {:?}",
        snap.counters
    );
}
