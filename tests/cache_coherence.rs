//! Cache coherence acceptance tests:
//!
//! * concurrency — parallel `prefetch_map` workers sharing one
//!   [`StageCache`] never observe torn entries, and the hit/miss
//!   counters account for every lookup;
//! * a writer racing the LRU evictor never serves a partial entry;
//! * fault injection — the cached climate pipeline over a corrupting
//!   [`FaultSink`] quarantines damaged entries and recomputes them,
//!   producing bit-identical output digests. Runs under the CI
//!   `FAULT_SEED` sweep.

use drai::cache::clock::LogicalClock;
use drai::cache::{CacheBytes, CacheKey, StageCache};
use drai::domains::climate::{self, ClimateConfig, ClimateData};
use drai::domains::{cached, climate as climate_mod};
use drai::formats::netcdf::NcFile;
use drai::io::checksum::content_hash128;
use drai::io::fault::{FaultConfig, FaultSink};
use drai::io::parallel::prefetch_map;
use drai::io::sink::{MemSink, StorageSink};
use drai::provenance::Ledger;
use drai::telemetry::{Registry, TraceContext};
use drai::tensor::LatLonGrid;
use std::sync::Arc;

fn test_cache(capacity: u64) -> Arc<StageCache> {
    Arc::new(
        StageCache::new(Arc::new(MemSink::new()) as Arc<dyn StorageSink>, capacity)
            .with_clock(Arc::new(LogicalClock::new())),
    )
}

/// Deterministic payload for input `i`: what every worker must agree on.
fn payload_for(i: usize) -> Vec<u8> {
    (0..256).map(|j| ((i * 131 + j * 7) % 251) as u8).collect()
}

#[test]
fn parallel_workers_share_cache_without_torn_entries() {
    let registry = Registry::new();
    let ctx = TraceContext::root(&registry);
    let cache = test_cache(64 << 20);

    // 64 tasks over 16 distinct inputs: plenty of same-key contention.
    const TASKS: usize = 64;
    const DISTINCT: usize = 16;
    let worker_cache = cache.clone();
    let results: Vec<(usize, Vec<u8>)> = ctx.scope(|| {
        prefetch_map((0..TASKS).collect::<Vec<_>>(), 8, 8, move |task: usize| {
            let i = task % DISTINCT;
            let input = format!("input-{i}").into_bytes();
            let key = CacheKey::compute("stage", &input, b"fp");
            let value = match worker_cache.get(&key) {
                Some(hit) => hit.payload,
                None => {
                    let fresh = payload_for(i);
                    let _ = worker_cache.put(&key, &fresh, i as u64, fresh.len() as u64);
                    fresh
                }
            };
            (i, value)
        })
        .collect()
    });

    assert_eq!(results.len(), TASKS);
    for (i, value) in &results {
        assert_eq!(
            value,
            &payload_for(*i),
            "input {i}: a worker observed a torn or foreign entry"
        );
    }

    // Every lookup was either a hit or a miss — the counters must sum
    // exactly to the number of gets issued.
    let snap = registry.snapshot();
    let hits = snap.counters.get("cache.hits").copied().unwrap_or(0);
    let misses = snap.counters.get("cache.misses").copied().unwrap_or(0);
    assert_eq!(
        hits + misses,
        TASKS as u64,
        "hit/miss accounting must cover every get: {:?}",
        snap.counters
    );
    // With 16 distinct keys and 64 tasks there must be both kinds.
    assert!(
        misses >= DISTINCT as u64,
        "each distinct key misses at least once"
    );
    assert!(hits > 0, "repeat lookups must produce hits");
}

#[test]
fn writer_racing_evictor_never_serves_partial_entry() {
    let registry = Registry::new();
    let ctx = TraceContext::root(&registry);
    // Capacity fits only a handful of 256-byte payload entries, so puts
    // continuously evict while other workers read the same key space.
    let cache = test_cache(2048);

    const TASKS: usize = 200;
    const DISTINCT: usize = 8;
    let worker_cache = cache.clone();
    let outcomes: Vec<Option<(usize, Vec<u8>)>> = ctx.scope(|| {
        prefetch_map((0..TASKS).collect::<Vec<_>>(), 8, 8, move |task: usize| {
            let i = task % DISTINCT;
            let input = format!("evict-{i}").into_bytes();
            let key = CacheKey::compute("stage", &input, b"fp");
            if task.is_multiple_of(3) {
                let fresh = payload_for(i);
                let _ = worker_cache.put(&key, &fresh, 0, 0);
                None
            } else {
                worker_cache.get(&key).map(|hit| (i, hit.payload))
            }
        })
        .collect()
    });

    // Every served hit must be the complete, correct payload — an entry
    // mid-eviction or mid-write must read as a miss, never as garbage.
    let mut served = 0;
    for outcome in outcomes.into_iter().flatten() {
        let (i, value) = outcome;
        assert_eq!(value, payload_for(i), "partial entry served for input {i}");
        served += 1;
    }
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("cache.evictions").copied().unwrap_or(0) > 0,
        "capacity was sized to force evictions: {:?}",
        snap.counters
    );
    // Quarantines here would mean a reader decoded a half-written blob.
    assert_eq!(
        snap.counters.get("cache.quarantined").copied().unwrap_or(0),
        0,
        "no entry may ever decode as corrupt under clean racing"
    );
    let _ = served; // hits are timing-dependent; correctness is not.
}

fn climate_cfg() -> ClimateConfig {
    ClimateConfig {
        src_grid: LatLonGrid::global(12, 24),
        dst_grid: LatLonGrid::global(8, 16),
        timesteps: 6,
        seed: 7,
        shard_bytes: 64 * 1024,
        ..ClimateConfig::default()
    }
}

fn climate_input(cfg: &ClimateConfig) -> ClimateData {
    let raw = MemSink::new();
    let names = climate_mod::generate_raw(cfg, &raw).expect("generate");
    let fields = names
        .iter()
        .enumerate()
        .map(|(vi, name)| {
            let bytes = raw.read_file(name).expect("read raw");
            let nc = NcFile::from_bytes(&bytes).expect("parse nc");
            nc.var(climate::VARIABLES[vi].0)
                .expect("variable present")
                .data
                .to_f64_vec()
        })
        .collect();
    ClimateData {
        fields,
        grid: cfg.src_grid.clone(),
        timesteps: cfg.timesteps,
        normalizers: vec![],
    }
}

#[test]
fn corrupted_cache_entries_are_quarantined_and_recomputed() {
    let seed = FaultConfig::seed_from_env(1);
    let cfg = climate_cfg();
    let input = climate_input(&cfg);

    // Reference digest from the plain (uncached) pipeline.
    let plain_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
    let plain = climate_mod::build_pipeline(&cfg, plain_sink, Arc::new(Ledger::new()));
    let plain_digest = content_hash128(
        &plain
            .run(input.clone())
            .expect("plain run")
            .output
            .to_cache_bytes(),
    );

    // Cache persisted through a FaultSink that silently bit-flips half
    // of all stored blobs (seeded: the CI FAULT_SEED matrix replays
    // different corruption schedules).
    let fault_sink = Arc::new(FaultSink::new(
        MemSink::new(),
        FaultConfig {
            seed: seed.wrapping_add(0xCAC4E),
            corrupt: 0.5,
            ..FaultConfig::default()
        },
    ));
    let cache = Arc::new(
        StageCache::new(fault_sink.clone() as Arc<dyn StorageSink>, 64 << 20)
            .with_clock(Arc::new(LogicalClock::new())),
    );

    let registry = Registry::new();
    let ctx = TraceContext::root(&registry);
    ctx.scope(|| {
        // Cold pass populates the cache (some entries stored corrupted).
        let out_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let p = cached::build_cached_climate_pipeline(
            &cfg,
            out_sink,
            Arc::new(Ledger::new()),
            cache.clone(),
        );
        let cold = p.run(input.clone()).expect("cold run").output;
        assert_eq!(
            content_hash128(&cold.to_cache_bytes()),
            plain_digest,
            "cold cached run must match the plain pipeline"
        );

        // Hand-corrupt one entry behind the cache's back so the
        // quarantine path fires under every FAULT_SEED, not just the
        // seeds whose schedule happens to corrupt a write.
        let blobs = fault_sink.inner().list().expect("list cache blobs");
        let victim = blobs
            .iter()
            .find(|n| n.starts_with("cache/") && !n.contains("quarantine"))
            .expect("cold run must have stored cache entries")
            .clone();
        let mut data = fault_sink.inner().read_file(&victim).expect("read entry");
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        fault_sink
            .inner()
            .write_file(&victim, &data)
            .expect("store corrupted entry");

        // Warm pass: corrupted entries (injected or hand-made) must be
        // detected, quarantined and recomputed — with identical output.
        let out_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let p = cached::build_cached_climate_pipeline(
            &cfg,
            out_sink,
            Arc::new(Ledger::new()),
            cache.clone(),
        );
        let warm = p.run(input.clone()).expect("warm run").output;
        assert_eq!(
            content_hash128(&warm.to_cache_bytes()),
            plain_digest,
            "corruption must degrade to recomputation, never to wrong output (seed {seed})"
        );
    });

    let snap = registry.snapshot();
    assert!(
        snap.counters.get("cache.quarantined").copied().unwrap_or(0) >= 1,
        "the hand-corrupted entry must be quarantined (seed {seed}): {:?}",
        snap.counters
    );
    // Quarantined entries are moved aside for forensics, not deleted.
    let blobs = fault_sink.inner().list().expect("list");
    assert!(
        blobs.iter().any(|n| n.contains("quarantine")),
        "quarantined blob must be preserved under cache/quarantine/"
    );
}
