//! Offline shim for `crossbeam`: a blocking, disconnect-aware bounded
//! MPMC channel with the `crossbeam::channel` API subset used by this
//! workspace (`bounded`, cloneable `Sender`/`Receiver`, `RecvError`).

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        cap: usize,
        not_full: Condvar,
        not_empty: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of a bounded channel (cloneable).
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of a bounded channel (cloneable).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Create a bounded MPMC channel holding at most `cap` items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap.max(1)),
                senders: 1,
                receivers: 1,
            }),
            cap: cap.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Block until there is queue capacity, then enqueue `value`.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < self.0.cap {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .0
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item is available. Fails once the channel is
        /// drained and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive (None when empty, regardless of senders).
        pub fn try_recv(&self) -> Option<T> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            let v = inner.queue.pop_front();
            if v.is_some() {
                drop(inner);
                self.0.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake receivers so they observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Unblock senders so they observe disconnection; drop any
                // queued items (no receiver will ever take them).
                inner.queue.clear();
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};
    use std::thread;

    #[test]
    fn round_trip_in_order_single_consumer() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_all_items_delivered() {
        let (tx, rx) = bounded(2);
        let mut producers = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut n = 0;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(0).unwrap(); // fill the queue
        let sender = thread::spawn(move || tx.send(1)); // blocks
        thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        assert!(sender.join().unwrap().is_err());
    }
}
