//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! parking_lot API (no poisoning: a poisoned std lock is recovered by
//! taking the inner guard), backed by `std::sync`.

#![forbid(unsafe_code)]

use std::fmt;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
