//! Offline shim for `criterion`: groups, `bench_function`, `iter` /
//! `iter_batched`, and `estimates.json` output under
//! `target/criterion/<group>/<id>/new/` in the upstream layout, so
//! `scripts/summarize_bench.py` works unchanged.
//!
//! Statistics are a plain mean over the measured samples — no outlier
//! rejection or bootstrap. Respects `sample_size`, `warm_up_time`, and
//! `measurement_time` as budgets.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Throughput annotation (recorded next to the estimate).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants the
/// same (one setup per timed call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `<function>/<parameter>` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn path_segments(&self) -> Vec<String> {
        let mut segs = Vec::new();
        if !self.function.is_empty() {
            segs.push(sanitize(&self.function));
        }
        if let Some(p) = &self.parameter {
            segs.push(sanitize(p));
        }
        segs
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '/' | '\\' | ' ' => '_',
            c => c,
        })
        .collect()
}

/// Times closures and records per-iteration samples.
pub struct Bencher<'a> {
    samples_ns: &'a mut Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording until the budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if budget_start.elapsed() > self.measurement && !self.samples_ns.is_empty() {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if budget_start.elapsed() > self.measurement && !self.samples_ns.is_empty() {
                break;
            }
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and write its estimate.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::new();
        {
            let mut b = Bencher {
                samples_ns: &mut samples,
                sample_size: self.sample_size,
                warm_up: self.warm_up.min(Duration::from_millis(max_warmup_ms())),
                measurement: self.measurement,
            };
            f(&mut b);
        }
        let mut segs = vec![sanitize(&self.name)];
        segs.extend(id.path_segments());
        self.criterion.record(&segs, &samples, self.throughput);
        self
    }

    /// End the group (no-op beyond upstream parity).
    pub fn finish(&mut self) {}
}

fn max_warmup_ms() -> u64 {
    std::env::var("CRITERION_SHIM_WARMUP_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Top-level benchmark driver.
pub struct Criterion {
    out_root: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            out_root: target_dir().join("criterion"),
        }
    }
}

impl Criterion {
    /// Upstream-parity CLI hook (arguments are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Ungrouped benchmark (stored under its own name).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function("", f);
        self
    }

    fn record(&mut self, segments: &[String], samples_ns: &[f64], throughput: Option<Throughput>) {
        let display = segments
            .iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect::<Vec<_>>()
            .join("/");
        if samples_ns.is_empty() {
            eprintln!("{display}: no samples collected");
            return;
        }
        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let mut sorted = samples_ns.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n.max(1.0);
        let std_dev = var.sqrt();

        let mut dir = self.out_root.clone();
        for seg in segments {
            if !seg.is_empty() {
                dir.push(seg);
            }
        }
        dir.push("new");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("{display}: cannot create {}: {e}", dir.display());
            return;
        }
        let estimate = |v: f64| {
            format!(
                "{{\"confidence_interval\":{{\"confidence_level\":0.95,\"lower_bound\":{v},\"upper_bound\":{v}}},\"point_estimate\":{v},\"standard_error\":{}}}",
                std_dev / n.sqrt()
            )
        };
        let json = format!(
            "{{\"mean\":{},\"median\":{},\"std_dev\":{},\"sample_count\":{}}}",
            estimate(mean),
            estimate(median),
            estimate(std_dev),
            samples_ns.len()
        );
        match fs::File::create(dir.join("estimates.json")) {
            Ok(mut f) => {
                let _ = f.write_all(json.as_bytes());
            }
            Err(e) => eprintln!("{display}: cannot write estimates.json: {e}"),
        }

        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.2} Melem/s)", n as f64 / mean * 1e3),
            Throughput::Bytes(n) => {
                format!(" ({:.2} MiB/s)", n as f64 / mean * 1e9 / (1 << 20) as f64)
            }
        });
        println!(
            "{display:<50} mean {:>12}  median {:>12}{}",
            fmt_ns(mean),
            fmt_ns(median),
            rate.unwrap_or_default()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Locate the cargo target directory: `CARGO_TARGET_DIR` if set, else
/// walk up from the current directory to the workspace root (the first
/// ancestor containing `Cargo.lock` or an existing `target/`).
fn target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = Some(cwd.as_path());
    while let Some(dir) = probe {
        if dir.join("Cargo.lock").is_file() || dir.join("target").is_dir() {
            return dir.join("target");
        }
        probe = dir.parent();
    }
    cwd.join("target")
}

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runner callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_written_in_upstream_layout() {
        let tmp = std::env::temp_dir().join(format!("crit-shim-{}", std::process::id()));
        let mut c = Criterion {
            out_root: tmp.clone(),
        };
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.warm_up_time(Duration::from_millis(1));
            group.measurement_time(Duration::from_millis(50));
            group.throughput(Throughput::Bytes(1024));
            group.bench_function(BenchmarkId::new("f", 8), |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
            group.bench_function("plain", |b| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
            });
            group.finish();
        }
        let est = std::fs::read_to_string(tmp.join("g/f/8/new/estimates.json")).unwrap();
        assert!(est.contains("\"mean\""));
        assert!(est.contains("point_estimate"));
        assert!(tmp.join("g/plain/new/estimates.json").is_file());
        // Mean must parse as a positive number via the same path the
        // summarize script uses.
        let key = "\"point_estimate\":";
        let idx = est.find(key).unwrap() + key.len();
        let tail = &est[idx..];
        let end = tail.find([',', '}']).unwrap();
        let mean: f64 = tail[..end].parse().unwrap();
        assert!(mean > 0.0);
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn benchmark_id_paths() {
        assert_eq!(
            BenchmarkId::new("a b", "c/d").path_segments(),
            vec!["a_b", "c_d"]
        );
        let plain: BenchmarkId = "solo".into();
        assert_eq!(plain.path_segments(), vec!["solo"]);
    }
}
