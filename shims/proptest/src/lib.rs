//! Offline shim for `proptest`: the `proptest!` macro, the strategy
//! combinators this workspace uses, and a deterministic case runner.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and case number instead of a minimized input), and `any::<T>()`
//! uses this shim's own generators. Case count defaults to 64 and can be
//! overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

mod regex_gen;

pub use regex_gen::RegexError;

/// Deterministic RNG used by strategies (xoshiro256++/SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a test-name hash and case index.
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed ^ 0xA076_1D64_78BD_642F;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the generated input.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---- range strategies -------------------------------------------------

/// Element types usable in range strategies. A single blanket impl per
/// range shape keeps type inference working for untyped literals
/// (`0..100` infers `i32`).
pub trait RangeValue: Sized + PartialOrd + Copy {
    /// Draw from `[lo, hi)` (`inclusive` false) or `[lo, hi]` (true).
    fn draw(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(lo: $t, hi: $t, inclusive: bool, rng: &mut TestRng) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(lo: $t, hi: $t, _inclusive: bool, rng: &mut TestRng) -> $t {
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::draw(self.start, self.end, false, rng)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        T::draw(lo, hi, true, rng)
    }
}

// ---- literal strategies ----------------------------------------------

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A `&str` is a regex strategy producing matching strings.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::Regex::parse(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

// ---- any::<T>() -------------------------------------------------------

/// Types with a full-domain generator.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises NaN, infinities, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII, but include the full scalar-value range.
        if rng.next_u64() % 4 != 0 {
            (0x20 + rng.below(0x5F) as u32 as u8) as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(32) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- combinators ------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));

/// Weighted union of strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from weighted arms (weights need not sum to anything).
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of values from `element`, length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies.
pub mod string {
    use super::regex_gen;

    /// Strategy generating strings matching `pattern` (subset of regex:
    /// literals, classes, groups, `?`, `*`, `+`, `{m,n}`, alternation).
    pub fn string_regex(pattern: &str) -> Result<regex_gen::Regex, regex_gen::RegexError> {
        regex_gen::Regex::parse(pattern)
    }
}

// ---- runner -----------------------------------------------------------

fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Execute `case` repeatedly with fresh inputs; panic on the first
/// failure, tolerate a bounded number of `prop_assume!` rejections.
pub fn run_proptest<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = default_cases();
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    let max_rejects = cases as u64 * 20;
    while passed < cases {
        let mut rng = TestRng::new(hash.wrapping_add(attempt));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected as u64 > max_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejected} rejects, {passed} passes; last: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {} (seed {}) failed: {msg}",
                    passed + 1,
                    hash.wrapping_add(attempt)
                );
            }
        }
        attempt += 1;
    }
}

/// Assert a boolean property inside `proptest!` (early-returns `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, {
                #[allow(unused_parens)]
                let strategy = $strategy;
                $crate::Strategy::boxed(strategy)
            }),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, {
                #[allow(unused_parens)]
                let strategy = $strategy;
                $crate::Strategy::boxed(strategy)
            }),)+
        ])
    };
}

/// Define property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pname:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |rng| {
                    $(#[allow(unused_parens)]
                    let $pname = $crate::Strategy::generate(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    body()
                });
            }
        )*
    };
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };
    /// Nested-module access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::{collection, string};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..100, y in -1e3f64..1e3, z in 1u32..=64) {
            prop_assert!(x < 100);
            prop_assert!((-1e3..1e3).contains(&y));
            prop_assert!((1..=64).contains(&z));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..=255) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn oneof_mixes(v in prop_oneof![3 => (0i64..10), 1 => Just(-1i64)]) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }

        #[test]
        fn tuples_and_mut_bindings(mut xs in crate::collection::vec(any::<u64>(), 1..20),
                                   pair in any::<(usize, u8)>()) {
            xs.push(pair.0 as u64);
            prop_assert!(xs.len() >= 2);
        }
    }

    #[test]
    fn string_regex_optional_group() {
        let s = crate::string::string_regex("[a-z]{1,12}(/[a-z]{1,8})?").unwrap();
        let mut rng = crate::TestRng::new(42);
        let mut saw_slash = false;
        let mut saw_plain = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            if v.contains('/') {
                saw_slash = true;
                let (a, b) = v.split_once('/').unwrap();
                assert!((1..=12).contains(&a.len()));
                assert!((1..=8).contains(&b.len()));
            } else {
                saw_plain = true;
                assert!((1..=12).contains(&v.len()));
            }
        }
        assert!(saw_slash && saw_plain);
    }

    #[test]
    fn printable_class_range() {
        let s = crate::string::string_regex("[ -~]{0,20}").unwrap();
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 20);
            assert!(v.bytes().all(|b| (0x20..=0x7E).contains(&b)));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_proptest("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
