//! Generator for strings matching a small regex subset: literals,
//! escapes, `.`, character classes with ranges, groups, alternation,
//! and the `?`, `*`, `+`, `{m}`, `{m,}`, `{m,n}` quantifiers.
//! Unbounded repetition is capped at 8 extra iterations.

use std::fmt;

use crate::{Strategy, TestRng};

const UNBOUNDED_EXTRA: u32 = 8;

/// Parse/shape error for a regex strategy pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// `.` — any printable ASCII.
    Dot,
    /// Character class: list of inclusive ranges.
    Class(Vec<(char, char)>),
    /// Concatenation sequence.
    Seq(Vec<Node>),
    /// Alternation between branches.
    Alt(Vec<Node>),
    /// `node{min, max}`; `max == None` means unbounded (capped).
    Repeat(Box<Node>, u32, Option<u32>),
}

/// A parsed pattern usable as a string [`Strategy`].
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
}

impl Regex {
    /// Parse `pattern`, rejecting constructs outside the subset.
    pub fn parse(pattern: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let root = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(RegexError(format!(
                "unexpected `{}` at offset {pos}",
                chars[pos]
            )));
        }
        Ok(Regex { root })
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Dot => out.push((0x20 + rng.below(0x5F) as u8) as char),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Seq(nodes) => {
                for n in nodes {
                    Self::emit(n, rng, out);
                }
            }
            Node::Alt(branches) => {
                let i = rng.below(branches.len() as u64) as usize;
                Self::emit(&branches[i], rng, out);
            }
            Node::Repeat(inner, min, max) => {
                let hi = max.unwrap_or(min + UNBOUNDED_EXTRA);
                let n = min + rng.below((hi - min + 1) as u64) as u32;
                for _ in 0..n {
                    Self::emit(inner, rng, out);
                }
            }
        }
    }
}

impl Strategy for Regex {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        Self::emit(&self.root, rng, &mut out);
        out
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    let mut branches = vec![parse_seq(chars, pos)?];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        branches.push(parse_seq(chars, pos)?);
    }
    if branches.len() == 1 {
        Ok(branches.pop().unwrap())
    } else {
        Ok(Node::Alt(branches))
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    let mut nodes = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos)?;
        nodes.push(parse_quantifier(chars, pos, atom)?);
    }
    Ok(Node::Seq(nodes))
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            // Tolerate non-capturing group syntax.
            if chars[*pos..].starts_with(&['?', ':']) {
                *pos += 2;
            }
            let inner = parse_alt(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err(RegexError("unclosed group".into()));
            }
            *pos += 1;
            Ok(inner)
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '.' => {
            *pos += 1;
            Ok(Node::Dot)
        }
        '\\' => {
            *pos += 1;
            if *pos >= chars.len() {
                return Err(RegexError("dangling escape".into()));
            }
            let c = chars[*pos];
            *pos += 1;
            Ok(match c {
                'd' => Node::Class(vec![('0', '9')]),
                'w' => Node::Class(vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')]),
                's' => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                'n' => Node::Literal('\n'),
                't' => Node::Literal('\t'),
                'r' => Node::Literal('\r'),
                other => Node::Literal(other),
            })
        }
        '*' | '+' | '?' | '{' => Err(RegexError(format!(
            "quantifier `{}` with nothing to repeat",
            chars[*pos]
        ))),
        c => {
            *pos += 1;
            Ok(Node::Literal(c))
        }
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    if *pos < chars.len() && chars[*pos] == '^' {
        return Err(RegexError("negated classes are not supported".into()));
    }
    let mut ranges = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = class_char(chars, pos)?;
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = class_char(chars, pos)?;
            if hi < lo {
                return Err(RegexError(format!("inverted range `{lo}-{hi}`")));
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    if *pos >= chars.len() {
        return Err(RegexError("unclosed character class".into()));
    }
    *pos += 1; // ']'
    if ranges.is_empty() {
        return Err(RegexError("empty character class".into()));
    }
    Ok(Node::Class(ranges))
}

fn class_char(chars: &[char], pos: &mut usize) -> Result<char, RegexError> {
    let c = chars[*pos];
    *pos += 1;
    if c != '\\' {
        return Ok(c);
    }
    if *pos >= chars.len() {
        return Err(RegexError("dangling escape in class".into()));
    }
    let e = chars[*pos];
    *pos += 1;
    Ok(match e {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    })
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, RegexError> {
    if *pos >= chars.len() {
        return Ok(atom);
    }
    let node = match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, Some(1))
        }
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, None)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, None)
        }
        '{' => {
            *pos += 1;
            let min = parse_number(chars, pos)?;
            let max = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                if *pos < chars.len() && chars[*pos] == '}' {
                    None
                } else {
                    Some(parse_number(chars, pos)?)
                }
            } else {
                Some(min)
            };
            if *pos >= chars.len() || chars[*pos] != '}' {
                return Err(RegexError("unclosed `{` quantifier".into()));
            }
            *pos += 1;
            if let Some(m) = max {
                if m < min {
                    return Err(RegexError(format!("bad repetition {{{min},{m}}}")));
                }
            }
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => return Ok(atom),
    };
    Ok(node)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<u32, RegexError> {
    let start = *pos;
    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == start {
        return Err(RegexError("expected number in `{}` quantifier".into()));
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .map_err(|_| RegexError("repetition count too large".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let re = Regex::parse(pattern).unwrap();
        let mut rng = TestRng::new(99);
        (0..n).map(|_| re.generate(&mut rng)).collect()
    }

    #[test]
    fn fixed_repetition() {
        for s in gen_many("[0-9]{4}", 50) {
            assert_eq!(s.len(), 4);
            assert!(s.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn alternation_and_literals() {
        let out = gen_many("(cat|dog)-[a-f]{2}", 100);
        assert!(out.iter().any(|s| s.starts_with("cat-")));
        assert!(out.iter().any(|s| s.starts_with("dog-")));
        for s in &out {
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn star_is_capped() {
        for s in gen_many("a*", 100) {
            assert!(s.len() <= UNBOUNDED_EXTRA as usize);
        }
    }

    #[test]
    fn escapes_in_and_out_of_class() {
        for s in gen_many(r"\d[\-x]\.", 50) {
            let b: Vec<char> = s.chars().collect();
            assert!(b[0].is_ascii_digit());
            assert!(b[1] == '-' || b[1] == 'x');
            assert_eq!(b[2], '.');
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(Regex::parse("[^a]").is_err());
        assert!(Regex::parse("(unclosed").is_err());
        assert!(Regex::parse("a{3,1}").is_err());
        assert!(Regex::parse("*oops").is_err());
    }
}
