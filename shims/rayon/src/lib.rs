//! Offline shim for `rayon`: eager data-parallel iterators executed with
//! `std::thread::scope`.
//!
//! Unlike rayon's lazy work-stealing iterators, [`ParIter`] materializes
//! its items and applies each combinator eagerly, splitting the item
//! vector into contiguous chunks across threads. This preserves rayon's
//! semantics for the combinators the workspace uses (order-preserving
//! `map`/`collect`, `enumerate`, `zip`, `for_each`, identity+op `reduce`)
//! at the cost of intermediate allocations. Worker panics propagate to
//! the caller, as in rayon.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count override installed by [`ThreadPool::install`]
/// (0 = use available parallelism).
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn current_threads() -> usize {
    let n = POOL_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Apply `f` to every item, in parallel, preserving order.
fn pexec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// An eager "parallel iterator" over an item vector.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel order-preserving map.
    pub fn map<U: Send, F: Fn(T) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
        ParIter {
            items: pexec(self.items, f),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zip with another parallel iterator (truncates to the shorter).
    pub fn zip<U: Send>(self, other: impl IntoParallelIterator<Item = U>) -> ParIter<(T, U)> {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    /// Keep items satisfying `pred`.
    pub fn filter<F: Fn(&T) -> bool + Sync + Send>(self, pred: F) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|t| pred(t)).collect(),
        }
    }

    /// Parallel filter-map.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync + Send>(self, f: F) -> ParIter<U> {
        ParIter {
            items: pexec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Parallel map followed by flattening.
    pub fn flat_map<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U> + Send,
        F: Fn(T) -> I + Sync + Send,
    {
        ParIter {
            items: pexec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        pexec(self.items, f);
    }

    /// Rayon-style reduce: fold each parallel chunk from `identity()`,
    /// then combine the partials. `op` must be associative.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        let threads = current_threads().min(self.items.len().max(1));
        if threads <= 1 || self.items.len() <= 1 {
            return self.items.into_iter().fold(identity(), &op);
        }
        let chunk_len = self.items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = self.items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let (identity, op) = (&identity, &op);
        let mut partials = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().fold(identity(), op)))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => partials.push(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Collect into any `FromIterator` container (order preserved).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Minimum item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }
}

/// Owned conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_range!(usize, u32, u64, i32, i64);

/// `par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Borrowing conversion.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Chunked slice views (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Split into `chunk_size` pieces (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size.max(1)).collect(),
        }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(a);
        let rb = b();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool size (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool": in this shim, a scoped thread-count override applied while
/// [`ThreadPool::install`] runs a closure.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing parallel execution.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.swap(self.num_threads, Ordering::Relaxed);
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.store(self.0, Ordering::Relaxed);
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// The rayon prelude: every trait needed for `par_iter` etc.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range_and_vec() {
        let a: Vec<usize> = (0usize..100).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(a[0], 1);
        assert_eq!(a[99], 100);
        let b: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(b, vec!["1", "2", "3"]);
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let v: Vec<i32> = (0..100).collect();
        let ok: Result<Vec<i32>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i32>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 13 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn reduce_with_identity() {
        let v: Vec<u64> = (1..=1000).collect();
        let sum = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 500_500);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);
    }

    #[test]
    fn par_iter_mut_and_zip() {
        let mut v = vec![0u64; 64];
        let adds: Vec<u64> = (0..64).collect();
        v.par_iter_mut()
            .zip(adds.par_iter())
            .for_each(|(slot, &a)| *slot = a * 3);
        assert_eq!(v[10], 30);
    }

    #[test]
    fn par_chunks_covers_all() {
        let data: Vec<u8> = (0..=255).collect();
        let total: usize = data.par_chunks(7).map(|c| c.len()).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let v: Vec<i32> = (0..100).collect();
            let _: Vec<i32> = v
                .par_iter()
                .map(|&x| {
                    if x == 57 {
                        panic!("bad item");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_install_limits_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let out: Vec<usize> = pool.install(|| (0usize..50).into_par_iter().map(|x| x).collect());
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn actually_parallel() {
        // 8 sleeps of 40ms across >=4 threads should take well under 320ms.
        if crate::current_threads() < 4 {
            return; // single-core CI box: nothing to assert
        }
        let start = std::time::Instant::now();
        let v: Vec<u32> = (0..8).collect();
        let _: Vec<u32> = v
            .par_iter()
            .map(|&x| {
                std::thread::sleep(std::time::Duration::from_millis(40));
                x
            })
            .collect();
        assert!(
            start.elapsed() < std::time::Duration::from_millis(300),
            "took {:?}",
            start.elapsed()
        );
    }
}
