//! Offline shim for `rand` 0.8: the subset this workspace uses.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen`, `gen_range` (half-open and inclusive ranges over the common
//! integer and float types) and `gen_bool`. The stream is deterministic
//! per seed but intentionally *not* identical to upstream rand.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full-state generator from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable within explicit bounds. The single blanket
/// [`SampleRange`] impl below unifies `T` with the range's element type
/// during inference (matching upstream rand), so `gen_range(18..95)`
/// infers `i32` via integer-literal fallback.
pub trait SampleUniform: Sized {
    /// Draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]` when
    /// true. Callers guarantee the range is non-empty.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// Alias: this shim backs the "standard" generator with the same
    /// engine (upstream uses ChaCha12; only determinism-per-seed matters
    /// here).
    pub type StdRng = SmallRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(15..25);
            assert!((15..25).contains(&i));
            let u: usize = rng.gen_range(0..4);
            assert!(u < 4);
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let k = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&k));
            let n: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut hit_hi = false;
        for _ in 0..1000 {
            if rng.gen_range(0u32..=1) == 1 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }
}
