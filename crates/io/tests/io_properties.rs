//! Property tests for the I/O substrate: shard round-trips over arbitrary
//! record sets, codec/bitpack laws, and checksum/crypto invariants.

use drai_io::checksum::{content_hash128, crc32, crc32c};
use drai_io::codec::{bitpack, bitunpack, codec_for, CodecId};
use drai_io::crypto::{chacha20_xor, derive_key};
use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};
use drai_io::sink::{MemSink, StorageSink};
use proptest::prelude::*;

proptest! {
    #[test]
    fn shard_round_trip_arbitrary_records(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 0..40),
        target_kib in 1usize..64,
        codec_pick in 0usize..4) {
        let codec = [CodecId::Raw, CodecId::Rle, CodecId::Lz, CodecId::Delta { width: 1 }][codec_pick];
        let sink = MemSink::new();
        let spec = ShardSpec::new("p", target_kib * 1024).with_codec(codec);
        let manifest = ShardWriter::new(spec, &sink).write_all(&records).unwrap();
        prop_assert_eq!(manifest.total_records as usize, records.len());
        let reader = ShardReader::open("p", &sink).unwrap();
        prop_assert_eq!(reader.read_all().unwrap(), records);
    }

    #[test]
    fn shard_flipped_byte_always_detected(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..128), 1..10),
        flip in any::<(usize, u8)>()) {
        prop_assume!(flip.1 != 0);
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("c", 1 << 20), &sink)
            .write_all(&records)
            .unwrap();
        let name = "c-00000.shard";
        let mut data = sink.read_file(name).unwrap();
        let pos = flip.0 % data.len();
        data[pos] ^= flip.1;
        sink.write_file(name, &data).unwrap();
        let reader = ShardReader::open("c", &sink).unwrap();
        prop_assert!(reader.read_shard(0).is_err(),
            "flip at {} of {} undetected", pos, data.len());
    }

    #[test]
    fn bitpack_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64),
                          bits in 1u32..=64) {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();
        let packed = bitpack(&values, bits);
        prop_assert_eq!(bitunpack(&packed, bits, values.len()).unwrap(), values);
    }

    #[test]
    fn crc_detects_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..256),
                                    bit in any::<usize>()) {
        let mut flipped = data.clone();
        let pos = bit % (data.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        prop_assert_ne!(crc32(&data), crc32(&flipped));
        prop_assert_ne!(crc32c(&data), crc32c(&flipped));
    }

    #[test]
    fn content_hash_no_trivial_collisions(a in proptest::collection::vec(any::<u8>(), 0..128),
                                          b in proptest::collection::vec(any::<u8>(), 0..128)) {
        if a != b {
            prop_assert_ne!(content_hash128(&a), content_hash128(&b));
        } else {
            prop_assert_eq!(content_hash128(&a), content_hash128(&b));
        }
    }

    #[test]
    fn chacha_ciphertext_differs_and_restores(
        data in proptest::collection::vec(any::<u8>(), 32..512),
        ctx in "[a-z]{1,8}") {
        let key = derive_key("prop-secret", &ctx);
        let nonce = [5u8; 12];
        let mut work = data.clone();
        chacha20_xor(&key, &nonce, 0, &mut work);
        prop_assert_ne!(&work, &data, "32+ bytes should never encrypt to themselves");
        chacha20_xor(&key, &nonce, 0, &mut work);
        prop_assert_eq!(work, data);
    }

    #[test]
    fn lz_never_worse_than_expansion_bound(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = codec_for(CodecId::Lz);
        let enc = c.encode(&data);
        // Worst case: all literals + varint framing. Bound generously.
        prop_assert!(enc.len() <= data.len() + data.len() / 16 + 16,
            "{} -> {}", data.len(), enc.len());
    }
}
