//! # drai-io
//!
//! The I/O substrate for DRAI pipelines: everything between in-memory
//! tensors and "sharded binary formats for scalable ingestion" (the paper's
//! fifth processing stage).
//!
//! Contents:
//!
//! * [`checksum`] — CRC-32 (zlib polynomial, for ZIP/NPZ), CRC-32C
//!   (Castagnoli, slice-by-8, for TFRecord's masked CRCs), FNV-1a, and a
//!   128-bit content-address hash for provenance.
//! * [`varint`] — LEB128 varints and zigzag coding shared by codecs and the
//!   protobuf wire encoder in `drai-formats`.
//! * [`codec`] — byte-stream compression codecs (RLE, delta+varint,
//!   bit-packing, LZ-lite) behind a common [`codec::Codec`] trait with a
//!   registry, so shard files record which codec wrote them.
//! * [`json`] — a minimal JSON value model, parser and writer. Lives here
//!   (the lowest-level serialization crate) because shard manifests,
//!   provenance audit logs and materials sidecars all need it and
//!   `drai-formats` already depends on this crate.
//! * [`shard`] — the record-sharding engine: fixed-target-size shard files
//!   with per-record CRC framing, a JSON manifest with per-shard digests,
//!   and parallel order-preserving writes.
//! * [`sink`] — the [`sink::StorageSink`] abstraction over "where bytes
//!   land": a real local filesystem or the simulated striped store in
//!   `drai-sim`.
//! * [`fault`] — seeded, deterministic fault injection ([`FaultSink`]):
//!   transient/permanent write errors, read errors, and silent bit
//!   flips, for exercising the recovery paths.
//! * [`retry`] — [`RetrySink`] with exponential, jitter-free backoff
//!   through an injectable clock, so resilience tests never really
//!   sleep.
//! * [`parallel`] — double-buffered prefetching readers and chunked
//!   parallel writers built on crossbeam channels.

#![forbid(unsafe_code)]

pub mod checksum;
pub mod codec;
pub mod crypto;
pub mod fault;
pub mod json;
pub mod parallel;
pub mod retry;
pub mod shard;
pub mod sink;
pub mod varint;

pub use checksum::{content_hash128, crc32, crc32c, fnv1a64, masked_crc32c};
pub use codec::{Codec, CodecError, CodecId};
pub use fault::{FaultConfig, FaultSink};
pub use retry::{RetryClock, RetryPolicy, RetrySink, SystemClock, VirtualClock};
pub use shard::{DamageReport, ShardManifest, ShardReader, ShardSpec, ShardWriter};
pub use sink::{LocalFs, StorageSink};

/// Errors produced by the I/O layer.
#[derive(Debug)]
pub enum IoError {
    /// Underlying OS-level I/O failure.
    Os(std::io::Error),
    /// A checksum did not match the stored value (corruption).
    ChecksumMismatch {
        /// Human-readable location (file, record index, ...).
        context: String,
    },
    /// A structural problem in a container (bad magic, truncated, ...).
    Format(String),
    /// Codec failure during encode/decode.
    Codec(CodecError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Os(e) => write!(f, "I/O error: {e}"),
            IoError::ChecksumMismatch { context } => {
                write!(f, "checksum mismatch at {context}")
            }
            IoError::Format(msg) => write!(f, "format error: {msg}"),
            IoError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Os(e) => Some(e),
            IoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl IoError {
    /// True when retrying the failed operation may succeed: OS errors
    /// whose kind signals a momentary condition (interruption, timeout,
    /// contention). Checksum mismatches, format errors, and codec
    /// failures are permanent — the bytes are wrong, not the timing —
    /// and [`retry::RetrySink`] passes them straight through.
    pub fn is_transient(&self) -> bool {
        match self {
            IoError::Os(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            _ => false,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Os(e)
    }
}

impl From<CodecError> for IoError {
    fn from(e: CodecError) -> Self {
        IoError::Codec(e)
    }
}
