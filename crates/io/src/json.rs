//! Minimal JSON value model, parser, and writer.
//!
//! Shard manifests, provenance audit logs (JSONL), dataset manifests and the
//! materials metadata sidecars all serialize through this module. It
//! implements RFC 8259 JSON with two deliberate restrictions: numbers are
//! represented as `f64` (integers up to 2^53 round-trip exactly, which
//! covers record counts and byte sizes), and `\uXXXX` escapes outside the
//! BMP must be valid surrogate pairs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use `BTreeMap` so serialization is deterministic —
/// provenance digests hash serialized manifests and must be reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer accessor (exact for |n| <= 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Serialize compactly (no whitespace), deterministic key order.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        // Integral values print without a trailing ".0"
                        // (matching standard JSON emitters).
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; serialize as null like most
                    // lenient emitters. Quality reports pre-filter NaNs.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError {
                offset: p.pos,
                message: "trailing characters",
            });
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(a: Vec<Json>) -> Json {
        Json::Arr(a)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                self.literal("null", "expected null")?;
                Ok(Json::Null)
            }
            b't' => {
                self.literal("true", "expected true")?;
                Ok(Json::Bool(true))
            }
            b'f' => {
                self.literal("false", "expected false")?;
                Ok(Json::Bool(false))
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.consume(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.consume(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':', "expected :")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low.
                                self.consume(b'\\', "expected low surrogate")?;
                                self.consume(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let s = &self.bytes[self.pos..];
                    let ch_len = utf8_len(s[0]);
                    let chunk =
                        std::str::from_utf8(&s[..ch_len]).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bytes[self.pos];
            self.pos += 1;
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d as u32;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "invalid number",
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-3.5", Json::Num(-3.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trip_nested() {
        let v = Json::obj([
            ("name", Json::from("shard-0001")),
            ("bytes", Json::from(1_048_576_u64)),
            ("ok", Json::from(true)),
            (
                "tags",
                Json::Arr(vec![Json::from("climate"), Json::Null, Json::from(2.5)]),
            ),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn deterministic_key_order() {
        let mut m = BTreeMap::new();
        m.insert("zebra".to_string(), Json::Num(1.0));
        m.insert("alpha".to_string(), Json::Num(2.0));
        let s = Json::Obj(m).to_string_compact();
        assert_eq!(s, "{\"alpha\":2,\"zebra\":1}");
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{01}".into());
        let text = v.to_string_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err()); // lone high
        assert!(Json::parse("\"\\ude00\"").is_err()); // lone low
        let raw = Json::Str("héllo ⚛ 😀".into());
        assert_eq!(Json::parse(&raw.to_string_compact()).unwrap(), raw);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "\"abc",
            "[1 2]",
            "{\"a\" 1}",
            "1 2",
            "\"\u{01}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_string_compact(), "5");
        assert_eq!(Json::Num(5.5).to_string_compact(), "5.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(Json::parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }
}
