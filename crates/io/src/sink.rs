//! Storage backends for shard output.
//!
//! The shard engine writes through a [`StorageSink`] so the same pipeline
//! can target a real filesystem ([`LocalFs`]), an in-memory store
//! ([`MemSink`], used by tests), or the simulated striped parallel
//! filesystem in `drai-sim` (which implements this trait to model
//! Lustre-style OST striping for the scaling experiments).

//!
//! Telemetry: both built-in sinks count `io.sink.bytes_written`,
//! `io.sink.files_written`, and `io.sink.bytes_read`; [`LocalFs`]
//! additionally records `io.sink.fsync_ns` (the `sync_all` latency of
//! each durable write) and `io.sink.dirsync_ns` (the parent-directory
//! sync that makes the publishing rename itself durable).
//!
//! Resilience wrappers live in sibling modules: [`crate::fault`]
//! injects deterministic failures around any sink, and [`crate::retry`]
//! retries transient ones with deterministic backoff.

use crate::IoError;
use drai_telemetry::{Registry, Stopwatch};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

fn count_write(bytes: usize) {
    let registry = Registry::current();
    registry.counter("io.sink.bytes_written").add(bytes as u64);
    registry.counter("io.sink.files_written").incr();
}

fn count_read(bytes: usize) {
    Registry::current()
        .counter("io.sink.bytes_read")
        .add(bytes as u64);
}

/// A flat namespace of named byte blobs. Names may contain `/` separators;
/// backends create intermediate directories as needed. Implementations must
/// be thread-safe: parallel shard writers call `write_file` concurrently.
pub trait StorageSink: Send + Sync {
    /// Write (create or replace) a named blob.
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError>;
    /// Read a named blob in full.
    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError>;
    /// List all blob names, sorted.
    fn list(&self) -> Result<Vec<String>, IoError>;
    /// Remove a blob (ok if absent).
    fn delete(&self, name: &str) -> Result<(), IoError>;
    /// True if the blob exists.
    ///
    /// Contract: `exists` is a *metadata probe* — callers (the shard
    /// manifest paths, resumable pipelines) may issue it per blob and
    /// expect O(1) cost with no effect on the `io.sink.bytes_read`
    /// counter. The trait default reads the entire blob (O(size), and
    /// inflates read telemetry); it exists only so trivial backends
    /// compile. Every real backend must override it with a metadata
    /// check, and wrapper sinks (retry/fault) must forward to the inner
    /// backend's override rather than inherit the default.
    fn exists(&self, name: &str) -> bool {
        self.read_file(name).is_ok()
    }
}

fn validate_name(name: &str) -> Result<(), IoError> {
    if name.is_empty() {
        return Err(IoError::Format("empty blob name".into()));
    }
    let p = Path::new(name);
    for c in p.components() {
        match c {
            Component::Normal(_) => {}
            _ => {
                return Err(IoError::Format(format!(
                    "blob name {name:?} must be a relative path without '..'"
                )))
            }
        }
    }
    Ok(())
}

/// Filesystem-backed sink rooted at a directory.
#[derive(Debug, Clone)]
pub struct LocalFs {
    root: PathBuf,
}

impl LocalFs {
    /// Sink rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, IoError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalFs { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, IoError> {
        validate_name(name)?;
        Ok(self.root.join(name))
    }
}

/// Process-unique suffix counter for staging files (combined with the
/// pid so concurrent processes sharing a sink root cannot collide).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Staging path for an atomic write of `path`. The unique suffix is
/// *appended to the full file name* — `with_extension` would map names
/// differing only in their final extension (`data.json`, `data.csv`) to
/// the same staging file, letting concurrent writers clobber each
/// other's in-flight bytes.
fn staging_path(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp-write.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

impl StorageSink for LocalFs {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError> {
        let path = self.path_of(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename so a concurrent reader never observes a
        // partially written shard.
        let tmp = staging_path(&path);
        let write_and_rename = || -> Result<(), IoError> {
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(data)?;
                let fsync_start = Stopwatch::start();
                f.sync_all()?;
                Registry::current()
                    .histogram("io.sink.fsync_ns")
                    .record(fsync_start.elapsed_ns());
            }
            fs::rename(&tmp, &path)?;
            Ok(())
        };
        if let Err(e) = write_and_rename() {
            // Don't leak the staging file on any failure path.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // The rename only becomes durable once the parent directory's
        // entry is on stable storage; without this a crash can lose the
        // rename even though the file data itself was synced.
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            let dirsync_start = Stopwatch::start();
            fs::File::open(parent)?.sync_all()?;
            Registry::current()
                .histogram("io.sink.dirsync_ns")
                .record(dirsync_start.elapsed_ns());
        }
        count_write(data.len());
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError> {
        let data = fs::read(self.path_of(name)?)?;
        count_read(data.len());
        Ok(data)
    }

    fn list(&self) -> Result<Vec<String>, IoError> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, name: &str) -> Result<(), IoError> {
        let path = self.path_of(name)?;
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }
}

/// In-memory sink for tests and benchmarks that must exclude disk effects.
#[derive(Debug, Default, Clone)]
pub struct MemSink {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemSink {
    /// Empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> usize {
        self.files.lock().values().map(Vec::len).sum()
    }

    /// Number of stored blobs.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }
}

impl StorageSink for MemSink {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError> {
        validate_name(name)?;
        self.files.lock().insert(name.to_string(), data.to_vec());
        count_write(data.len());
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError> {
        let data = self
            .files
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| IoError::Format(format!("no such blob: {name}")))?;
        count_read(data.len());
        Ok(data)
    }

    fn list(&self) -> Result<Vec<String>, IoError> {
        Ok(self.files.lock().keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<(), IoError> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.files.lock().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(sink: &dyn StorageSink) {
        sink.write_file("a.bin", b"hello").unwrap();
        sink.write_file("sub/dir/b.bin", b"world").unwrap();
        assert_eq!(sink.read_file("a.bin").unwrap(), b"hello");
        assert_eq!(sink.read_file("sub/dir/b.bin").unwrap(), b"world");
        assert!(sink.exists("a.bin"));
        assert!(!sink.exists("missing.bin"));
        let names = sink.list().unwrap();
        assert!(names.contains(&"a.bin".to_string()));
        assert!(names.contains(&"sub/dir/b.bin".to_string()));
        // Overwrite.
        sink.write_file("a.bin", b"replaced").unwrap();
        assert_eq!(sink.read_file("a.bin").unwrap(), b"replaced");
        // Delete (idempotent).
        sink.delete("a.bin").unwrap();
        sink.delete("a.bin").unwrap();
        assert!(!sink.exists("a.bin"));
        assert!(sink.read_file("a.bin").is_err());
    }

    #[test]
    fn mem_sink_semantics() {
        let sink = MemSink::new();
        exercise(&sink);
        assert_eq!(sink.file_count(), 1);
        assert_eq!(sink.total_bytes(), 5);
    }

    #[test]
    fn local_fs_semantics() {
        let dir = std::env::temp_dir().join(format!("drai-io-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = LocalFs::new(&dir).unwrap();
        exercise(&sink);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_same_stem_writes_do_not_collide() {
        // Regression: `with_extension("tmp-write")` staged `d.json` and
        // `d.csv` at the *same* path, so concurrent writers clobbered
        // each other's staging file. The unique suffix must keep every
        // in-flight write isolated.
        let dir = std::env::temp_dir().join(format!("drai-io-stem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = LocalFs::new(&dir).unwrap();
        let exts = ["json", "csv", "bin", "txt"];
        std::thread::scope(|s| {
            for (t, ext) in exts.iter().enumerate() {
                let sink = &sink;
                s.spawn(move || {
                    let payload = vec![t as u8 + 1; 4096];
                    for _ in 0..50 {
                        sink.write_file(&format!("d.{ext}"), &payload).unwrap();
                    }
                });
            }
        });
        for (t, ext) in exts.iter().enumerate() {
            assert_eq!(
                sink.read_file(&format!("d.{ext}")).unwrap(),
                vec![t as u8 + 1; 4096],
                "d.{ext} was clobbered by a sibling extension's staging file"
            );
        }
        // No staging litter after success.
        for name in sink.list().unwrap() {
            assert!(!name.contains("tmp-write"), "leftover staging file {name}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staging_file_cleaned_up_on_error() {
        // Force the rename to fail by squatting a *directory* on the
        // destination path: the data writes fine, rename(tmp, dir)
        // fails, and the staging file must not be left behind.
        let dir = std::env::temp_dir().join(format!("drai-io-cleanup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = LocalFs::new(&dir).unwrap();
        std::fs::create_dir_all(dir.join("blocked")).unwrap();
        std::fs::write(dir.join("blocked/child"), b"x").unwrap();
        assert!(sink.write_file("blocked", b"payload").is_err());
        let leftovers: Vec<String> = sink
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.contains("tmp-write"))
            .collect();
        assert!(leftovers.is_empty(), "staging litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_escaping_names() {
        let sink = MemSink::new();
        assert!(sink.write_file("../evil", b"x").is_err());
        assert!(sink.write_file("/abs", b"x").is_err());
        assert!(sink.write_file("", b"x").is_err());
        assert!(sink.write_file("ok/../evil", b"x").is_err());
    }

    #[test]
    fn concurrent_writes() {
        let sink = MemSink::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..50 {
                        sink.write_file(&format!("t{t}/f{i}"), &[t as u8; 64])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(sink.file_count(), 400);
    }
}
