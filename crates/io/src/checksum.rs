//! Checksums and content hashes, implemented from scratch.
//!
//! * [`crc32`] — the zlib/PNG polynomial (0xEDB88320 reflected), required by
//!   the ZIP container backing NPZ shards.
//! * [`crc32c`] — the Castagnoli polynomial (0x82F63B78 reflected) with a
//!   slice-by-8 table for throughput, required by the TFRecord framing.
//! * [`masked_crc32c`] — TFRecord's rotated+offset mask over CRC-32C.
//! * [`fnv1a64`] — cheap non-cryptographic hash for deterministic
//!   train/val/test splitting and hash-based anonymization.
//! * [`content_hash128`] — a 128-bit mixing hash used as a content address
//!   by the provenance layer. Not cryptographic; collision-resistant enough
//!   for artifact identity within a workflow run, and dependency-free.

/// Build a reflected CRC-32 lookup table for `poly`, extended to
/// slice-by-8 (8 sub-tables).
const fn build_tables(poly: u32) -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = build_tables(0xEDB8_8320);
static CRC32C_TABLES: [[u32; 256]; 8] = build_tables(0x82F6_3B78);

#[inline]
fn crc_update(tables: &[[u32; 256]; 8], mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tables[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 (IEEE 802.3 / zlib polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc_update(&CRC32_TABLES, !0, data)
}

/// CRC-32C (Castagnoli polynomial) of `data`, slice-by-8.
pub fn crc32c(data: &[u8]) -> u32 {
    !crc_update(&CRC32C_TABLES, !0, data)
}

/// Incremental CRC state for streaming writers.
#[derive(Debug, Clone, Copy)]
pub struct Crc32Stream {
    state: u32,
    castagnoli: bool,
}

impl Crc32Stream {
    /// New streaming CRC-32 (zlib polynomial).
    pub fn new_crc32() -> Self {
        Crc32Stream {
            state: !0,
            castagnoli: false,
        }
    }

    /// New streaming CRC-32C (Castagnoli polynomial).
    pub fn new_crc32c() -> Self {
        Crc32Stream {
            state: !0,
            castagnoli: true,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let tables = if self.castagnoli {
            &CRC32C_TABLES
        } else {
            &CRC32_TABLES
        };
        self.state = crc_update(tables, self.state, data);
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// TFRecord's masked CRC: `rotr(crc, 15) + 0xa282ead8`.
///
/// TensorFlow masks stored CRCs so that a CRC computed over data that itself
/// contains embedded CRCs stays well distributed.
pub fn masked_crc32c(data: &[u8]) -> u32 {
    let crc = crc32c(data);
    (crc.rotate_right(15)).wrapping_add(0xA282_EAD8)
}

/// Undo [`masked_crc32c`]'s mask, returning the raw CRC-32C.
pub fn unmask_crc32c(masked: u32) -> u32 {
    masked.wrapping_sub(0xA282_EAD8).rotate_left(15)
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325_u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// 128-bit content hash: four independent multiply-rotate lanes absorb a
/// 32-byte stride (so absorption pipelines across lanes instead of
/// serializing on one mixing chain), then a splitmix64 finalizer cascade
/// combines the lanes. Non-cryptographic; used for artifact content
/// addressing, cache-entry digests and duplicate detection — paths that
/// hash megabytes per pipeline run, hence the throughput-oriented shape.
pub fn content_hash128(data: &[u8]) -> [u8; 16] {
    #[inline]
    fn mix(mut x: u64) -> u64 {
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    #[inline]
    fn absorb(h: u64, w: u64) -> u64 {
        (h ^ w).wrapping_mul(0x9DDF_EA08_EB38_2D69).rotate_left(23) ^ w
    }
    let len = data.len() as u64;
    let mut h = [
        0x9E37_79B9_7F4A_7C15_u64 ^ len,
        0xC2B2_AE3D_27D4_EB4F_u64 ^ len.rotate_left(32),
        0x1656_67B1_9E37_79F9_u64 ^ len.rotate_left(16),
        0x94D0_49BB_1331_11EB_u64 ^ len.rotate_left(48),
    ];
    let mut wide = data.chunks_exact(32);
    for chunk in &mut wide {
        for (i, lane) in h.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&chunk[i * 8..i * 8 + 8]);
            *lane = absorb(*lane, u64::from_le_bytes(b));
        }
    }
    let mut lane = 0usize;
    let mut tail = wide.remainder().chunks_exact(8);
    for c in &mut tail {
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        h[lane] = mix(h[lane] ^ u64::from_le_bytes(b));
        lane = (lane + 1) % 4;
    }
    let rem = tail.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h[lane] = mix(h[lane] ^ u64::from_le_bytes(last) ^ 0xFF);
    }
    // Final avalanche: both output words depend on every lane.
    let a = mix(mix(h[0] ^ h[1].rotate_left(29)) ^ h[2].rotate_left(13) ^ h[3].rotate_left(41));
    let b = mix(mix(h[3] ^ h[2].rotate_left(17)) ^ h[1].rotate_left(7) ^ h[0].rotate_left(51));
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

/// Hex string of a content hash (lowercase).
pub fn hash_hex(hash: &[u8]) -> String {
    let mut s = String::with_capacity(hash.len() * 2);
    for b in hash {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from RFC 3720 (CRC-32C) and zlib documentation.
    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32c_known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // RFC 3720 B.4: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // Ascending 0..=31.
        let asc: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&asc), 0x46DD_794E);
    }

    #[test]
    fn crc_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000).map(|i| (i * 7 % 251) as u8).collect();
        for castagnoli in [false, true] {
            let mut s = if castagnoli {
                Crc32Stream::new_crc32c()
            } else {
                Crc32Stream::new_crc32()
            };
            for chunk in data.chunks(13) {
                s.update(chunk);
            }
            let expect = if castagnoli {
                crc32c(&data)
            } else {
                crc32(&data)
            };
            assert_eq!(s.finalize(), expect);
        }
    }

    #[test]
    fn masked_crc_round_trip() {
        for data in [b"".as_slice(), b"abc", b"tfrecord framing"] {
            let m = masked_crc32c(data);
            assert_eq!(unmask_crc32c(m), crc32c(data));
        }
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn content_hash_stable_and_sensitive() {
        let a = content_hash128(b"hello world");
        let b = content_hash128(b"hello world");
        let c = content_hash128(b"hello worle");
        let d = content_hash128(b"hello worl");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(content_hash128(b""), [0u8; 16]);
    }

    #[test]
    fn content_hash_length_extension_differs() {
        // Same 8-byte prefix, differing only in trailing zero bytes.
        let a = content_hash128(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = content_hash128(&[1, 2, 3, 4, 5, 6, 7, 8, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_hex_format() {
        assert_eq!(hash_hex(&[0x00, 0xFF, 0x1A]), "00ff1a");
    }

    #[test]
    fn crc_lengths_around_slice_boundary() {
        // Exercise remainder handling for lengths 0..=17.
        for n in 0..=17usize {
            let data: Vec<u8> = (0..n as u8).collect();
            // bytewise reference
            let mut crc = !0u32;
            for &b in &data {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            assert_eq!(crc32(&data), !crc, "length {n}");
        }
    }
}
