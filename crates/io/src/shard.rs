//! The record-sharding engine — the paper's *shard* processing stage.
//!
//! "AI-ready" in the DRAI framework means, operationally, that samples are
//! "partitioned into train/test/val & sharded into binary formats for
//! scalable ingestion" (Table 2, level 5). This module provides the
//! format-agnostic half of that: fixed-target-size shard files of
//! CRC-framed records, written in parallel, indexed by a JSON manifest with
//! per-shard digests so corruption is detected at read time.
//!
//! ## Shard file layout
//!
//! ```text
//! +--------------------+ 8 bytes  magic "DSHRD1\0\0"
//! | codec tag          | 1 byte   CodecId::tag()
//! | reserved           | 3 bytes  zero
//! | record 0           |
//! |   stored_len u32le |
//! |   masked crc32c    |          over the stored (encoded) payload
//! |   stored payload   |
//! | record 1 ...       |
//! +--------------------+
//! ```
//!
//! Records are individually compressed so a reader can skip or stream
//! without decompressing the whole shard (TFRecord-style framing with the
//! same masked-CRC trick).

use crate::checksum::{crc32c, masked_crc32c};
use crate::codec::{codec_for, CodecId};
use crate::json::Json;
use crate::sink::StorageSink;
use crate::IoError;
use drai_telemetry::{Registry, Stopwatch};
use rayon::prelude::*;

const SHARD_MAGIC: &[u8; 8] = b"DSHRD1\0\0";
const RECORD_HEADER: usize = 8; // u32 len + u32 masked crc

/// Configuration for a shard run.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Prefix for shard file names: `{prefix}-{index:05}.shard`.
    pub prefix: String,
    /// Target (soft maximum) bytes of stored payload per shard. A single
    /// record larger than the target still becomes one oversized shard.
    pub target_shard_bytes: usize,
    /// Codec applied to each record payload.
    pub codec: CodecId,
    /// Read each shard back after writing and compare its CRC-32C with
    /// the just-computed digest, rewriting (up to [`VERIFY_REWRITES`]
    /// times) on mismatch. Catches silent corruption between the write
    /// path and stable storage at the cost of one extra read per shard.
    pub verify_writes: bool,
}

/// Rewrite attempts per shard when [`ShardSpec::verify_writes`] detects
/// a mismatch before giving up with a checksum error.
pub const VERIFY_REWRITES: u32 = 3;

impl ShardSpec {
    /// Spec with the raw codec, no write verification, and a given
    /// target size.
    pub fn new(prefix: impl Into<String>, target_shard_bytes: usize) -> Self {
        ShardSpec {
            prefix: prefix.into(),
            target_shard_bytes: target_shard_bytes.max(1),
            codec: CodecId::Raw,
            verify_writes: false,
        }
    }

    /// Builder-style codec override.
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    /// Builder-style verify-after-write toggle.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify_writes = verify;
        self
    }

    fn shard_name(&self, index: usize) -> String {
        format!("{}-{index:05}.shard", self.prefix)
    }

    fn manifest_name(&self) -> String {
        format!("{}.manifest.json", self.prefix)
    }
}

/// Per-shard entry in a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Blob name within the sink.
    pub name: String,
    /// Number of records in this shard.
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// CRC-32C of the entire shard file.
    pub crc32c: u32,
}

/// Index of a completed shard run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard spec prefix this manifest belongs to.
    pub prefix: String,
    /// Codec used for record payloads.
    pub codec: CodecId,
    /// All shards, in record order.
    pub shards: Vec<ShardInfo>,
    /// Total records across shards.
    pub total_records: u64,
    /// Total *uncompressed* payload bytes across records.
    pub payload_bytes: u64,
}

impl ShardManifest {
    /// Serialize to deterministic JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::from("drai-shard-manifest-v1")),
            ("prefix", Json::from(self.prefix.clone())),
            ("codec", Json::from(self.codec.name())),
            ("total_records", Json::from(self.total_records)),
            ("payload_bytes", Json::from(self.payload_bytes)),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::from(s.name.clone())),
                                ("records", Json::from(s.records)),
                                ("bytes", Json::from(s.bytes)),
                                ("crc32c", Json::from(s.crc32c as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse from manifest JSON.
    pub fn from_json(v: &Json) -> Result<ShardManifest, IoError> {
        let bad = |msg: &str| IoError::Format(format!("manifest: {msg}"));
        if v.get("format").and_then(Json::as_str) != Some("drai-shard-manifest-v1") {
            return Err(bad("missing/unknown format marker"));
        }
        let prefix = v
            .get("prefix")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing prefix"))?
            .to_string();
        let codec_name = v
            .get("codec")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing codec"))?;
        let codec = CodecId::from_name(codec_name)
            .ok_or_else(|| bad(&format!("unknown codec {codec_name}")))?;
        let total_records = v
            .get("total_records")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing total_records"))?;
        let payload_bytes = v
            .get("payload_bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing payload_bytes"))?;
        let mut shards = Vec::new();
        for s in v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing shards"))?
        {
            shards.push(ShardInfo {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("shard missing name"))?
                    .to_string(),
                records: s
                    .get("records")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing records"))?,
                bytes: s
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing bytes"))?,
                crc32c: s
                    .get("crc32c")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing crc32c"))? as u32,
            });
        }
        Ok(ShardManifest {
            prefix,
            codec,
            shards,
            total_records,
            payload_bytes,
        })
    }
}

/// Writes records into size-targeted shard files through a [`StorageSink`].
pub struct ShardWriter<'a> {
    spec: ShardSpec,
    sink: &'a dyn StorageSink,
}

impl<'a> ShardWriter<'a> {
    /// Writer for `spec` targeting `sink`.
    pub fn new(spec: ShardSpec, sink: &'a dyn StorageSink) -> Self {
        ShardWriter { spec, sink }
    }

    /// Encode and write all records, preserving order, and persist the
    /// manifest. Record payload encoding runs data-parallel (rayon);
    /// shard files themselves are written concurrently once assembled.
    ///
    /// Telemetry: an `io.shard.write_all` span (items = records, bytes =
    /// uncompressed payload), `io.shard.{records,bytes_in,bytes_out}`
    /// counters, `io.shard.{encode_ns,write_ns}` phase histograms, and
    /// the `io.shard.compression_permille` gauge (stored size as ‰ of
    /// payload size, 1000 = incompressible).
    pub fn write_all<R>(&self, records: R) -> Result<ShardManifest, IoError>
    where
        R: IntoIterator,
        R::Item: AsRef<[u8]> + Send + Sync,
    {
        let registry = Registry::current();
        let span = registry.span("io.shard.write_all");
        // Entered for the whole write so nested sink/codec telemetry
        // (and the parallel writers below, via explicit handoff)
        // attaches under this span.
        let _in_write_all = span.enter();
        let records: Vec<R::Item> = records.into_iter().collect();
        let payload_bytes: u64 = records.iter().map(|r| r.as_ref().len() as u64).sum();
        span.add_items(records.len() as u64);
        span.add_bytes(payload_bytes);
        registry
            .counter("io.shard.records")
            .add(records.len() as u64);
        registry.counter("io.shard.bytes_in").add(payload_bytes);

        // Parallel per-record encode (order preserved by collect).
        let codec = codec_for(self.spec.codec);
        let encode_start = Stopwatch::start();
        let encoded: Vec<Vec<u8>> = records
            .par_iter()
            .map(|r| codec.encode(r.as_ref()))
            .collect();
        registry
            .histogram("io.shard.encode_ns")
            .record(encode_start.elapsed_ns());
        drop(records);

        // Greedy size-based packing into shards.
        let mut groups: Vec<(usize, usize)> = Vec::new(); // (start, end)
        let mut start = 0;
        let mut acc = 0usize;
        for (i, e) in encoded.iter().enumerate() {
            let sz = e.len() + RECORD_HEADER;
            if acc > 0 && acc + sz > self.spec.target_shard_bytes {
                groups.push((start, i));
                start = i;
                acc = 0;
            }
            acc += sz;
        }
        if start < encoded.len() {
            groups.push((start, encoded.len()));
        }

        // Assemble and write shards in parallel; infos keep group order.
        // The span's context is captured here (closure creation) and
        // attached inside each rayon task so sink writes and verify
        // rewrites report into the caller's registry under this span,
        // whatever thread rayon runs them on.
        let spec = &self.spec;
        let sink = self.sink;
        let write_ctx = span.context();
        let write_start = Stopwatch::start();
        let infos: Vec<Result<ShardInfo, IoError>> = groups
            .par_iter()
            .enumerate()
            .map(|(idx, &(s, e))| {
                let _attached = write_ctx.attach();
                let mut buf = Vec::with_capacity(
                    12 + encoded[s..e]
                        .iter()
                        .map(|r| r.len() + RECORD_HEADER)
                        .sum::<usize>(),
                );
                buf.extend_from_slice(SHARD_MAGIC);
                buf.push(spec.codec.tag());
                buf.extend_from_slice(&[0, 0, 0]);
                for rec in &encoded[s..e] {
                    buf.extend_from_slice(&(rec.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&masked_crc32c(rec).to_le_bytes());
                    buf.extend_from_slice(rec);
                }
                let name = spec.shard_name(idx);
                let digest = crc32c(&buf);
                sink.write_file(&name, &buf)?;
                if spec.verify_writes {
                    verify_written(sink, &name, digest, &buf)?;
                }
                Ok(ShardInfo {
                    name,
                    records: (e - s) as u64,
                    bytes: buf.len() as u64,
                    crc32c: digest,
                })
            })
            .collect();
        registry
            .histogram("io.shard.write_ns")
            .record(write_start.elapsed_ns());
        let mut shards = Vec::with_capacity(infos.len());
        for info in infos {
            shards.push(info?);
        }
        let stored_bytes: u64 = shards.iter().map(|s| s.bytes).sum();
        registry.counter("io.shard.bytes_out").add(stored_bytes);
        if let Some(permille) = stored_bytes.saturating_mul(1000).checked_div(payload_bytes) {
            registry
                .gauge("io.shard.compression_permille")
                .set(permille as i64);
        }

        let manifest = ShardManifest {
            prefix: self.spec.prefix.clone(),
            codec: self.spec.codec,
            total_records: encoded.len() as u64,
            payload_bytes,
            shards,
        };
        let manifest_name = self.spec.manifest_name();
        let manifest_bytes = manifest.to_json().to_string_compact().into_bytes();
        self.sink.write_file(&manifest_name, &manifest_bytes)?;
        if self.spec.verify_writes {
            // The manifest is the root of trust for every later read —
            // silent corruption here quarantines *every* shard, so it
            // gets the same read-back verification as the shards.
            verify_written(
                self.sink,
                &manifest_name,
                crc32c(&manifest_bytes),
                &manifest_bytes,
            )?;
        }
        Ok(manifest)
    }
}

/// Read a just-written shard back and compare digests, rewriting on
/// mismatch (or on read failure — the blob may not have landed at all).
///
/// Telemetry: `io.shard.verify_rewrites` counts rewrites issued; the
/// final failure (digest still wrong after [`VERIFY_REWRITES`] rewrites)
/// surfaces as a [`IoError::ChecksumMismatch`].
fn verify_written(
    sink: &dyn StorageSink,
    name: &str,
    digest: u32,
    buf: &[u8],
) -> Result<(), IoError> {
    let registry = Registry::current();
    for attempt in 0..=VERIFY_REWRITES {
        let ok = match sink.read_file(name) {
            Ok(back) => crc32c(&back) == digest,
            Err(_) => false,
        };
        if ok {
            return Ok(());
        }
        if attempt < VERIFY_REWRITES {
            registry.counter("io.shard.verify_rewrites").incr();
            sink.write_file(name, buf)?;
        }
    }
    Err(IoError::ChecksumMismatch {
        context: format!("verify-after-write of {name} ({VERIFY_REWRITES} rewrites exhausted)"),
    })
}

/// One shard the recovering reader could not fully restore.
#[derive(Debug, Clone)]
pub struct DamagedShard {
    /// Index into the manifest's shard list.
    pub index: usize,
    /// Blob name within the sink.
    pub name: String,
    /// Records the manifest declared for this shard.
    pub records_declared: u64,
    /// CRC-valid records salvaged from the intact prefix.
    pub records_recovered: u64,
    /// Human-readable cause (read failure, file CRC, record CRC, ...).
    pub reason: String,
}

/// Outcome of [`ShardReader::read_all_recovering`]: which shards were
/// quarantined and how many records could not be restored.
#[derive(Debug, Clone, Default)]
pub struct DamageReport {
    /// Quarantined shards, in manifest order.
    pub damaged: Vec<DamagedShard>,
    /// Total records declared by the manifest but not recovered.
    pub records_lost: u64,
}

impl DamageReport {
    /// True when every shard was read back intact.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty() && self.records_lost == 0
    }
}

/// Records plus damage summary from a recovering read.
#[derive(Debug, Clone)]
pub struct RecoveredRead {
    /// All records restored, in manifest order (damaged shards
    /// contribute their salvageable prefix).
    pub records: Vec<Vec<u8>>,
    /// What was quarantined.
    pub damage: DamageReport,
}

/// Cap on `Vec::with_capacity` hints derived from untrusted manifest
/// counts: a corrupt manifest declaring `u64::MAX` records must not
/// trigger a giant up-front allocation before any CRC has been checked.
/// Reads beyond the clamp simply grow the vector normally.
const MAX_PREALLOC_RECORDS: usize = 1 << 16;

/// Reads records back from a shard run, verifying CRCs.
pub struct ShardReader<'a> {
    manifest: ShardManifest,
    sink: &'a dyn StorageSink,
}

impl<'a> ShardReader<'a> {
    /// Open by manifest prefix.
    pub fn open(prefix: &str, sink: &'a dyn StorageSink) -> Result<Self, IoError> {
        let raw = sink.read_file(&format!("{prefix}.manifest.json"))?;
        let text = std::str::from_utf8(&raw)
            .map_err(|_| IoError::Format("manifest is not UTF-8".into()))?;
        let json = Json::parse(text).map_err(|e| IoError::Format(format!("manifest: {e}")))?;
        let manifest = ShardManifest::from_json(&json)?;
        Ok(ShardReader { manifest, sink })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Read and decode every record of one shard, verifying the whole-file
    /// CRC and each record CRC.
    pub fn read_shard(&self, index: usize) -> Result<Vec<Vec<u8>>, IoError> {
        let info = self
            .manifest
            .shards
            .get(index)
            .ok_or_else(|| IoError::Format(format!("shard index {index} out of range")))?;
        let data = self.sink.read_file(&info.name)?;
        if crc32c(&data) != info.crc32c {
            return Err(IoError::ChecksumMismatch {
                context: format!("shard file {}", info.name),
            });
        }
        parse_shard(&data, &info.name, self.manifest.codec)
    }

    /// Iterate all records across shards in order (fully materialized;
    /// use [`crate::parallel::prefetch_map`] for streaming pipelines).
    /// The capacity hint from the (untrusted) manifest is clamped so a
    /// corrupt record count cannot force a giant allocation before the
    /// per-shard CRC checks run.
    pub fn read_all(&self) -> Result<Vec<Vec<u8>>, IoError> {
        let registry = Registry::current();
        let span = registry.span("io.shard.read_all");
        let _in_read = span.enter();
        let mut out =
            Vec::with_capacity((self.manifest.total_records as usize).min(MAX_PREALLOC_RECORDS));
        for i in 0..self.manifest.shards.len() {
            out.extend(self.read_shard(i)?);
        }
        span.add_items(out.len() as u64);
        span.add_bytes(out.iter().map(|r| r.len() as u64).sum());
        Ok(out)
    }

    /// Like [`read_all`](Self::read_all), but quarantine damaged shards
    /// into a [`DamageReport`] instead of aborting the whole read.
    ///
    /// Per shard: a read failure quarantines the shard with zero records
    /// recovered; a parse/CRC failure salvages the CRC-valid record
    /// prefix before the first corruption; a whole-file CRC mismatch
    /// whose records all still verify individually recovers everything
    /// but is reported (the corruption sits in framing padding). Shards
    /// recovering fewer records than the manifest declares contribute
    /// the difference to `records_lost`.
    ///
    /// Telemetry: `io.shard.quarantined` counts quarantined shards and
    /// `io.shard.records_lost` the unrecovered records.
    pub fn read_all_recovering(&self) -> RecoveredRead {
        let registry = Registry::current();
        let mut records =
            Vec::with_capacity((self.manifest.total_records as usize).min(MAX_PREALLOC_RECORDS));
        let mut damage = DamageReport::default();
        for (index, info) in self.manifest.shards.iter().enumerate() {
            let mut quarantine = |recovered: Vec<Vec<u8>>, reason: String| {
                let lost = info.records.saturating_sub(recovered.len() as u64);
                damage.records_lost += lost;
                damage.damaged.push(DamagedShard {
                    index,
                    name: info.name.clone(),
                    records_declared: info.records,
                    records_recovered: recovered.len() as u64,
                    reason,
                });
                recovered
            };
            match self.sink.read_file(&info.name) {
                Err(e) => {
                    records.extend(quarantine(Vec::new(), format!("read failed: {e}")));
                }
                Ok(data) => {
                    let file_ok = crc32c(&data) == info.crc32c;
                    let (recs, err) = parse_shard_partial(&data, &info.name, self.manifest.codec);
                    let complete = err.is_none() && recs.len() as u64 == info.records;
                    if file_ok && complete {
                        records.extend(recs);
                    } else {
                        let reason = match err {
                            Some(e) => e.to_string(),
                            None if !file_ok => "shard file CRC mismatch".to_string(),
                            None => format!(
                                "record count mismatch (manifest {}, parsed {})",
                                info.records,
                                recs.len()
                            ),
                        };
                        records.extend(quarantine(recs, reason));
                    }
                }
            }
        }
        registry
            .counter("io.shard.quarantined")
            .add(damage.damaged.len() as u64);
        registry
            .counter("io.shard.records_lost")
            .add(damage.records_lost);
        RecoveredRead { records, damage }
    }
}

/// Parse one shard file body (exposed for the failure-injection tests).
pub fn parse_shard(data: &[u8], name: &str, codec_id: CodecId) -> Result<Vec<Vec<u8>>, IoError> {
    let (records, err) = parse_shard_partial(data, name, codec_id);
    match err {
        None => Ok(records),
        Some(e) => Err(e),
    }
}

/// Parse as many CRC-valid records as possible from a shard body,
/// stopping at the first structural or checksum failure. Returns the
/// salvaged prefix and the error that stopped the parse, if any — the
/// recovering reader's salvage primitive. Framing after the first bad
/// record is untrustworthy (record lengths chain the offsets), so
/// salvage never skips past a failure.
pub fn parse_shard_partial(
    data: &[u8],
    name: &str,
    codec_id: CodecId,
) -> (Vec<Vec<u8>>, Option<IoError>) {
    if data.len() < 12 || &data[..8] != SHARD_MAGIC {
        return (
            Vec::new(),
            Some(IoError::Format(format!("{name}: bad shard magic"))),
        );
    }
    let file_codec = match CodecId::from_tag(data[8]) {
        Ok(c) => c,
        Err(e) => return (Vec::new(), Some(e.into())),
    };
    if file_codec != codec_id {
        return (
            Vec::new(),
            Some(IoError::Format(format!(
                "{name}: codec mismatch (file={}, manifest={})",
                file_codec.name(),
                codec_id.name()
            ))),
        );
    }
    let codec = codec_for(codec_id);
    let mut out = Vec::new();
    let mut pos = 12;
    while pos < data.len() {
        if pos + RECORD_HEADER > data.len() {
            return (
                out,
                Some(IoError::Format(format!("{name}: truncated record header"))),
            );
        }
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        pos += RECORD_HEADER;
        if len > data.len() - pos {
            return (
                out,
                Some(IoError::Format(format!("{name}: truncated record payload"))),
            );
        }
        let stored = &data[pos..pos + len];
        if masked_crc32c(stored) != crc {
            let context = format!("{name} record {}", out.len());
            return (out, Some(IoError::ChecksumMismatch { context }));
        }
        match codec.decode(stored) {
            Ok(decoded) => out.push(decoded),
            Err(e) => return (out, Some(e.into())),
        }
        pos += len;
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    fn records(n: usize, size: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..size).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
            .collect()
    }

    #[test]
    fn round_trip_single_shard() {
        let sink = MemSink::new();
        let recs = records(10, 100);
        let spec = ShardSpec::new("train", 1 << 20);
        let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
        assert_eq!(manifest.shards.len(), 1);
        assert_eq!(manifest.total_records, 10);
        assert_eq!(manifest.payload_bytes, 1000);
        let reader = ShardReader::open("train", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
    }

    #[test]
    fn splits_at_target_size() {
        let sink = MemSink::new();
        let recs = records(100, 1000);
        let spec = ShardSpec::new("t", 10_000);
        let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
        assert!(
            manifest.shards.len() >= 10,
            "expected ~11 shards, got {}",
            manifest.shards.len()
        );
        // Order preserved across shards.
        let reader = ShardReader::open("t", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
        // All but the last shard should be near target size.
        for s in &manifest.shards[..manifest.shards.len() - 1] {
            assert!(s.bytes <= 10_000 + 1020, "shard {} too large", s.name);
        }
    }

    #[test]
    fn oversized_record_gets_own_shard() {
        let sink = MemSink::new();
        let recs = vec![vec![1u8; 50_000], vec![2u8; 10], vec![3u8; 10]];
        let manifest = ShardWriter::new(ShardSpec::new("big", 1000), &sink)
            .write_all(&recs)
            .unwrap();
        assert_eq!(manifest.shards[0].records, 1);
        let reader = ShardReader::open("big", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
    }

    #[test]
    fn compressed_shards_round_trip() {
        let sink = MemSink::new();
        let recs: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 4096]).collect();
        for codec in [CodecId::Rle, CodecId::Lz, CodecId::Delta { width: 1 }] {
            let prefix = format!("c-{}", codec.name());
            let spec = ShardSpec::new(prefix.clone(), 1 << 20).with_codec(codec);
            let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
            assert_eq!(manifest.codec, codec);
            let reader = ShardReader::open(&prefix, &sink).unwrap();
            assert_eq!(reader.read_all().unwrap(), recs, "{codec:?}");
            // RLE/LZ on constant records must actually shrink the files.
            if codec != (CodecId::Delta { width: 1 }) {
                let stored: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
                assert!(stored < 20 * 4096 / 4, "{codec:?} stored {stored}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_manifest() {
        let sink = MemSink::new();
        let manifest = ShardWriter::new(ShardSpec::new("empty", 1000), &sink)
            .write_all(Vec::<Vec<u8>>::new())
            .unwrap();
        assert_eq!(manifest.total_records, 0);
        assert!(manifest.shards.is_empty());
        let reader = ShardReader::open("empty", &sink).unwrap();
        assert!(reader.read_all().unwrap().is_empty());
    }

    #[test]
    fn manifest_json_round_trip() {
        let m = ShardManifest {
            prefix: "x".into(),
            codec: CodecId::Lz,
            shards: vec![ShardInfo {
                name: "x-00000.shard".into(),
                records: 3,
                bytes: 456,
                crc32c: 0xDEAD_BEEF,
            }],
            total_records: 3,
            payload_bytes: 999,
        };
        let j = m.to_json();
        let back = ShardManifest::from_json(&j).unwrap();
        assert_eq!(back, m);
        let reparsed = Json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(ShardManifest::from_json(&reparsed).unwrap(), m);
    }

    #[test]
    fn corrupted_record_detected() {
        let sink = MemSink::new();
        let recs = records(5, 200);
        ShardWriter::new(ShardSpec::new("corrupt", 1 << 20), &sink)
            .write_all(&recs)
            .unwrap();
        let name = "corrupt-00000.shard";
        let mut data = sink.read_file(name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0xFF;
        sink.write_file(name, &data).unwrap();
        let reader = ShardReader::open("corrupt", &sink).unwrap();
        match reader.read_shard(0) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_shard_detected() {
        let sink = MemSink::new();
        let recs = records(5, 200);
        ShardWriter::new(ShardSpec::new("trunc", 1 << 20), &sink)
            .write_all(&recs)
            .unwrap();
        let name = "trunc-00000.shard";
        let data = sink.read_file(name).unwrap();
        sink.write_file(name, &data[..data.len() - 10]).unwrap();
        let reader = ShardReader::open("trunc", &sink).unwrap();
        assert!(reader.read_shard(0).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = parse_shard(b"NOTASHARDFILE", "x", CodecId::Raw).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn recovering_reader_quarantines_corrupt_shard() {
        let sink = MemSink::new();
        let recs = records(30, 500);
        let manifest = ShardWriter::new(ShardSpec::new("rec", 4000), &sink)
            .write_all(&recs)
            .unwrap();
        assert!(manifest.shards.len() >= 3, "want multiple shards");
        // Corrupt a mid-payload byte of the middle shard.
        let victim = &manifest.shards[1];
        let mut data = sink.read_file(&victim.name).unwrap();
        let n = data.len();
        data[n - 10] ^= 0x40;
        sink.write_file(&victim.name, &data).unwrap();

        let reader = ShardReader::open("rec", &sink).unwrap();
        assert!(reader.read_all().is_err(), "strict read must abort");
        let recovered = reader.read_all_recovering();
        assert_eq!(recovered.damage.damaged.len(), 1);
        let d = &recovered.damage.damaged[0];
        assert_eq!(d.index, 1);
        assert_eq!(d.name, victim.name);
        assert!(d.records_recovered < d.records_declared);
        assert_eq!(
            recovered.damage.records_lost,
            d.records_declared - d.records_recovered
        );
        assert_eq!(
            recovered.records.len() as u64,
            manifest.total_records - recovered.damage.records_lost
        );
        // Undamaged shards contribute their exact records; the salvaged
        // prefix of the damaged shard matches the original order.
        assert_eq!(
            &recovered.records[..manifest.shards[0].records as usize],
            &recs[..manifest.shards[0].records as usize]
        );
        assert!(!recovered.damage.is_clean());
    }

    #[test]
    fn recovering_reader_clean_on_intact_data() {
        let sink = MemSink::new();
        let recs = records(20, 300);
        ShardWriter::new(ShardSpec::new("clean", 2000), &sink)
            .write_all(&recs)
            .unwrap();
        let reader = ShardReader::open("clean", &sink).unwrap();
        let recovered = reader.read_all_recovering();
        assert!(recovered.damage.is_clean());
        assert_eq!(recovered.records, recs);
    }

    #[test]
    fn recovering_reader_survives_missing_shard() {
        let sink = MemSink::new();
        let recs = records(20, 500);
        let manifest = ShardWriter::new(ShardSpec::new("gone", 3000), &sink)
            .write_all(&recs)
            .unwrap();
        sink.delete(&manifest.shards[0].name).unwrap();
        let reader = ShardReader::open("gone", &sink).unwrap();
        let recovered = reader.read_all_recovering();
        assert_eq!(recovered.damage.damaged.len(), 1);
        assert_eq!(recovered.damage.damaged[0].records_recovered, 0);
        assert_eq!(
            recovered.records.len() as u64,
            manifest.total_records - manifest.shards[0].records
        );
    }

    #[test]
    fn verify_after_write_round_trips() {
        let sink = MemSink::new();
        let recs = records(10, 200);
        let spec = ShardSpec::new("vfy", 1 << 20).with_verify(true);
        assert!(spec.verify_writes);
        let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
        assert_eq!(manifest.total_records, 10);
        let reader = ShardReader::open("vfy", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
    }

    #[test]
    fn verify_after_write_rewrites_corrupted_shard() {
        use crate::fault::{FaultConfig, FaultSink};
        // Writes sometimes store a bit-flipped copy; the deterministic
        // rolls differ per attempt, so the rewrite loop lands a clean
        // copy (p(fail) = 0.2^4 per shard with 3 rewrites).
        let cfg = FaultConfig {
            seed: 21,
            corrupt: 0.2,
            ..FaultConfig::default()
        };
        let sink = FaultSink::new(MemSink::new(), cfg);
        let recs = records(40, 400);
        let manifest = ShardWriter::new(ShardSpec::new("vw", 2000).with_verify(true), &sink)
            .write_all(&recs)
            .unwrap();
        assert!(manifest.shards.len() > 1);
        let reader = ShardReader::open("vw", sink.inner()).unwrap();
        let recovered = reader.read_all_recovering();
        assert!(recovered.damage.is_clean(), "{:?}", recovered.damage);
        assert_eq!(recovered.records, recs);
    }

    #[test]
    fn huge_manifest_count_does_not_preallocate() {
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("huge", 1000), &sink)
            .write_all(records(3, 50))
            .unwrap();
        // Forge a manifest declaring an absurd record count.
        // 2^53 - 1: the largest count exactly representable in the JSON
        // number model, still an absurd ~72 PiB preallocation if trusted.
        const HUGE: u64 = (1 << 53) - 1;
        let raw = sink.read_file("huge.manifest.json").unwrap();
        let text = std::str::from_utf8(&raw)
            .unwrap()
            .replace("\"total_records\":3", &format!("\"total_records\":{HUGE}"));
        assert_ne!(text.as_bytes(), raw.as_slice(), "replacement must hit");
        sink.write_file("huge.manifest.json", text.as_bytes())
            .unwrap();
        let reader = ShardReader::open("huge", &sink).unwrap();
        assert_eq!(reader.manifest().total_records, HUGE);
        // Must not abort on allocation; the count mismatch surfaces as
        // data, not as an OOM.
        let out = reader.read_all().unwrap();
        assert_eq!(out.len(), 3);
        let recovered = reader.read_all_recovering();
        assert_eq!(recovered.records.len(), 3);
    }

    #[test]
    fn partial_parse_salvages_prefix() {
        let sink = MemSink::new();
        let recs = records(8, 100);
        ShardWriter::new(ShardSpec::new("pp", 1 << 20), &sink)
            .write_all(&recs)
            .unwrap();
        let mut data = sink.read_file("pp-00000.shard").unwrap();
        // Corrupt record 5's payload: header is 12 bytes, each record
        // 8 + 100 bytes.
        let off = 12 + 5 * 108 + 8 + 50;
        data[off] ^= 0x01;
        let (salvaged, err) = parse_shard_partial(&data, "pp", CodecId::Raw);
        assert_eq!(salvaged.len(), 5);
        assert_eq!(salvaged, recs[..5]);
        assert!(matches!(err, Some(IoError::ChecksumMismatch { .. })));
    }

    #[test]
    fn codec_mismatch_rejected() {
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("cm", 1000).with_codec(CodecId::Rle), &sink)
            .write_all(records(2, 50))
            .unwrap();
        let data = sink.read_file("cm-00000.shard").unwrap();
        let err = parse_shard(&data, "cm", CodecId::Raw).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }
}
