//! The record-sharding engine — the paper's *shard* processing stage.
//!
//! "AI-ready" in the DRAI framework means, operationally, that samples are
//! "partitioned into train/test/val & sharded into binary formats for
//! scalable ingestion" (Table 2, level 5). This module provides the
//! format-agnostic half of that: fixed-target-size shard files of
//! CRC-framed records, written in parallel, indexed by a JSON manifest with
//! per-shard digests so corruption is detected at read time.
//!
//! ## Shard file layout
//!
//! ```text
//! +--------------------+ 8 bytes  magic "DSHRD1\0\0"
//! | codec tag          | 1 byte   CodecId::tag()
//! | reserved           | 3 bytes  zero
//! | record 0           |
//! |   stored_len u32le |
//! |   masked crc32c    |          over the stored (encoded) payload
//! |   stored payload   |
//! | record 1 ...       |
//! +--------------------+
//! ```
//!
//! Records are individually compressed so a reader can skip or stream
//! without decompressing the whole shard (TFRecord-style framing with the
//! same masked-CRC trick).

use crate::checksum::{crc32c, masked_crc32c};
use crate::codec::{codec_for, CodecId};
use crate::json::Json;
use crate::sink::StorageSink;
use crate::IoError;
use drai_telemetry::Registry;
use rayon::prelude::*;
use std::time::Instant;

const SHARD_MAGIC: &[u8; 8] = b"DSHRD1\0\0";
const RECORD_HEADER: usize = 8; // u32 len + u32 masked crc

/// Configuration for a shard run.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Prefix for shard file names: `{prefix}-{index:05}.shard`.
    pub prefix: String,
    /// Target (soft maximum) bytes of stored payload per shard. A single
    /// record larger than the target still becomes one oversized shard.
    pub target_shard_bytes: usize,
    /// Codec applied to each record payload.
    pub codec: CodecId,
}

impl ShardSpec {
    /// Spec with the raw codec and a given target size.
    pub fn new(prefix: impl Into<String>, target_shard_bytes: usize) -> Self {
        ShardSpec {
            prefix: prefix.into(),
            target_shard_bytes: target_shard_bytes.max(1),
            codec: CodecId::Raw,
        }
    }

    /// Builder-style codec override.
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    fn shard_name(&self, index: usize) -> String {
        format!("{}-{index:05}.shard", self.prefix)
    }

    fn manifest_name(&self) -> String {
        format!("{}.manifest.json", self.prefix)
    }
}

/// Per-shard entry in a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Blob name within the sink.
    pub name: String,
    /// Number of records in this shard.
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// CRC-32C of the entire shard file.
    pub crc32c: u32,
}

/// Index of a completed shard run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard spec prefix this manifest belongs to.
    pub prefix: String,
    /// Codec used for record payloads.
    pub codec: CodecId,
    /// All shards, in record order.
    pub shards: Vec<ShardInfo>,
    /// Total records across shards.
    pub total_records: u64,
    /// Total *uncompressed* payload bytes across records.
    pub payload_bytes: u64,
}

impl ShardManifest {
    /// Serialize to deterministic JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::from("drai-shard-manifest-v1")),
            ("prefix", Json::from(self.prefix.clone())),
            ("codec", Json::from(self.codec.name())),
            ("total_records", Json::from(self.total_records)),
            ("payload_bytes", Json::from(self.payload_bytes)),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::from(s.name.clone())),
                                ("records", Json::from(s.records)),
                                ("bytes", Json::from(s.bytes)),
                                ("crc32c", Json::from(s.crc32c as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse from manifest JSON.
    pub fn from_json(v: &Json) -> Result<ShardManifest, IoError> {
        let bad = |msg: &str| IoError::Format(format!("manifest: {msg}"));
        if v.get("format").and_then(Json::as_str) != Some("drai-shard-manifest-v1") {
            return Err(bad("missing/unknown format marker"));
        }
        let prefix = v
            .get("prefix")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing prefix"))?
            .to_string();
        let codec_name = v
            .get("codec")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing codec"))?;
        let codec = CodecId::from_name(codec_name)
            .ok_or_else(|| bad(&format!("unknown codec {codec_name}")))?;
        let total_records = v
            .get("total_records")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing total_records"))?;
        let payload_bytes = v
            .get("payload_bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing payload_bytes"))?;
        let mut shards = Vec::new();
        for s in v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing shards"))?
        {
            shards.push(ShardInfo {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("shard missing name"))?
                    .to_string(),
                records: s
                    .get("records")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing records"))?,
                bytes: s
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing bytes"))?,
                crc32c: s
                    .get("crc32c")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("shard missing crc32c"))? as u32,
            });
        }
        Ok(ShardManifest {
            prefix,
            codec,
            shards,
            total_records,
            payload_bytes,
        })
    }
}

/// Writes records into size-targeted shard files through a [`StorageSink`].
pub struct ShardWriter<'a> {
    spec: ShardSpec,
    sink: &'a dyn StorageSink,
}

impl<'a> ShardWriter<'a> {
    /// Writer for `spec` targeting `sink`.
    pub fn new(spec: ShardSpec, sink: &'a dyn StorageSink) -> Self {
        ShardWriter { spec, sink }
    }

    /// Encode and write all records, preserving order, and persist the
    /// manifest. Record payload encoding runs data-parallel (rayon);
    /// shard files themselves are written concurrently once assembled.
    ///
    /// Telemetry: an `io.shard.write_all` span (items = records, bytes =
    /// uncompressed payload), `io.shard.{records,bytes_in,bytes_out}`
    /// counters, `io.shard.{encode_ns,write_ns}` phase histograms, and
    /// the `io.shard.compression_permille` gauge (stored size as ‰ of
    /// payload size, 1000 = incompressible).
    pub fn write_all<R>(&self, records: R) -> Result<ShardManifest, IoError>
    where
        R: IntoIterator,
        R::Item: AsRef<[u8]> + Send + Sync,
    {
        let registry = Registry::global();
        let span = registry.span("io.shard.write_all");
        let records: Vec<R::Item> = records.into_iter().collect();
        let payload_bytes: u64 = records.iter().map(|r| r.as_ref().len() as u64).sum();
        span.add_items(records.len() as u64);
        span.add_bytes(payload_bytes);
        registry
            .counter("io.shard.records")
            .add(records.len() as u64);
        registry.counter("io.shard.bytes_in").add(payload_bytes);

        // Parallel per-record encode (order preserved by collect).
        let codec = codec_for(self.spec.codec);
        let encode_start = Instant::now();
        let encoded: Vec<Vec<u8>> = records
            .par_iter()
            .map(|r| codec.encode(r.as_ref()))
            .collect();
        registry
            .histogram("io.shard.encode_ns")
            .record(encode_start.elapsed().as_nanos() as u64);
        drop(records);

        // Greedy size-based packing into shards.
        let mut groups: Vec<(usize, usize)> = Vec::new(); // (start, end)
        let mut start = 0;
        let mut acc = 0usize;
        for (i, e) in encoded.iter().enumerate() {
            let sz = e.len() + RECORD_HEADER;
            if acc > 0 && acc + sz > self.spec.target_shard_bytes {
                groups.push((start, i));
                start = i;
                acc = 0;
            }
            acc += sz;
        }
        if start < encoded.len() {
            groups.push((start, encoded.len()));
        }

        // Assemble and write shards in parallel; infos keep group order.
        let spec = &self.spec;
        let sink = self.sink;
        let write_start = Instant::now();
        let infos: Vec<Result<ShardInfo, IoError>> = groups
            .par_iter()
            .enumerate()
            .map(|(idx, &(s, e))| {
                let mut buf = Vec::with_capacity(
                    12 + encoded[s..e]
                        .iter()
                        .map(|r| r.len() + RECORD_HEADER)
                        .sum::<usize>(),
                );
                buf.extend_from_slice(SHARD_MAGIC);
                buf.push(spec.codec.tag());
                buf.extend_from_slice(&[0, 0, 0]);
                for rec in &encoded[s..e] {
                    buf.extend_from_slice(&(rec.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&masked_crc32c(rec).to_le_bytes());
                    buf.extend_from_slice(rec);
                }
                let name = spec.shard_name(idx);
                sink.write_file(&name, &buf)?;
                Ok(ShardInfo {
                    name,
                    records: (e - s) as u64,
                    bytes: buf.len() as u64,
                    crc32c: crc32c(&buf),
                })
            })
            .collect();
        registry
            .histogram("io.shard.write_ns")
            .record(write_start.elapsed().as_nanos() as u64);
        let mut shards = Vec::with_capacity(infos.len());
        for info in infos {
            shards.push(info?);
        }
        let stored_bytes: u64 = shards.iter().map(|s| s.bytes).sum();
        registry.counter("io.shard.bytes_out").add(stored_bytes);
        if let Some(permille) = stored_bytes.saturating_mul(1000).checked_div(payload_bytes) {
            registry
                .gauge("io.shard.compression_permille")
                .set(permille as i64);
        }

        let manifest = ShardManifest {
            prefix: self.spec.prefix.clone(),
            codec: self.spec.codec,
            total_records: encoded.len() as u64,
            payload_bytes,
            shards,
        };
        self.sink.write_file(
            &self.spec.manifest_name(),
            manifest.to_json().to_string_compact().as_bytes(),
        )?;
        Ok(manifest)
    }
}

/// Reads records back from a shard run, verifying CRCs.
pub struct ShardReader<'a> {
    manifest: ShardManifest,
    sink: &'a dyn StorageSink,
}

impl<'a> ShardReader<'a> {
    /// Open by manifest prefix.
    pub fn open(prefix: &str, sink: &'a dyn StorageSink) -> Result<Self, IoError> {
        let raw = sink.read_file(&format!("{prefix}.manifest.json"))?;
        let text = std::str::from_utf8(&raw)
            .map_err(|_| IoError::Format("manifest is not UTF-8".into()))?;
        let json = Json::parse(text).map_err(|e| IoError::Format(format!("manifest: {e}")))?;
        let manifest = ShardManifest::from_json(&json)?;
        Ok(ShardReader { manifest, sink })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Read and decode every record of one shard, verifying the whole-file
    /// CRC and each record CRC.
    pub fn read_shard(&self, index: usize) -> Result<Vec<Vec<u8>>, IoError> {
        let info = self
            .manifest
            .shards
            .get(index)
            .ok_or_else(|| IoError::Format(format!("shard index {index} out of range")))?;
        let data = self.sink.read_file(&info.name)?;
        if crc32c(&data) != info.crc32c {
            return Err(IoError::ChecksumMismatch {
                context: format!("shard file {}", info.name),
            });
        }
        parse_shard(&data, &info.name, self.manifest.codec)
    }

    /// Iterate all records across shards in order (fully materialized;
    /// use [`crate::parallel::prefetch_map`] for streaming pipelines).
    pub fn read_all(&self) -> Result<Vec<Vec<u8>>, IoError> {
        let mut out = Vec::with_capacity(self.manifest.total_records as usize);
        for i in 0..self.manifest.shards.len() {
            out.extend(self.read_shard(i)?);
        }
        Ok(out)
    }
}

/// Parse one shard file body (exposed for the failure-injection tests).
pub fn parse_shard(data: &[u8], name: &str, codec_id: CodecId) -> Result<Vec<Vec<u8>>, IoError> {
    if data.len() < 12 || &data[..8] != SHARD_MAGIC {
        return Err(IoError::Format(format!("{name}: bad shard magic")));
    }
    let tag = data[8];
    let file_codec = CodecId::from_tag(tag)?;
    if file_codec != codec_id {
        return Err(IoError::Format(format!(
            "{name}: codec mismatch (file={}, manifest={})",
            file_codec.name(),
            codec_id.name()
        )));
    }
    let codec = codec_for(codec_id);
    let mut out = Vec::new();
    let mut pos = 12;
    while pos < data.len() {
        if pos + RECORD_HEADER > data.len() {
            return Err(IoError::Format(format!("{name}: truncated record header")));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        pos += RECORD_HEADER;
        if pos + len > data.len() {
            return Err(IoError::Format(format!("{name}: truncated record payload")));
        }
        let stored = &data[pos..pos + len];
        if masked_crc32c(stored) != crc {
            return Err(IoError::ChecksumMismatch {
                context: format!("{name} record {}", out.len()),
            });
        }
        out.push(codec.decode(stored)?);
        pos += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    fn records(n: usize, size: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..size).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
            .collect()
    }

    #[test]
    fn round_trip_single_shard() {
        let sink = MemSink::new();
        let recs = records(10, 100);
        let spec = ShardSpec::new("train", 1 << 20);
        let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
        assert_eq!(manifest.shards.len(), 1);
        assert_eq!(manifest.total_records, 10);
        assert_eq!(manifest.payload_bytes, 1000);
        let reader = ShardReader::open("train", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
    }

    #[test]
    fn splits_at_target_size() {
        let sink = MemSink::new();
        let recs = records(100, 1000);
        let spec = ShardSpec::new("t", 10_000);
        let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
        assert!(
            manifest.shards.len() >= 10,
            "expected ~11 shards, got {}",
            manifest.shards.len()
        );
        // Order preserved across shards.
        let reader = ShardReader::open("t", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
        // All but the last shard should be near target size.
        for s in &manifest.shards[..manifest.shards.len() - 1] {
            assert!(s.bytes <= 10_000 + 1020, "shard {} too large", s.name);
        }
    }

    #[test]
    fn oversized_record_gets_own_shard() {
        let sink = MemSink::new();
        let recs = vec![vec![1u8; 50_000], vec![2u8; 10], vec![3u8; 10]];
        let manifest = ShardWriter::new(ShardSpec::new("big", 1000), &sink)
            .write_all(&recs)
            .unwrap();
        assert_eq!(manifest.shards[0].records, 1);
        let reader = ShardReader::open("big", &sink).unwrap();
        assert_eq!(reader.read_all().unwrap(), recs);
    }

    #[test]
    fn compressed_shards_round_trip() {
        let sink = MemSink::new();
        let recs: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 4096]).collect();
        for codec in [CodecId::Rle, CodecId::Lz, CodecId::Delta { width: 1 }] {
            let prefix = format!("c-{}", codec.name());
            let spec = ShardSpec::new(prefix.clone(), 1 << 20).with_codec(codec);
            let manifest = ShardWriter::new(spec, &sink).write_all(&recs).unwrap();
            assert_eq!(manifest.codec, codec);
            let reader = ShardReader::open(&prefix, &sink).unwrap();
            assert_eq!(reader.read_all().unwrap(), recs, "{codec:?}");
            // RLE/LZ on constant records must actually shrink the files.
            if codec != (CodecId::Delta { width: 1 }) {
                let stored: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
                assert!(stored < 20 * 4096 / 4, "{codec:?} stored {stored}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_manifest() {
        let sink = MemSink::new();
        let manifest = ShardWriter::new(ShardSpec::new("empty", 1000), &sink)
            .write_all(Vec::<Vec<u8>>::new())
            .unwrap();
        assert_eq!(manifest.total_records, 0);
        assert!(manifest.shards.is_empty());
        let reader = ShardReader::open("empty", &sink).unwrap();
        assert!(reader.read_all().unwrap().is_empty());
    }

    #[test]
    fn manifest_json_round_trip() {
        let m = ShardManifest {
            prefix: "x".into(),
            codec: CodecId::Lz,
            shards: vec![ShardInfo {
                name: "x-00000.shard".into(),
                records: 3,
                bytes: 456,
                crc32c: 0xDEAD_BEEF,
            }],
            total_records: 3,
            payload_bytes: 999,
        };
        let j = m.to_json();
        let back = ShardManifest::from_json(&j).unwrap();
        assert_eq!(back, m);
        let reparsed = Json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(ShardManifest::from_json(&reparsed).unwrap(), m);
    }

    #[test]
    fn corrupted_record_detected() {
        let sink = MemSink::new();
        let recs = records(5, 200);
        ShardWriter::new(ShardSpec::new("corrupt", 1 << 20), &sink)
            .write_all(&recs)
            .unwrap();
        let name = "corrupt-00000.shard";
        let mut data = sink.read_file(name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0xFF;
        sink.write_file(name, &data).unwrap();
        let reader = ShardReader::open("corrupt", &sink).unwrap();
        match reader.read_shard(0) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_shard_detected() {
        let sink = MemSink::new();
        let recs = records(5, 200);
        ShardWriter::new(ShardSpec::new("trunc", 1 << 20), &sink)
            .write_all(&recs)
            .unwrap();
        let name = "trunc-00000.shard";
        let data = sink.read_file(name).unwrap();
        sink.write_file(name, &data[..data.len() - 10]).unwrap();
        let reader = ShardReader::open("trunc", &sink).unwrap();
        assert!(reader.read_shard(0).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = parse_shard(b"NOTASHARDFILE", "x", CodecId::Raw).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn codec_mismatch_rejected() {
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("cm", 1000).with_codec(CodecId::Rle), &sink)
            .write_all(records(2, 50))
            .unwrap();
        let data = sink.read_file("cm-00000.shard").unwrap();
        let err = parse_shard(&data, "cm", CodecId::Raw).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }
}
