//! Parallel ingestion utilities: bounded prefetching with order
//! preservation, and chunked parallel transforms.
//!
//! GPU-bound training loops starve when preprocessing or storage cannot keep
//! up; the standard HPC remedy (and the paper's "optimized high-throughput
//! ingestion", Table 2 level 4) is a small pool of reader threads feeding a
//! bounded queue ahead of the consumer. [`prefetch_map`] implements that
//! with crossbeam channels while preserving input order, which samplers
//! downstream rely on for reproducible epochs.

//!
//! Telemetry: each [`prefetch_map`] pool reports into the *caller's*
//! registry — the [`TraceContext`] current when `prefetch_map` is called is
//! captured and attached inside every worker, so metrics land in the same
//! registry as the caller's (private registries included) and each worker's
//! `io.prefetch.worker` span parents under the calling stage's span
//! regardless of scheduling. Metrics: `io.prefetch.items` (completed items),
//! `io.prefetch.work_ns` (per-item execution latency, measured on the
//! worker), `io.prefetch.wait_ns` (time the consumer blocked waiting for the
//! next in-order item), and the `io.prefetch.reorder_depth` gauge
//! (reorder-buffer high-water mark).

use crossbeam::channel::{bounded, Receiver};
use drai_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch, TraceContext};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread;

/// Apply `f` to each item on `workers` background threads, yielding results
/// **in input order** through a queue holding at most `queue_cap` completed
/// items per worker.
///
/// `f` runs concurrently; the returned iterator blocks until the next
/// in-order result is available. Panics in `f` propagate to the consumer.
pub fn prefetch_map<T, U, F>(
    items: Vec<T>,
    workers: usize,
    queue_cap: usize,
    f: F,
) -> PrefetchIter<U>
where
    T: Send + 'static,
    U: Send + 'static,
    F: Fn(T) -> U + Send + Sync + 'static,
{
    let workers = workers.max(1);
    let queue_cap = queue_cap.max(1);
    let total = items.len();
    let (work_tx, work_rx) = bounded::<(usize, T)>(workers * 2);
    let (done_tx, done_rx) = bounded::<(usize, thread::Result<U>)>(workers * queue_cap);

    // Capture the caller's trace context at closure-creation time and
    // resolve metric handles from *its* registry (falling back to the
    // global one), so the per-item path is atomics only and worker
    // telemetry follows the caller — not a hard-wired global.
    let context = TraceContext::current();
    let registry = Registry::current();
    let work_hist = registry.histogram("io.prefetch.work_ns");

    // Feeder thread: enumerate work items.
    let feeder = thread::spawn(move || {
        for pair in items.into_iter().enumerate() {
            if work_tx.send(pair).is_err() {
                break; // consumers dropped
            }
        }
    });

    let f = std::sync::Arc::new(f);
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let work_rx = work_rx.clone();
        let done_tx = done_tx.clone();
        let f = f.clone();
        let work_hist = work_hist.clone();
        let context = context.clone();
        let registry = registry.clone();
        pool.push(thread::spawn(move || {
            // Attach the captured context for the worker's lifetime: one
            // `io.prefetch.worker` span per worker thread, deterministically
            // parented under the span the caller had entered.
            let _attached = context.as_ref().map(TraceContext::attach);
            let worker_span = registry.span("io.prefetch.worker");
            let _in_worker = worker_span.enter();
            while let Ok((idx, item)) = work_rx.recv() {
                let start = Stopwatch::start();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                work_hist.record(start.elapsed_ns());
                worker_span.add_items(1);
                if done_tx.send((idx, result)).is_err() {
                    break;
                }
            }
        }));
    }
    drop(done_tx);
    drop(work_rx);

    PrefetchIter {
        rx: Some(done_rx),
        next_index: 0,
        total,
        pending: BinaryHeap::new(),
        threads: Some((feeder, pool)),
        items_counter: registry.counter("io.prefetch.items"),
        wait_hist: registry.histogram("io.prefetch.wait_ns"),
        depth_gauge: registry.gauge("io.prefetch.reorder_depth"),
    }
}

/// Order-restoring iterator returned by [`prefetch_map`].
pub struct PrefetchIter<U> {
    rx: Option<Receiver<(usize, thread::Result<U>)>>,
    next_index: usize,
    total: usize,
    pending: BinaryHeap<Reverse<HeapEntry<U>>>,
    threads: Option<(thread::JoinHandle<()>, Vec<thread::JoinHandle<()>>)>,
    items_counter: Arc<Counter>,
    wait_hist: Arc<Histogram>,
    depth_gauge: Arc<Gauge>,
}

struct HeapEntry<U> {
    index: usize,
    value: thread::Result<U>,
}

impl<U> PartialEq for HeapEntry<U> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<U> Eq for HeapEntry<U> {}
impl<U> PartialOrd for HeapEntry<U> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<U> Ord for HeapEntry<U> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}

impl<U> Iterator for PrefetchIter<U> {
    type Item = U;

    fn next(&mut self) -> Option<U> {
        if self.next_index >= self.total {
            self.join();
            return None;
        }
        let wait_start = Stopwatch::start();
        loop {
            // Serve from the reorder buffer when the next index is ready.
            let head_ready = self
                .pending
                .peek()
                .is_some_and(|Reverse(top)| top.index == self.next_index);
            if head_ready {
                if let Some(Reverse(entry)) = self.pending.pop() {
                    self.next_index += 1;
                    self.wait_hist.record(wait_start.elapsed_ns());
                    match entry.value {
                        Ok(v) => {
                            self.items_counter.incr();
                            return Some(v);
                        }
                        Err(panic) => {
                            self.join();
                            std::panic::resume_unwind(panic)
                        }
                    }
                }
            }
            let recv = self
                .rx
                .as_ref()
                .map(|rx| rx.recv())
                .unwrap_or(Err(crossbeam::channel::RecvError));
            match recv {
                Ok((index, value)) => {
                    self.pending.push(Reverse(HeapEntry { index, value }));
                    self.depth_gauge.set(self.pending.len() as i64);
                }
                Err(_) => {
                    // Workers gone with items missing: a worker panicked
                    // between recv and send, or state is inconsistent.
                    self.join();
                    // drai-lint: allow(no-panic-in-lib) reason="documented contract: prefetch_map propagates worker panics to the caller; there is no value to return here"
                    panic!("prefetch workers terminated early");
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next_index;
        (remaining, Some(remaining))
    }
}

impl<U> PrefetchIter<U> {
    /// Drop the result receiver *first* so workers blocked on a full
    /// results queue error out of `send` and exit, then join everything.
    fn join(&mut self) {
        self.rx = None;
        if let Some((feeder, pool)) = self.threads.take() {
            let _ = feeder.join();
            for t in pool {
                let _ = t.join();
            }
        }
    }
}

impl<U> Drop for PrefetchIter<U> {
    fn drop(&mut self) {
        self.join();
    }
}

/// Split `data` into `chunks` near-equal contiguous pieces (for parallel
/// checksum/compression of large buffers). Returns `(offset, slice)` pairs;
/// fewer pieces when `data` is shorter than `chunks`.
pub fn chunk_slices(data: &[u8], chunks: usize) -> Vec<(usize, &[u8])> {
    let chunks = chunks.max(1);
    if data.is_empty() {
        return Vec::new();
    }
    let size = data.len().div_ceil(chunks);
    data.chunks(size)
        .enumerate()
        .map(|(i, c)| (i * size, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out: Vec<u64> = prefetch_map(items.clone(), 8, 4, |x| {
            // Jittered work so completion order differs from input order.
            std::thread::sleep(std::time::Duration::from_micros((x * 37) % 300));
            x * 2
        })
        .collect();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = prefetch_map(Vec::<u32>::new(), 4, 2, |x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_behaves() {
        let out: Vec<usize> = prefetch_map(vec![5, 6, 7], 1, 1, |x| x + 1).collect();
        assert_eq!(out, vec![6, 7, 8]);
    }

    #[test]
    fn actually_parallel() {
        // With 4 workers, 4 items that each sleep 50ms should finish well
        // under 200ms of wall time.
        let start = std::time::Instant::now();
        let out: Vec<u8> = prefetch_map(vec![0u8; 4], 4, 4, |x| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            x
        })
        .collect();
        assert_eq!(out.len(), 4);
        assert!(
            start.elapsed() < std::time::Duration::from_millis(190),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn early_drop_does_not_hang() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        {
            let mut it = prefetch_map((0..1000).collect::<Vec<u64>>(), 4, 2, move |x| {
                c2.fetch_add(1, Ordering::Relaxed);
                x
            });
            assert_eq!(it.next(), Some(0));
            // Drop with 999 items unconsumed.
        }
        // Workers stopped before processing everything (bounded queues).
        assert!(counter.load(Ordering::Relaxed) <= 1000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _: Vec<u32> = prefetch_map(vec![1u32, 2, 3], 2, 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        })
        .collect();
    }

    #[test]
    fn worker_telemetry_follows_callers_registry() {
        let reg = Registry::new();
        let stage_id = {
            let root = TraceContext::root(&reg);
            let _attached = root.attach();
            let stage = reg.span("stage.load");
            let _in_stage = stage.enter();
            let out: Vec<u64> = prefetch_map((0..50u64).collect(), 3, 2, |x| x + 1).collect();
            assert_eq!(out.len(), 50);
            stage.id()
        };
        let snap = reg.snapshot();
        // Worker metrics landed in the private registry, not the global.
        assert_eq!(snap.counters["io.prefetch.items"], 50);
        assert!(snap.histograms["io.prefetch.work_ns"].count >= 50);
        // One span per worker, each parented under the calling stage.
        let workers = snap.spans_named("io.prefetch.worker");
        assert_eq!(workers.len(), 3);
        assert_eq!(workers.iter().map(|w| w.items).sum::<u64>(), 50);
        for w in workers {
            assert_eq!(w.parent, Some(stage_id), "worker span not under stage");
        }
    }

    #[test]
    fn chunk_slices_covers_everything() {
        let data: Vec<u8> = (0..=255).collect();
        for chunks in [1, 2, 3, 7, 256, 1000] {
            let parts = chunk_slices(&data, chunks);
            let mut rebuilt = Vec::new();
            let mut expected_off = 0;
            for (off, slice) in &parts {
                assert_eq!(*off, expected_off);
                expected_off += slice.len();
                rebuilt.extend_from_slice(slice);
            }
            assert_eq!(rebuilt, data, "chunks={chunks}");
        }
        assert!(chunk_slices(&[], 4).is_empty());
    }
}
