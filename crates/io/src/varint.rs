//! LEB128 varints and zigzag coding.
//!
//! Shared by the delta codec (small signed deltas → short varints) and the
//! protobuf wire encoder behind TFRecord `Example` messages.

/// Append `value` as an unsigned LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from the front of `bytes`.
/// Returns `(value, bytes_consumed)` or `None` on truncation/overflow.
pub fn read_uvarint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            return None; // overflow: more than 10 bytes
        }
        let payload = (b & 0x7F) as u64;
        // Detect bits shifted out of range (canonical 64-bit bound).
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Zigzag-encode a signed integer so small magnitudes become small
/// unsigned values: 0→0, -1→1, 1→2, -2→3, ...
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed value as zigzag + LEB128.
pub fn write_ivarint(out: &mut Vec<u8>, value: i64) {
    write_uvarint(out, zigzag(value));
}

/// Decode a zigzag + LEB128 signed value. Returns `(value, consumed)`.
pub fn read_ivarint(bytes: &[u8]) -> Option<(i64, usize)> {
    read_uvarint(bytes).map(|(v, n)| (unzigzag(v), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let (back, n) = read_uvarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn uvarint_single_byte_values() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 42);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn uvarint_truncated_rejected() {
        assert_eq!(read_uvarint(&[]), None);
        assert_eq!(read_uvarint(&[0x80]), None);
        assert_eq!(read_uvarint(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn uvarint_overflow_rejected() {
        // 11 continuation bytes exceed 64 bits.
        let buf = [0xFFu8; 11];
        assert_eq!(read_uvarint(&buf), None);
        // 10 bytes with a too-large final payload.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x02);
        assert_eq!(read_uvarint(&buf), None);
    }

    #[test]
    fn zigzag_known_values() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ivarint_round_trip() {
        for v in [0i64, -5, 5, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            let (back, n) = read_ivarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }
}
