//! Deterministic fault injection for [`StorageSink`] backends.
//!
//! Parallel filesystems fail in ways a laptop SSD never shows: transient
//! `EIO`s under OST contention, permanent quota/permission failures, and
//! silent bit corruption between the client cache and the disk. The
//! paper's level-5 "AI-ready" bar (sharded binary formats for scalable
//! ingestion) is only honest if the shard engine survives those, so this
//! module provides a [`FaultSink`] wrapper that injects all three —
//! *deterministically*, from a seed, so every failure a test observes is
//! reproducible.
//!
//! ## Determinism model
//!
//! Each injection decision is a pure function of
//! `(seed, operation kind, blob name, per-blob attempt index)`. The
//! attempt index increments every time the same operation retries the
//! same blob, so:
//!
//! * the fault sequence for a given blob is identical no matter how
//!   rayon schedules the surrounding writes — there is no shared PRNG
//!   stream to race on;
//! * a transient fault at attempt *k* is followed by success at attempt
//!   *k+1* with probability `1 - rate`, so a [`crate::retry::RetrySink`]
//!   with enough attempts almost surely drains any finite fault rate;
//! * re-running the process with the same seed replays the exact same
//!   faults (the basis of the CI `FAULT_SEED` sweep).
//!
//! Telemetry: `io.fault.injected` (total injected events) plus the
//! per-kind counters `io.fault.write_transient`, `io.fault.write_permanent`,
//! `io.fault.read_transient`, and `io.fault.corrupted`.

use crate::checksum::fnv1a64;
use crate::sink::StorageSink;
use crate::IoError;
use drai_telemetry::Registry;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Probabilities (per attempt) for each injected fault class.
///
/// All rates are in `[0, 1]`; the default is all-zero (transparent
/// pass-through), so a `FaultSink` with `FaultConfig::default()` behaves
/// exactly like its inner sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic decision hash.
    pub seed: u64,
    /// Probability a `write_file` attempt fails with a transient error
    /// (retryable, e.g. interrupted) before touching the inner sink.
    pub write_transient: f64,
    /// Probability a `write_file` attempt fails permanently
    /// (non-retryable, e.g. permission denied).
    pub write_permanent: f64,
    /// Probability a `read_file` attempt fails with a transient error.
    pub read_transient: f64,
    /// Probability a successful write silently stores a bit-flipped
    /// copy (detected later by CRC verification, never reported here).
    pub corrupt: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            write_transient: 0.0,
            write_permanent: 0.0,
            read_transient: 0.0,
            corrupt: 0.0,
        }
    }
}

impl FaultConfig {
    /// All-transient config at a single rate — the common knob for the
    /// resilience tests and the `ablation_faults` bench.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            write_transient: rate,
            read_transient: rate,
            ..FaultConfig::default()
        }
    }

    /// Seed from the `FAULT_SEED` environment variable (the CI sweep
    /// hook), falling back to `default` when unset or unparseable.
    pub fn seed_from_env(default: u64) -> u64 {
        std::env::var("FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    }
}

/// Map a 64-bit hash to a uniform float in `[0, 1)`.
fn unit_float(h: u64) -> f64 {
    // splitmix64 finalizer for avalanche, then take the top 53 bits.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A [`StorageSink`] wrapper that deterministically injects faults.
///
/// Wrap any sink (in-memory, local filesystem, or the simulated striped
/// store in `drai-sim`); compose with [`crate::retry::RetrySink`] to
/// exercise the full failure/recovery loop.
pub struct FaultSink<S> {
    inner: S,
    config: FaultConfig,
    /// Per-(operation, blob) attempt indices, so decision hashes advance
    /// only when the *same* operation retries the *same* blob.
    attempts: Mutex<BTreeMap<(u8, String), u64>>,
}

/// Operation tags feeding the decision hash (stable across releases so
/// seeded tests stay reproducible).
const OP_WRITE: u8 = 1;
const OP_READ: u8 = 2;

impl<S: StorageSink> FaultSink<S> {
    /// Wrap `inner` with the given fault profile.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultSink {
            inner,
            config,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the fault state.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Next attempt index for `(op, name)`.
    fn next_attempt(&self, op: u8, name: &str) -> u64 {
        let mut map = self.attempts.lock();
        let n = map.entry((op, name.to_string())).or_insert(0);
        let current = *n;
        *n += 1;
        current
    }

    /// Uniform roll in `[0, 1)` for one decision.
    fn roll(&self, op: u8, kind: u8, name: &str, attempt: u64) -> f64 {
        let mut key = Vec::with_capacity(name.len() + 18);
        key.extend_from_slice(&self.config.seed.to_le_bytes());
        key.push(op);
        key.push(kind);
        key.extend_from_slice(name.as_bytes());
        key.extend_from_slice(&attempt.to_le_bytes());
        unit_float(fnv1a64(&key))
    }

    fn count(kind: &str) {
        let registry = Registry::current();
        registry.counter("io.fault.injected").incr();
        registry.counter(&format!("io.fault.{kind}")).incr();
    }

    fn transient_error(name: &str, op: &str) -> IoError {
        IoError::Os(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected transient {op} fault on {name:?}"),
        ))
    }
}

impl<S: StorageSink> StorageSink for FaultSink<S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError> {
        let attempt = self.next_attempt(OP_WRITE, name);
        if self.roll(OP_WRITE, 0, name, attempt) < self.config.write_permanent {
            Self::count("write_permanent");
            return Err(IoError::Os(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                format!("injected permanent write fault on {name:?}"),
            )));
        }
        if self.roll(OP_WRITE, 1, name, attempt) < self.config.write_transient {
            Self::count("write_transient");
            return Err(Self::transient_error(name, "write"));
        }
        if !data.is_empty() && self.roll(OP_WRITE, 2, name, attempt) < self.config.corrupt {
            Self::count("corrupted");
            let mut damaged = data.to_vec();
            // Deterministic single-bit flip: position and bit from the
            // same decision hash family.
            let pos_roll = self.roll(OP_WRITE, 3, name, attempt);
            let idx = (pos_roll * damaged.len() as f64) as usize % damaged.len();
            let bit = (pos_roll * 8.0) as u32 % 8;
            damaged[idx] ^= 1 << bit;
            return self.inner.write_file(name, &damaged);
        }
        self.inner.write_file(name, data)
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError> {
        let attempt = self.next_attempt(OP_READ, name);
        if self.roll(OP_READ, 0, name, attempt) < self.config.read_transient {
            Self::count("read_transient");
            return Err(Self::transient_error(name, "read"));
        }
        self.inner.read_file(name)
    }

    fn list(&self) -> Result<Vec<String>, IoError> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> Result<(), IoError> {
        self.inner.delete(name)
    }

    // Forward: the default would read the whole blob (and suffer
    // injected read faults), turning a metadata probe into an O(size)
    // operation — see the `StorageSink::exists` contract.
    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    #[test]
    fn zero_rates_are_transparent() {
        let sink = FaultSink::new(MemSink::new(), FaultConfig::default());
        sink.write_file("a", b"payload").unwrap();
        assert_eq!(sink.read_file("a").unwrap(), b"payload");
        assert!(sink.exists("a"));
        assert_eq!(sink.list().unwrap(), vec!["a"]);
        sink.delete("a").unwrap();
        assert!(!sink.exists("a"));
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed| {
            let sink = FaultSink::new(MemSink::new(), FaultConfig::transient(seed, 0.5));
            (0..64)
                .map(|i| sink.write_file(&format!("f{i}"), b"x").is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let failures = run(7).iter().filter(|&&f| f).count();
        assert!(
            (16..=48).contains(&failures),
            "50% rate should fail roughly half: {failures}/64"
        );
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        // With rate < 1 every blob eventually writes: each attempt is an
        // independent deterministic roll.
        let sink = FaultSink::new(MemSink::new(), FaultConfig::transient(3, 0.8));
        for i in 0..16 {
            let name = format!("f{i}");
            let mut attempts = 0;
            while sink.write_file(&name, b"v").is_err() {
                attempts += 1;
                assert!(attempts < 200, "fault never cleared for {name}");
            }
        }
        assert_eq!(sink.inner().file_count(), 16);
    }

    #[test]
    fn transient_errors_classified_transient() {
        let sink = FaultSink::new(MemSink::new(), FaultConfig::transient(1, 1.0));
        let err = sink.write_file("x", b"v").unwrap_err();
        assert!(err.is_transient(), "{err}");
        let cfg = FaultConfig {
            seed: 1,
            write_permanent: 1.0,
            ..FaultConfig::default()
        };
        let sink = FaultSink::new(MemSink::new(), cfg);
        let err = sink.write_file("x", b"v").unwrap_err();
        assert!(!err.is_transient(), "{err}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            seed: 9,
            corrupt: 1.0,
            ..FaultConfig::default()
        };
        let sink = FaultSink::new(MemSink::new(), cfg);
        let payload = vec![0u8; 256];
        sink.write_file("c", &payload).unwrap();
        let stored = sink.inner().read_file("c").unwrap();
        let flipped: u32 = stored
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "expected exactly one flipped bit");
        // Empty writes cannot be corrupted and must not panic.
        sink.write_file("empty", b"").unwrap();
        assert_eq!(sink.inner().read_file("empty").unwrap(), b"");
    }

    #[test]
    fn seed_from_env_parses_and_falls_back() {
        // Avoid set_var races: only exercise the fallback path here; the
        // CI sweep exercises the env-set path for real.
        if std::env::var("FAULT_SEED").is_err() {
            assert_eq!(FaultConfig::seed_from_env(42), 42);
        } else {
            let parsed = FaultConfig::seed_from_env(42);
            let expected: u64 = std::env::var("FAULT_SEED")
                .unwrap()
                .trim()
                .parse()
                .unwrap_or(42);
            assert_eq!(parsed, expected);
        }
    }
}
