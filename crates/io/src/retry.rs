//! Retry with deterministic exponential backoff for [`StorageSink`] ops.
//!
//! A [`RetrySink`] wraps any sink and re-attempts operations that fail
//! with a *transient* error (see [`IoError::is_transient`]), sleeping an
//! exponentially growing, jitter-free delay between attempts. Delays go
//! through an injectable [`RetryClock`], so tests and benches use a
//! [`VirtualClock`] that only *accounts* the backoff instead of really
//! sleeping — the whole resilience test suite runs without a single
//! wall-clock sleep.
//!
//! Telemetry:
//!
//! * `io.retry.attempts` — re-attempts issued after a transient failure;
//! * `io.retry.exhausted` — operations that still failed after the final
//!   attempt (the transient error is returned to the caller);
//! * `io.retry.backoff_ns` — total backoff delay requested, in ns
//!   (virtual or real, depending on the clock).

use crate::sink::StorageSink;
use crate::IoError;
use drai_telemetry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many times to attempt an operation and how long to wait between
/// attempts. Backoff is deterministic (no jitter): retry `i` (0-based)
/// sleeps `base_delay * multiplier^i`, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Exponential growth factor per retry.
    pub multiplier: u32,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 5 attempts, 1 ms → 2 ms → 4 ms → 8 ms, capped at 100 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
            max_delay: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Deterministic delay before retry `retry_index` (0-based).
    pub fn backoff(&self, retry_index: u32) -> Duration {
        let factor = (self.multiplier.max(1) as u64).saturating_pow(retry_index);
        let ns = (self.base_delay.as_nanos() as u64).saturating_mul(factor);
        Duration::from_nanos(ns).min(self.max_delay)
    }
}

/// Sleep provider for backoff delays.
pub trait RetryClock: Send + Sync {
    /// Wait for `d` (or account it, for virtual clocks).
    fn sleep(&self, d: Duration);
}

/// Real wall-clock sleeping via `std::thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl RetryClock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Accounts requested sleeps without blocking — the test/bench clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    slept_ns: AtomicU64,
}

impl VirtualClock {
    /// Fresh clock at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Total virtual ns requested so far.
    pub fn slept_ns(&self) -> u64 {
        self.slept_ns.load(Ordering::Relaxed)
    }
}

impl RetryClock for VirtualClock {
    fn sleep(&self, d: Duration) {
        self.slept_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A [`StorageSink`] wrapper retrying transient failures of the inner
/// sink under a [`RetryPolicy`].
///
/// Permanent errors (anything [`IoError::is_transient`] rejects) pass
/// straight through without retry — retrying a `PermissionDenied` or a
/// checksum mismatch only wastes the I/O budget.
pub struct RetrySink<S> {
    inner: S,
    policy: RetryPolicy,
    clock: Arc<dyn RetryClock>,
}

impl<S: StorageSink> RetrySink<S> {
    /// Wrap `inner` with `policy`, sleeping on the real clock.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self::with_clock(inner, policy, Arc::new(SystemClock))
    }

    /// Wrap `inner` with `policy` and an explicit clock (tests pass a
    /// [`VirtualClock`] so no real time is spent).
    pub fn with_clock(inner: S, policy: RetryPolicy, clock: Arc<dyn RetryClock>) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        RetrySink {
            inner,
            policy,
            clock,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn retrying<T>(&self, mut op: impl FnMut() -> Result<T, IoError>) -> Result<T, IoError> {
        let registry = Registry::current();
        let mut retry_index = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && retry_index + 1 < self.policy.max_attempts => {
                    let delay = self.policy.backoff(retry_index);
                    registry.counter("io.retry.attempts").incr();
                    registry
                        .counter("io.retry.backoff_ns")
                        .add(delay.as_nanos() as u64);
                    self.clock.sleep(delay);
                    retry_index += 1;
                }
                Err(e) => {
                    if e.is_transient() {
                        registry.counter("io.retry.exhausted").incr();
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl<S: StorageSink> StorageSink for RetrySink<S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError> {
        self.retrying(|| self.inner.write_file(name, data))
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError> {
        self.retrying(|| self.inner.read_file(name))
    }

    fn list(&self) -> Result<Vec<String>, IoError> {
        self.retrying(|| self.inner.list())
    }

    fn delete(&self, name: &str) -> Result<(), IoError> {
        self.retrying(|| self.inner.delete(name))
    }

    // Forward: `exists` is a metadata probe; the trait default would
    // read the whole blob on every call (see the trait contract).
    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultSink};
    use crate::sink::MemSink;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(30), Duration::from_millis(100), "capped");
        // Degenerate multiplier stays at base.
        let flat = RetryPolicy { multiplier: 0, ..p };
        assert_eq!(flat.backoff(5), Duration::from_millis(1));
    }

    #[test]
    fn retries_drain_transient_faults_without_sleeping() {
        let clock = VirtualClock::new();
        let faulty = FaultSink::new(MemSink::new(), FaultConfig::transient(11, 0.5));
        // 16 attempts: at a 50% rate each op fails fully with p = 2^-16,
        // so all 128 ops below succeed for any reasonable seed.
        let policy = RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        };
        let sink = RetrySink::with_clock(faulty, policy, clock.clone());
        for i in 0..64 {
            sink.write_file(&format!("f{i}"), b"payload").unwrap();
        }
        assert_eq!(sink.inner().inner().file_count(), 64);
        for i in 0..64 {
            assert_eq!(sink.read_file(&format!("f{i}")).unwrap(), b"payload");
        }
        assert!(clock.slept_ns() > 0, "some attempts should have backed off");
    }

    #[test]
    fn permanent_errors_pass_through_unretried() {
        let cfg = FaultConfig {
            seed: 2,
            write_permanent: 1.0,
            ..FaultConfig::default()
        };
        let faulty = FaultSink::new(MemSink::new(), cfg);
        let clock = VirtualClock::new();
        let sink = RetrySink::with_clock(faulty, RetryPolicy::default(), clock.clone());
        assert!(sink.write_file("x", b"v").is_err());
        assert_eq!(clock.slept_ns(), 0, "permanent errors must not back off");
    }

    #[test]
    fn exhaustion_returns_the_transient_error() {
        let faulty = FaultSink::new(MemSink::new(), FaultConfig::transient(5, 1.0));
        let clock = VirtualClock::new();
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let sink = RetrySink::with_clock(faulty, policy, clock.clone());
        let err = sink.write_file("doomed", b"v").unwrap_err();
        assert!(err.is_transient());
        // 3 attempts → 2 backoffs: 1 ms + 2 ms.
        assert_eq!(clock.slept_ns(), 3_000_000);
    }

    #[test]
    fn exists_skips_read_path() {
        // A rate-1.0 read fault would make the default exists() always
        // false *and* burn retries; the forwarded metadata probe is
        // immune to read faults.
        let faulty = FaultSink::new(MemSink::new(), {
            FaultConfig {
                seed: 3,
                read_transient: 1.0,
                ..FaultConfig::default()
            }
        });
        faulty.inner().write_file("present", b"v").unwrap();
        let sink = RetrySink::with_clock(faulty, RetryPolicy::default(), VirtualClock::new());
        assert!(sink.exists("present"));
        assert!(!sink.exists("absent"));
    }
}
