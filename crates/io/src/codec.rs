//! Compression codecs for shard payloads, implemented from scratch.
//!
//! Scientific float payloads are often close to incompressible, while index,
//! label and quantized data compress well — the codec ablation bench
//! (`ABL-CODEC` in DESIGN.md) measures exactly this trade-off. All codecs
//! are self-framing byte-stream transforms:
//!
//! * [`CodecId::Raw`] — identity (the correct default for dense float data).
//! * [`CodecId::Rle`] — run-length encoding with literal blocks; wins on
//!   masks, one-hot encodings and constant-filled padding.
//! * [`CodecId::Delta`] — fixed-width integer delta + zigzag varint; wins on
//!   monotone timestamps, sorted indices, and slowly varying quantized
//!   signals.
//! * [`CodecId::Lz`] — LZ77 with a hash-chain matcher (LZ4-style greedy
//!   parse, varint-framed tokens); the general-purpose option.
//!
//! The [`bitpack`]/[`bitunpack`] helpers implement the fixed-width bit
//! packing used by GRIB-style "simple packing" in `drai-formats`.

use crate::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use std::fmt;

/// Decompression-bomb guard: `decode` refuses to produce more than this
/// many bytes (1 GiB). A corrupt or malicious stream can otherwise declare
/// a multi-terabyte run/match in a few bytes; shard records are far below
/// this bound in practice.
pub const MAX_DECODED_BYTES: usize = 1 << 30;

/// Errors produced while decoding a compressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Stream ended before the declared content was complete.
    Truncated,
    /// Declared output exceeds [`MAX_DECODED_BYTES`].
    TooLarge {
        /// Bytes the stream tried to produce.
        declared: u64,
    },
    /// A structural invariant was violated (bad tag, bad offset, ...).
    Corrupt(&'static str),
    /// The codec id byte is not recognized.
    UnknownCodec(u8),
    /// Payload length is not a multiple of the configured element width.
    BadElementWidth {
        /// Payload length.
        len: usize,
        /// Configured element width.
        width: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::TooLarge { declared } => write!(
                f,
                "declared output {declared} bytes exceeds decode limit {MAX_DECODED_BYTES}"
            ),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::BadElementWidth { len, width } => {
                write!(
                    f,
                    "payload length {len} not a multiple of element width {width}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Identifies a codec (and its parameters) in shard headers and manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecId {
    /// Identity.
    Raw,
    /// Run-length encoding.
    Rle,
    /// Fixed-width integer delta coding; `width` ∈ {1, 2, 4, 8} bytes.
    Delta {
        /// Element width in bytes.
        width: u8,
    },
    /// LZ77 with hash-chain matching.
    Lz,
}

impl CodecId {
    /// One-byte tag stored on disk. Delta widths get distinct tags.
    pub const fn tag(self) -> u8 {
        match self {
            CodecId::Raw => 0,
            CodecId::Rle => 1,
            CodecId::Delta { width: 1 } => 2,
            CodecId::Delta { width: 2 } => 3,
            CodecId::Delta { width: 4 } => 4,
            CodecId::Delta { width: 8 } => 5,
            CodecId::Delta { .. } => 6, // unreachable by construction
            CodecId::Lz => 7,
        }
    }

    /// Inverse of [`CodecId::tag`].
    pub fn from_tag(tag: u8) -> Result<CodecId, CodecError> {
        Ok(match tag {
            0 => CodecId::Raw,
            1 => CodecId::Rle,
            2 => CodecId::Delta { width: 1 },
            3 => CodecId::Delta { width: 2 },
            4 => CodecId::Delta { width: 4 },
            5 => CodecId::Delta { width: 8 },
            7 => CodecId::Lz,
            other => return Err(CodecError::UnknownCodec(other)),
        })
    }

    /// Human-readable name for manifests and bench labels.
    pub fn name(self) -> String {
        match self {
            CodecId::Raw => "raw".into(),
            CodecId::Rle => "rle".into(),
            CodecId::Delta { width } => format!("delta{width}"),
            CodecId::Lz => "lz".into(),
        }
    }

    /// Parse a manifest name back into a codec id.
    pub fn from_name(name: &str) -> Option<CodecId> {
        match name {
            "raw" => Some(CodecId::Raw),
            "rle" => Some(CodecId::Rle),
            "delta1" => Some(CodecId::Delta { width: 1 }),
            "delta2" => Some(CodecId::Delta { width: 2 }),
            "delta4" => Some(CodecId::Delta { width: 4 }),
            "delta8" => Some(CodecId::Delta { width: 8 }),
            "lz" => Some(CodecId::Lz),
            _ => None,
        }
    }
}

/// Compress/decompress byte payloads. Stateless; safe to share across
/// threads (shard writers encode payloads in parallel with rayon).
pub trait Codec: Send + Sync {
    /// The codec's identity for headers/manifests.
    fn id(&self) -> CodecId;
    /// Compress `data`.
    fn encode(&self, data: &[u8]) -> Vec<u8>;
    /// Decompress `data` (as produced by `encode`).
    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// Construct the codec implementation for an id, instrumented so every
/// encode/decode feeds the telemetry registry current at construction
/// time (the caller's context registry, else the global one):
/// `io.codec.<name>.{encode_ns,decode_ns}` latency histograms and
/// `io.codec.<name>.{bytes_in,bytes_out}` counters (encode direction).
/// Metric handles are resolved once here, so the per-call cost is a
/// clock read and a few relaxed atomics.
pub fn codec_for(id: CodecId) -> Box<dyn Codec> {
    let inner: Box<dyn Codec> = match id {
        CodecId::Raw => Box::new(RawCodec),
        CodecId::Rle => Box::new(RleCodec),
        CodecId::Delta { width } => Box::new(DeltaCodec {
            width: width as usize,
        }),
        CodecId::Lz => Box::new(LzCodec::default()),
    };
    let registry = drai_telemetry::Registry::current();
    let name = id.name();
    Box::new(InstrumentedCodec {
        encode_ns: registry.histogram(&format!("io.codec.{name}.encode_ns")),
        decode_ns: registry.histogram(&format!("io.codec.{name}.decode_ns")),
        bytes_in: registry.counter(&format!("io.codec.{name}.bytes_in")),
        bytes_out: registry.counter(&format!("io.codec.{name}.bytes_out")),
        inner,
    })
}

/// Telemetry-recording wrapper returned by [`codec_for`].
struct InstrumentedCodec {
    inner: Box<dyn Codec>,
    encode_ns: std::sync::Arc<drai_telemetry::Histogram>,
    decode_ns: std::sync::Arc<drai_telemetry::Histogram>,
    bytes_in: std::sync::Arc<drai_telemetry::Counter>,
    bytes_out: std::sync::Arc<drai_telemetry::Counter>,
}

impl Codec for InstrumentedCodec {
    fn id(&self) -> CodecId {
        self.inner.id()
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let start = drai_telemetry::Stopwatch::start();
        let out = self.inner.encode(data);
        self.encode_ns.record(start.elapsed_ns());
        self.bytes_in.add(data.len() as u64);
        self.bytes_out.add(out.len() as u64);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let start = drai_telemetry::Stopwatch::start();
        let out = self.inner.decode(data);
        self.decode_ns.record(start.elapsed_ns());
        out
    }
}

/// Identity codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

impl Codec for RawCodec {
    fn id(&self) -> CodecId {
        CodecId::Raw
    }
    fn encode(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }
    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(data.to_vec())
    }
}

/// Run-length codec. Stream of blocks:
/// `0x00 <varint len> <len literal bytes>` or `0x01 <varint len> <byte>`.
/// Runs shorter than 4 bytes are folded into literal blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

const RLE_MIN_RUN: usize = 4;

impl Codec for RleCodec {
    fn id(&self) -> CodecId {
        CodecId::Rle
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        let mut i = 0;
        let mut lit_start = 0;
        while i < data.len() {
            // Measure the run starting at i.
            let b = data[i];
            let mut j = i + 1;
            while j < data.len() && data[j] == b {
                j += 1;
            }
            let run = j - i;
            if run >= RLE_MIN_RUN {
                if lit_start < i {
                    out.push(0x00);
                    write_uvarint(&mut out, (i - lit_start) as u64);
                    out.extend_from_slice(&data[lit_start..i]);
                }
                out.push(0x01);
                write_uvarint(&mut out, run as u64);
                out.push(b);
                lit_start = j;
            }
            i = j;
        }
        if lit_start < data.len() {
            out.push(0x00);
            write_uvarint(&mut out, (data.len() - lit_start) as u64);
            out.extend_from_slice(&data[lit_start..]);
        }
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut pos = 0;
        while pos < data.len() {
            let tag = data[pos];
            pos += 1;
            let (len, n) = read_uvarint(&data[pos..]).ok_or(CodecError::Truncated)?;
            pos += n;
            let len =
                usize::try_from(len).map_err(|_| CodecError::Corrupt("rle block too large"))?;
            if out.len().saturating_add(len) > MAX_DECODED_BYTES {
                return Err(CodecError::TooLarge {
                    declared: (out.len() + len) as u64,
                });
            }
            match tag {
                0x00 => {
                    if pos + len > data.len() {
                        return Err(CodecError::Truncated);
                    }
                    out.extend_from_slice(&data[pos..pos + len]);
                    pos += len;
                }
                0x01 => {
                    if pos >= data.len() {
                        return Err(CodecError::Truncated);
                    }
                    let b = data[pos];
                    pos += 1;
                    out.resize(out.len() + len, b);
                }
                _ => return Err(CodecError::Corrupt("bad rle block tag")),
            }
        }
        Ok(out)
    }
}

/// Fixed-width delta codec: payload is split into little-endian unsigned
/// integers of `width` bytes, consecutive differences are zigzag+varint
/// coded. The header stores the element count; a trailing partial element
/// (when the payload isn't width-aligned) is rejected at encode time by
/// falling back to raw framing (`tag 0xFF` + bytes).
#[derive(Debug, Clone, Copy)]
pub struct DeltaCodec {
    /// Element width in bytes (1, 2, 4, or 8).
    pub width: usize,
}

impl DeltaCodec {
    fn read_elem(&self, bytes: &[u8]) -> u64 {
        let mut buf = [0u8; 8];
        buf[..self.width].copy_from_slice(&bytes[..self.width]);
        u64::from_le_bytes(buf)
    }

    fn write_elem(&self, out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes()[..self.width]);
    }
}

impl Codec for DeltaCodec {
    fn id(&self) -> CodecId {
        CodecId::Delta {
            width: self.width as u8,
        }
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            matches!(self.width, 1 | 2 | 4 | 8),
            "unsupported delta width"
        );
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        if data.len() % self.width != 0 {
            // Raw fallback framing for non-aligned payloads.
            out.push(0xFF);
            out.extend_from_slice(data);
            return out;
        }
        out.push(0x01);
        let n = data.len() / self.width;
        write_uvarint(&mut out, n as u64);
        let mut prev = 0u64;
        for i in 0..n {
            let v = self.read_elem(&data[i * self.width..]);
            let delta = v.wrapping_sub(prev) as i64;
            write_ivarint(&mut out, delta);
            prev = v;
        }
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (&tag, rest) = data.split_first().ok_or(CodecError::Truncated)?;
        match tag {
            0xFF => Ok(rest.to_vec()),
            0x01 => {
                let (n, consumed) = read_uvarint(rest).ok_or(CodecError::Truncated)?;
                let n = usize::try_from(n).map_err(|_| CodecError::Corrupt("delta count"))?;
                if n.saturating_mul(self.width) > MAX_DECODED_BYTES {
                    return Err(CodecError::TooLarge {
                        declared: (n as u64).saturating_mul(self.width as u64),
                    });
                }
                let mut pos = consumed;
                let mut out = Vec::with_capacity(n * self.width);
                let mut prev = 0u64;
                for _ in 0..n {
                    let (d, used) = read_ivarint(&rest[pos..]).ok_or(CodecError::Truncated)?;
                    pos += used;
                    prev = prev.wrapping_add(d as u64);
                    // Mask to the element width so corrupt wide deltas
                    // cannot smuggle out-of-range values.
                    let masked = if self.width == 8 {
                        prev
                    } else {
                        prev & ((1u64 << (self.width * 8)) - 1)
                    };
                    self.write_elem(&mut out, masked);
                }
                if pos != rest.len() {
                    return Err(CodecError::Corrupt("trailing bytes after delta stream"));
                }
                Ok(out)
            }
            _ => Err(CodecError::Corrupt("bad delta header tag")),
        }
    }
}

/// LZ77 codec with greedy hash-chain matching over a 64 KiB window.
///
/// Token stream: `<varint literal_len> <literals> <varint match_len>
/// <varint offset>` repeated; `match_len == 0` terminates after final
/// literals. Minimum match length 4 (below that a literal is cheaper).
#[derive(Debug, Clone)]
pub struct LzCodec {
    max_chain: usize,
}

impl Default for LzCodec {
    fn default() -> Self {
        LzCodec { max_chain: 32 }
    }
}

const LZ_WINDOW: usize = 1 << 16;
const LZ_MIN_MATCH: usize = 4;
const LZ_HASH_BITS: usize = 15;

impl LzCodec {
    /// Codec with a bounded hash-chain search depth (higher = better ratio,
    /// slower encode).
    pub fn with_chain_depth(max_chain: usize) -> Self {
        LzCodec {
            max_chain: max_chain.max(1),
        }
    }

    #[inline]
    fn hash(window: &[u8]) -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        ((v.wrapping_mul(2654435761) >> (32 - LZ_HASH_BITS)) & ((1 << LZ_HASH_BITS) - 1)) as usize
    }
}

impl Codec for LzCodec {
    fn id(&self) -> CodecId {
        CodecId::Lz
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        if data.len() < LZ_MIN_MATCH {
            write_uvarint(&mut out, data.len() as u64);
            out.extend_from_slice(data);
            write_uvarint(&mut out, 0); // terminator
            return out;
        }
        // head[h] = most recent position with hash h; chain[p % window] =
        // previous position with the same hash.
        let mut head = vec![usize::MAX; 1 << LZ_HASH_BITS];
        let mut chain = vec![usize::MAX; LZ_WINDOW];
        let mut pos = 0;
        let mut lit_start = 0;
        while pos + LZ_MIN_MATCH <= data.len() {
            let h = Self::hash(&data[pos..]);
            let mut cand = head[h];
            let mut best_len = 0;
            let mut best_off = 0;
            let mut depth = 0;
            while cand != usize::MAX && depth < self.max_chain {
                // chain[] slots are recycled modulo the window, so a stale
                // entry can point at or past `pos`; both cases end the chain.
                if cand >= pos || pos - cand > LZ_WINDOW - 1 {
                    break;
                }
                let max_len = data.len() - pos;
                let mut l = 0;
                while l < max_len && data[cand + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = pos - cand;
                    if l >= 255 {
                        break; // long enough; stop searching
                    }
                }
                cand = chain[cand % LZ_WINDOW];
                depth += 1;
            }
            if best_len >= LZ_MIN_MATCH {
                // Emit pending literals + this match.
                write_uvarint(&mut out, (pos - lit_start) as u64);
                out.extend_from_slice(&data[lit_start..pos]);
                write_uvarint(&mut out, best_len as u64);
                write_uvarint(&mut out, best_off as u64);
                // Insert match positions into the dictionary (sparsely for
                // speed: every position for short matches, stride for long).
                let stride = if best_len > 64 { 8 } else { 1 };
                let mut p = pos;
                while p < pos + best_len && p + LZ_MIN_MATCH <= data.len() {
                    let hh = Self::hash(&data[p..]);
                    chain[p % LZ_WINDOW] = head[hh];
                    head[hh] = p;
                    p += stride;
                }
                pos += best_len;
                lit_start = pos;
            } else {
                chain[pos % LZ_WINDOW] = head[h];
                head[h] = pos;
                pos += 1;
            }
        }
        // Final literals + terminator.
        write_uvarint(&mut out, (data.len() - lit_start) as u64);
        out.extend_from_slice(&data[lit_start..]);
        write_uvarint(&mut out, 0);
        out
    }

    fn decode(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut pos = 0;
        loop {
            let (lit_len, n) = read_uvarint(&data[pos..]).ok_or(CodecError::Truncated)?;
            pos += n;
            let lit_len = usize::try_from(lit_len).map_err(|_| CodecError::Corrupt("lit len"))?;
            if out.len().saturating_add(lit_len) > MAX_DECODED_BYTES {
                return Err(CodecError::TooLarge {
                    declared: (out.len() + lit_len) as u64,
                });
            }
            if pos + lit_len > data.len() {
                return Err(CodecError::Truncated);
            }
            out.extend_from_slice(&data[pos..pos + lit_len]);
            pos += lit_len;
            let (match_len, n) = read_uvarint(&data[pos..]).ok_or(CodecError::Truncated)?;
            pos += n;
            if match_len == 0 {
                if pos != data.len() {
                    return Err(CodecError::Corrupt("trailing bytes after lz terminator"));
                }
                return Ok(out);
            }
            let match_len =
                usize::try_from(match_len).map_err(|_| CodecError::Corrupt("match len"))?;
            if out.len().saturating_add(match_len) > MAX_DECODED_BYTES {
                return Err(CodecError::TooLarge {
                    declared: (out.len() + match_len) as u64,
                });
            }
            let (offset, n) = read_uvarint(&data[pos..]).ok_or(CodecError::Truncated)?;
            pos += n;
            let offset = usize::try_from(offset).map_err(|_| CodecError::Corrupt("offset"))?;
            if offset == 0 || offset > out.len() {
                return Err(CodecError::Corrupt("lz offset out of range"));
            }
            // Overlapping copy (offset may be < match_len).
            let start = out.len() - offset;
            for i in 0..match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
}

/// Pack `values` (each < 2^bits) into a dense bit stream, MSB-first within
/// each value, as used by GRIB simple packing. `bits == 0` produces an
/// empty vector (all values implicitly zero).
pub fn bitpack(values: &[u64], bits: u32) -> Vec<u8> {
    assert!(bits <= 64, "bit width must be <= 64");
    if bits == 0 {
        return Vec::new();
    }
    let total_bits = values.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut bitpos = 0usize;
    for &v in values {
        debug_assert!(bits == 64 || v < (1u64 << bits), "value exceeds bit width");
        for k in (0..bits).rev() {
            let bit = (v >> k) & 1;
            if bit != 0 {
                out[bitpos / 8] |= 1 << (7 - bitpos % 8);
            }
            bitpos += 1;
        }
    }
    out
}

/// Inverse of [`bitpack`]: extract `count` values of `bits` width.
pub fn bitunpack(data: &[u8], bits: u32, count: usize) -> Result<Vec<u64>, CodecError> {
    assert!(bits <= 64, "bit width must be <= 64");
    if bits == 0 {
        return Ok(vec![0; count]);
    }
    let needed = (count * bits as usize).div_ceil(8);
    if data.len() < needed {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut v = 0u64;
        for _ in 0..bits {
            let bit = (data[bitpos / 8] >> (7 - bitpos % 8)) & 1;
            v = (v << 1) | bit as u64;
            bitpos += 1;
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(id: CodecId, data: &[u8]) {
        let c = codec_for(id);
        let enc = c.encode(data);
        let dec = c
            .decode(&enc)
            .unwrap_or_else(|e| panic!("{id:?} decode: {e}"));
        assert_eq!(dec, data, "{id:?} round trip failed");
    }

    #[test]
    fn all_codecs_round_trip_basic() {
        let samples: Vec<Vec<u8>> = vec![
            vec![],
            vec![42],
            b"hello hello hello hello".to_vec(),
            vec![0; 1000],
            (0..=255u8).cycle().take(4096).collect(),
            b"abcabcabcabcabcabcXYZabcabcabc".to_vec(),
        ];
        for data in &samples {
            for id in [
                CodecId::Raw,
                CodecId::Rle,
                CodecId::Delta { width: 1 },
                CodecId::Lz,
            ] {
                round_trip(id, data);
            }
        }
    }

    #[test]
    fn delta_round_trips_all_widths() {
        let vals: Vec<u64> = (0..500).map(|i| 1_000_000 + i * 3).collect();
        for width in [1usize, 2, 4, 8] {
            let mut bytes = Vec::new();
            for &v in &vals {
                bytes.extend_from_slice(&v.to_le_bytes()[..width]);
            }
            round_trip(CodecId::Delta { width: width as u8 }, &bytes);
        }
    }

    #[test]
    fn delta_compresses_monotone_timestamps() {
        let mut bytes = Vec::new();
        for i in 0..10_000u64 {
            bytes.extend_from_slice(&(1_700_000_000_000 + i * 20).to_le_bytes());
        }
        let c = DeltaCodec { width: 8 };
        let enc = c.encode(&bytes);
        assert!(
            enc.len() < bytes.len() / 4,
            "delta should compress timestamps 4x+: {} -> {}",
            bytes.len(),
            enc.len()
        );
    }

    #[test]
    fn delta_handles_unaligned_payload() {
        let c = DeltaCodec { width: 4 };
        let data = [1u8, 2, 3, 4, 5]; // 5 bytes, not /4
        let enc = c.encode(&data);
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle_compresses_constant_data() {
        let data = vec![7u8; 100_000];
        let enc = RleCodec.encode(&data);
        assert!(enc.len() < 16, "rle of constant run: {} bytes", enc.len());
        assert_eq!(RleCodec.decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle_short_runs_stay_literal() {
        let data = b"aabbccdd";
        let enc = RleCodec.encode(data);
        // One literal block: tag + len + data.
        assert_eq!(enc.len(), data.len() + 2);
    }

    #[test]
    fn lz_compresses_repetitive_text() {
        let data: Vec<u8> = b"scientific data readiness "
            .iter()
            .copied()
            .cycle()
            .take(50_000)
            .collect();
        let c = LzCodec::default();
        let enc = c.encode(&data);
        assert!(
            enc.len() < data.len() / 10,
            "lz ratio too poor: {} -> {}",
            data.len(),
            enc.len()
        );
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn lz_overlapping_match() {
        // "aaaa..." forces offset-1 overlapping copies.
        let data = vec![b'a'; 1000];
        let c = LzCodec::default();
        let enc = c.encode(&data);
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn lz_rejects_bad_offset() {
        let mut enc = Vec::new();
        write_uvarint(&mut enc, 1);
        enc.push(b'x');
        write_uvarint(&mut enc, 4); // match len
        write_uvarint(&mut enc, 9); // offset > produced
        assert_eq!(
            LzCodec::default().decode(&enc),
            Err(CodecError::Corrupt("lz offset out of range"))
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let data = b"hello world hello world hello world".to_vec();
        for id in [CodecId::Rle, CodecId::Delta { width: 1 }, CodecId::Lz] {
            let c = codec_for(id);
            let enc = c.encode(&data);
            for cut in [1, enc.len() / 2, enc.len() - 1] {
                // Truncated streams must error, never panic. (Some cuts can
                // coincidentally decode for RLE literal blocks; corruption
                // end-to-end is caught by shard CRCs, so only require
                // no-panic + usually-error here.)
                let _ = c.decode(&enc[..cut]);
            }
        }
    }

    #[test]
    fn decompression_bombs_rejected() {
        // A few bytes declaring gigantic outputs must error fast instead
        // of allocating. RLE: run of 2^40 copies of one byte.
        let mut rle = vec![0x01];
        write_uvarint(&mut rle, 1u64 << 40);
        rle.push(0xAB);
        assert!(matches!(
            RleCodec.decode(&rle),
            Err(CodecError::TooLarge { .. })
        ));
        // Delta: count of 2^40 8-byte elements.
        let mut delta = vec![0x01];
        write_uvarint(&mut delta, 1u64 << 40);
        assert!(matches!(
            DeltaCodec { width: 8 }.decode(&delta),
            Err(CodecError::TooLarge { .. })
        ));
        // LZ: one literal, then a 2^40-byte match.
        let mut lz = Vec::new();
        write_uvarint(&mut lz, 1);
        lz.push(b'x');
        write_uvarint(&mut lz, 1u64 << 40);
        write_uvarint(&mut lz, 1);
        assert!(matches!(
            LzCodec::default().decode(&lz),
            Err(CodecError::TooLarge { .. })
        ));
        // LZ: huge literal length.
        let mut lz2 = Vec::new();
        write_uvarint(&mut lz2, 1u64 << 40);
        assert!(matches!(
            LzCodec::default().decode(&lz2),
            Err(CodecError::TooLarge { .. })
        ));
    }

    #[test]
    fn codec_tag_round_trip() {
        for id in [
            CodecId::Raw,
            CodecId::Rle,
            CodecId::Delta { width: 1 },
            CodecId::Delta { width: 2 },
            CodecId::Delta { width: 4 },
            CodecId::Delta { width: 8 },
            CodecId::Lz,
        ] {
            assert_eq!(CodecId::from_tag(id.tag()).unwrap(), id);
            assert_eq!(CodecId::from_name(&id.name()), Some(id));
        }
        assert!(CodecId::from_tag(200).is_err());
        assert_eq!(CodecId::from_name("zstd"), None);
    }

    #[test]
    fn bitpack_round_trip() {
        for bits in [1u32, 3, 7, 8, 12, 16, 24, 33, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let vals: Vec<u64> = (0..100u64).map(|i| (i * 2_654_435_761) & mask).collect();
            let packed = bitpack(&vals, bits);
            assert_eq!(packed.len(), (vals.len() * bits as usize).div_ceil(8));
            let unpacked = bitunpack(&packed, bits, vals.len()).unwrap();
            assert_eq!(unpacked, vals, "bits={bits}");
        }
    }

    #[test]
    fn bitpack_zero_bits() {
        let vals = vec![0u64; 10];
        let packed = bitpack(&vals, 0);
        assert!(packed.is_empty());
        assert_eq!(bitunpack(&packed, 0, 10).unwrap(), vals);
    }

    #[test]
    fn bitunpack_truncated() {
        let packed = bitpack(&[1, 2, 3], 8);
        assert_eq!(bitunpack(&packed, 8, 4), Err(CodecError::Truncated));
    }
}
