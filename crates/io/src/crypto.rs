//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The bio/health archetype's "secure sharding" encrypts shard payloads at
//! rest inside the enclave boundary. ChaCha20 is the standard choice for
//! fast software encryption on HPC nodes without AES hardware dependence.
//! This implementation is verified against the RFC 8439 §2.3.2/§2.4.2 test
//! vectors.
//!
//! Scope note: this provides *confidentiality only* (no authentication
//! tag). drai shards already carry CRC-32C integrity framing against
//! accidental corruption; a deployment needing tamper resistance would add
//! Poly1305. Key management is the caller's concern — the domain pipeline
//! derives per-dataset keys from an operator secret and records only the
//! key *identifier* in provenance, never the key.

/// A 256-bit key.
pub type Key = [u8; 32];
/// A 96-bit nonce.
pub type Nonce = [u8; 12];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 block.
fn block(key: &Key, nonce: &Nonce, counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646E;
    state[2] = 0x7962_2D32;
    state[3] = 0x6B20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` with the ChaCha20 keystream in place. Encryption and
/// decryption are the same operation. `initial_counter` is normally 0
/// (RFC 8439 uses 1 when a Poly1305 key block precedes the data).
pub fn chacha20_xor(key: &Key, nonce: &Nonce, initial_counter: u32, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, nonce, initial_counter.wrapping_add(i as u32));
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: encrypt a copy.
pub fn chacha20_encrypt(key: &Key, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    chacha20_xor(key, nonce, 0, &mut out);
    out
}

/// Derive a 256-bit key from an operator passphrase and a context label
/// (dataset name). Uses iterated content-hash stretching — adequate for
/// deriving distinct per-dataset keys from a strong secret; not a
/// password-hardening KDF for weak passwords.
pub fn derive_key(secret: &str, context: &str) -> Key {
    let mut material = Vec::with_capacity(secret.len() + context.len() + 1);
    material.extend_from_slice(secret.as_bytes());
    material.push(0x1F);
    material.extend_from_slice(context.as_bytes());
    let mut acc = [0u8; 32];
    let mut h = crate::checksum::content_hash128(&material);
    for round in 0..64u8 {
        let mut buf = Vec::with_capacity(material.len() + 17);
        buf.extend_from_slice(&h);
        buf.push(round);
        buf.extend_from_slice(&material);
        h = crate::checksum::content_hash128(&buf);
        for (i, &b) in h.iter().enumerate() {
            acc[(round as usize * 16 + i) % 32] ^= b;
        }
    }
    acc
}

/// A short, non-secret identifier for a key (safe for provenance logs).
pub fn key_id(key: &Key) -> String {
    crate::checksum::hash_hex(&crate::checksum::content_hash128(key)[..4])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2: key stream block test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: Key = core::array::from_fn(|i| i as u8);
        let nonce: Nonce = [0, 0, 0, 9, 0, 0, 0, 0x4A, 0, 0, 0, 0];
        let out = block(&key, &nonce, 1);
        let expected: [u8; 64] = [
            0x10, 0xF1, 0xE7, 0xE4, 0xD1, 0x3B, 0x59, 0x15, 0x50, 0x0F, 0xDD, 0x1F, 0xA3, 0x20,
            0x71, 0xC4, 0xC7, 0xD1, 0xF4, 0xC7, 0x33, 0xC0, 0x68, 0x03, 0x04, 0x22, 0xAA, 0x9A,
            0xC3, 0xD4, 0x6C, 0x4E, 0xD2, 0x82, 0x64, 0x46, 0x07, 0x9F, 0xAA, 0x09, 0x14, 0xC2,
            0xD7, 0x05, 0xD9, 0x8B, 0x02, 0xA2, 0xB5, 0x12, 0x9C, 0xD1, 0xDE, 0x16, 0x4E, 0xB9,
            0xCB, 0xD0, 0x83, 0xE8, 0xA2, 0x50, 0x3C, 0x4E,
        ];
        assert_eq!(out, expected);
    }

    /// RFC 8439 §2.4.2: full encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: Key = core::array::from_fn(|i| i as u8);
        let nonce: Nonce = [0, 0, 0, 0, 0, 0, 0, 0x4A, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        let expected_prefix: [u8; 16] = [
            0x6E, 0x2E, 0x35, 0x9A, 0x25, 0x68, 0xF9, 0x80, 0x41, 0xBA, 0x07, 0x28, 0xDD, 0x0D,
            0x69, 0x81,
        ];
        assert_eq!(&data[..16], &expected_prefix);
        let expected_tail: [u8; 8] = [0x8E, 0xED, 0xF2, 0x78, 0x5E, 0x42, 0x87, 0x4D];
        assert_eq!(&data[data.len() - 8..], &expected_tail);
        // Decrypt restores.
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = derive_key("operator secret", "dataset-x");
        let nonce: Nonce = [7; 12];
        for n in [0usize, 1, 63, 64, 65, 1000, 4096] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let enc = chacha20_encrypt(&key, &nonce, &data);
            assert_eq!(enc.len(), n);
            if n > 16 {
                assert_ne!(enc, data, "n={n}: ciphertext equals plaintext");
            }
            let mut dec = enc;
            chacha20_xor(&key, &nonce, 0, &mut dec);
            assert_eq!(dec, data, "n={n}");
        }
    }

    #[test]
    fn different_keys_and_nonces_differ() {
        let data = vec![0u8; 256];
        let k1 = derive_key("s", "a");
        let k2 = derive_key("s", "b");
        let k3 = derive_key("t", "a");
        let n1: Nonce = [1; 12];
        let n2: Nonce = [2; 12];
        let c1 = chacha20_encrypt(&k1, &n1, &data);
        assert_ne!(c1, chacha20_encrypt(&k2, &n1, &data));
        assert_ne!(c1, chacha20_encrypt(&k3, &n1, &data));
        assert_ne!(c1, chacha20_encrypt(&k1, &n2, &data));
    }

    #[test]
    fn derive_key_deterministic() {
        assert_eq!(derive_key("s", "ctx"), derive_key("s", "ctx"));
        assert_ne!(derive_key("s", "ctx"), derive_key("s", "ctx2"));
        let id = key_id(&derive_key("s", "ctx"));
        assert_eq!(id.len(), 8);
        assert_eq!(id, key_id(&derive_key("s", "ctx")));
    }

    #[test]
    fn keystream_is_balanced() {
        // Sanity: ~half the bits of a long keystream are set.
        let key = derive_key("k", "c");
        let nonce: Nonce = [3; 12];
        let mut zeros = vec![0u8; 1 << 16];
        chacha20_xor(&key, &nonce, 0, &mut zeros);
        let ones: u32 = zeros.iter().map(|b| b.count_ones()).sum();
        let total = (zeros.len() * 8) as f64;
        let frac = ones as f64 / total;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
