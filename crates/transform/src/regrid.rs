//! Spatial regridding for lat-lon fields — the climate archetype's
//! signature transform (`download → regrid → normalize → shard`).
//!
//! Two schemes, matching what real pipelines use:
//!
//! * [`bilinear`] — smooth interpolation of cell-center values; the choice
//!   for state fields (temperature, pressure) in ClimaX/Pangu-Weather.
//! * [`conservative`] — first-order area-weighted remapping that exactly
//!   preserves the global area integral; required for flux-like fields
//!   (precipitation) where physical conservation matters (§2.2's "adherence
//!   to physical constraints").

use crate::TransformError;
use drai_tensor::LatLonGrid;

fn check_field(grid: &LatLonGrid, field: &[f64]) -> Result<(), TransformError> {
    if field.len() != grid.ncells() {
        return Err(TransformError::ShapeMismatch {
            expected: format!("{} cells ({}x{})", grid.ncells(), grid.nlat(), grid.nlon()),
            got: format!("{}", field.len()),
        });
    }
    Ok(())
}

/// Bilinear interpolation from `src` grid to `dst` grid.
///
/// Longitude wraps periodically; latitude clamps at the poles. NaN source
/// cells poison only the destination cells that interpolate from them.
pub fn bilinear(
    src_grid: &LatLonGrid,
    src: &[f64],
    dst_grid: &LatLonGrid,
) -> Result<Vec<f64>, TransformError> {
    check_field(src_grid, src)?;
    let (snlat, snlon) = (src_grid.nlat(), src_grid.nlon());
    let mut out = Vec::with_capacity(dst_grid.ncells());
    for di in 0..dst_grid.nlat() {
        let lat = dst_grid.lat_center(di);
        // Fractional row index in source cell-center space.
        let fi = (lat + 90.0) / src_grid.dlat() - 0.5;
        let i0 = fi.floor();
        let ti = fi - i0;
        let i0 = i0 as isize;
        let (i0c, i1c) = (
            i0.clamp(0, snlat as isize - 1) as usize,
            (i0 + 1).clamp(0, snlat as isize - 1) as usize,
        );
        for dj in 0..dst_grid.nlon() {
            let lon = dst_grid.lon_center(dj);
            let fj = lon / src_grid.dlon() - 0.5;
            let j0 = fj.floor();
            let tj = fj - j0;
            let j0 = j0 as isize;
            // Periodic wrap in longitude.
            let j0w = j0.rem_euclid(snlon as isize) as usize;
            let j1w = (j0 + 1).rem_euclid(snlon as isize) as usize;

            let v00 = src[i0c * snlon + j0w];
            let v01 = src[i0c * snlon + j1w];
            let v10 = src[i1c * snlon + j0w];
            let v11 = src[i1c * snlon + j1w];
            let top = v00 * (1.0 - tj) + v01 * tj;
            let bot = v10 * (1.0 - tj) + v11 * tj;
            out.push(top * (1.0 - ti) + bot * ti);
        }
    }
    Ok(out)
}

/// First-order conservative remapping.
///
/// Each destination cell's value is the area-weighted average of the
/// source cells overlapping it, so the global area-weighted integral is
/// preserved exactly (up to floating point). NaN source cells are treated
/// as missing: they contribute no area, and a destination cell whose
/// overlap is entirely missing becomes NaN.
pub fn conservative(
    src_grid: &LatLonGrid,
    src: &[f64],
    dst_grid: &LatLonGrid,
) -> Result<Vec<f64>, TransformError> {
    check_field(src_grid, src)?;
    let (snlat, snlon) = (src_grid.nlat(), src_grid.nlon());
    let mut out = Vec::with_capacity(dst_grid.ncells());

    // Precompute 1D overlaps: lat overlaps give sin-weighted fractions,
    // lon overlaps plain length fractions (the spherical area element
    // factorizes as dλ · d(sin φ)).
    let lat_overlaps: Vec<Vec<(usize, f64)>> = (0..dst_grid.nlat())
        .map(|di| {
            let (ds, dn) = dst_grid.lat_bounds(di);
            let mut row = Vec::new();
            // Source rows possibly overlapping.
            let first = (((ds + 90.0) / src_grid.dlat()).floor() as isize).max(0) as usize;
            let last =
                ((((dn + 90.0) / src_grid.dlat()).ceil() as isize).min(snlat as isize)) as usize;
            for si in first..last {
                let (ss, sn) = src_grid.lat_bounds(si);
                let lo = ds.max(ss);
                let hi = dn.min(sn);
                if hi > lo {
                    let w = hi.to_radians().sin() - lo.to_radians().sin();
                    row.push((si, w));
                }
            }
            row
        })
        .collect();

    let lon_overlaps: Vec<Vec<(usize, f64)>> = (0..dst_grid.nlon())
        .map(|dj| {
            let (dw, de) = dst_grid.lon_bounds(dj);
            let mut row = Vec::new();
            let first = ((dw / src_grid.dlon()).floor() as isize).max(0) as usize;
            let last = (((de / src_grid.dlon()).ceil() as isize).min(snlon as isize)) as usize;
            for sj in first..last {
                let (sw, se) = src_grid.lon_bounds(sj);
                let lo = dw.max(sw);
                let hi = de.min(se);
                if hi > lo {
                    row.push((sj, hi - lo));
                }
            }
            row
        })
        .collect();

    for lat_row in &lat_overlaps {
        for lon_row in &lon_overlaps {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(si, wi) in lat_row {
                for &(sj, wj) in lon_row {
                    let v = src[si * snlon + sj];
                    if v.is_nan() {
                        continue;
                    }
                    let w = wi * wj;
                    num += w * v;
                    den += w;
                }
            }
            out.push(if den > 0.0 { num / den } else { f64::NAN });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(grid: &LatLonGrid) -> Vec<f64> {
        (0..grid.nlat())
            .flat_map(|i| {
                (0..grid.nlon()).map(move |j| (i as f64 * 0.3).sin() + (j as f64 * 0.2).cos())
            })
            .collect()
    }

    #[test]
    fn bilinear_preserves_constant() {
        let src = LatLonGrid::global(16, 32);
        let dst = LatLonGrid::global(11, 23);
        let field = vec![42.0; src.ncells()];
        let out = bilinear(&src, &field, &dst).unwrap();
        assert!(out.iter().all(|&v| (v - 42.0).abs() < 1e-12));
    }

    #[test]
    fn bilinear_identity_on_same_grid() {
        let g = LatLonGrid::global(8, 16);
        let field = smooth_field(&g);
        let out = bilinear(&g, &field, &g).unwrap();
        for (a, b) in out.iter().zip(&field) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_downsample_reasonable() {
        // Smooth field downsampled then upsampled should roughly match.
        let fine = LatLonGrid::global(32, 64);
        let coarse = LatLonGrid::global(16, 32);
        let field: Vec<f64> = (0..fine.ncells())
            .map(|k| {
                let i = k / 64;
                let j = k % 64;
                (i as f64 / 32.0 * std::f64::consts::PI).sin()
                    * (j as f64 / 64.0 * 2.0 * std::f64::consts::PI).cos()
            })
            .collect();
        let down = bilinear(&fine, &field, &coarse).unwrap();
        let up = bilinear(&coarse, &down, &fine).unwrap();
        let rms: f64 = (field
            .iter()
            .zip(&up)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / field.len() as f64)
            .sqrt();
        assert!(rms < 0.05, "round-trip rms {rms}");
    }

    #[test]
    fn conservative_preserves_global_integral() {
        let src = LatLonGrid::global(24, 48);
        let dst = LatLonGrid::global(8, 16); // exact 3x coarsening
        let field = smooth_field(&src);
        let out = conservative(&src, &field, &dst).unwrap();
        let src_mean = src.area_weighted_mean(&field).unwrap();
        let dst_mean = dst.area_weighted_mean(&out).unwrap();
        assert!(
            (src_mean - dst_mean).abs() < 1e-10,
            "integral drift: {src_mean} vs {dst_mean}"
        );
    }

    #[test]
    fn conservative_nonmultiple_grids_still_conserve() {
        let src = LatLonGrid::global(18, 36);
        let dst = LatLonGrid::global(7, 13);
        let field = smooth_field(&src);
        let out = conservative(&src, &field, &dst).unwrap();
        let src_mean = src.area_weighted_mean(&field).unwrap();
        let dst_mean = dst.area_weighted_mean(&out).unwrap();
        assert!(
            (src_mean - dst_mean).abs() < 1e-9,
            "integral drift: {src_mean} vs {dst_mean}"
        );
    }

    #[test]
    fn conservative_constant_field() {
        let src = LatLonGrid::global(10, 20);
        let dst = LatLonGrid::global(3, 7);
        let field = vec![7.5; src.ncells()];
        let out = conservative(&src, &field, &dst).unwrap();
        assert!(out.iter().all(|&v| (v - 7.5).abs() < 1e-12));
    }

    #[test]
    fn conservative_handles_missing() {
        let src = LatLonGrid::global(4, 4);
        let dst = LatLonGrid::global(2, 2);
        let mut field = vec![1.0; 16];
        // Poison one source cell; its destination cell still averages the
        // remaining overlap.
        field[0] = f64::NAN;
        let out = conservative(&src, &field, &dst).unwrap();
        assert!(out.iter().all(|v| !v.is_nan()));
        assert!((out[0] - 1.0).abs() < 1e-12);
        // All-NaN source → NaN destination.
        let all_nan = vec![f64::NAN; 16];
        let out2 = conservative(&src, &all_nan, &dst).unwrap();
        assert!(out2.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = LatLonGrid::global(4, 4);
        let dst = LatLonGrid::global(2, 2);
        assert!(bilinear(&src, &[1.0; 5], &dst).is_err());
        assert!(conservative(&src, &[1.0; 5], &dst).is_err());
    }

    #[test]
    fn bilinear_wraps_longitude() {
        // Field with a sharp feature at the dateline; interpolating near
        // lon=0 must see both sides.
        let src = LatLonGrid::global(4, 8);
        let mut field = vec![0.0; src.ncells()];
        for i in 0..4 {
            field[i * 8] = 1.0; // first column
            field[i * 8 + 7] = 1.0; // last column
        }
        // Destination with twice the lon resolution: cells between the
        // last and first source columns should interpolate to 1.0.
        let dst = LatLonGrid::global(4, 16);
        let out = bilinear(&src, &field, &dst).unwrap();
        // dst lon index 0 has center 11.25°, between src centers 337.5°
        // (j=7) and 22.5° (j=0) — both 1.0.
        assert!((out[0] - 1.0).abs() < 1e-12, "wrap failed: {}", out[0]);
    }
}
