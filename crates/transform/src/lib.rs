//! # drai-transform
//!
//! The preprocessing kernels behind the paper's Figure 1 — every step that
//! moves a dataset from *raw* toward *AI-ready*:
//!
//! * [`normalize`] — z-score / min-max / robust scaling with streaming fit
//!   (the "normalize by mean and standard deviation" step).
//! * [`impute`] — missing-value handling: mean/median/constant fill,
//!   forward fill, linear interpolation.
//! * [`encode`] — one-hot and vocabulary encoding for categorical and
//!   sequence data (Enformer-style DNA tiles).
//! * [`augment`] — grid rotations/flips, jitter noise, mixup-style
//!   synthesis for sample-starved datasets.
//! * [`regrid`] — bilinear and first-order conservative lat-lon regridding
//!   (the climate `regrid` stage).
//! * [`align`] — multirate time-series resampling to a common clock and
//!   fixed-window slicing (the fusion `align` stage).
//! * [`features`] — finite-difference derivatives, rolling statistics, and
//!   radix-2 FFT spectral features (physics-informed feature engineering).
//! * [`label`] — threshold labeling and iterative pseudo-labeling with a
//!   confidence gate (semi-supervised readiness).
//! * [`anonymize`] — PHI/PII transforms: salted hashing, suppression,
//!   generalization, date shifting, and a k-anonymity checker.
//! * [`split`] — deterministic hash-based train/val/test partitioning.
//! * [`units`] — unit registry and conversions ("ensure consistent units").

#![forbid(unsafe_code)]

pub mod align;
pub mod anonymize;
pub mod augment;
pub mod encode;
pub mod features;
pub mod impute;
pub mod label;
pub mod normalize;
pub mod regrid;
pub mod split;
pub mod units;

/// Errors from preprocessing kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// Input does not satisfy a kernel precondition.
    InvalidInput(String),
    /// A fitted transform was applied to incompatible data.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was provided.
        got: String,
    },
    /// Statistics could not be fitted (e.g. empty or all-NaN input).
    CannotFit(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            TransformError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TransformError::CannotFit(msg) => write!(f, "cannot fit: {msg}"),
        }
    }
}

impl std::error::Error for TransformError {}
