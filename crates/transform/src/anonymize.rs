//! PHI/PII anonymization for the bio/health archetype.
//!
//! HIPAA-style de-identification before data leaves the enclave:
//!
//! * [`hash_identifier`] — salted one-way hashing of direct identifiers
//!   (MRN, name) preserving joinability without reversibility.
//! * [`generalize_age`] / [`generalize_zip`] — coarsening of
//!   quasi-identifiers per Safe-Harbor-style rules.
//! * [`shift_dates`] — per-patient constant date shifting, preserving
//!   intervals (the property longitudinal models need).
//! * [`k_anonymity`] — verifies that every quasi-identifier combination is
//!   shared by at least `k` records.
//! * [`scan_for_identifiers`] — a PHI scanner used as a release gate.

use crate::TransformError;
use drai_io::checksum::{content_hash128, hash_hex};
use std::collections::BTreeMap;

/// Salted, one-way identifier pseudonymization. The same `(salt, id)` pair
/// always yields the same pseudonym so records remain linkable across
/// tables; without the salt the mapping is not recoverable by dictionary
/// attack on typical id spaces.
pub fn hash_identifier(salt: &str, identifier: &str) -> String {
    let mut buf = Vec::with_capacity(salt.len() + identifier.len() + 1);
    buf.extend_from_slice(salt.as_bytes());
    buf.push(0x1F); // domain separator
    buf.extend_from_slice(identifier.as_bytes());
    hash_hex(&content_hash128(&buf))
}

/// Generalize an age to a `width`-year band label ("40-49"); ages ≥ 90
/// collapse into "90+" (Safe Harbor rule).
pub fn generalize_age(age: u32, width: u32) -> String {
    assert!(width > 0, "band width must be positive");
    if age >= 90 {
        return "90+".to_string();
    }
    let lo = (age / width) * width;
    format!("{lo}-{}", lo + width - 1)
}

/// Truncate a ZIP code to its first 3 digits (Safe Harbor); ZIPs shorter
/// than 3 digits become "000".
pub fn generalize_zip(zip: &str) -> String {
    let digits: String = zip.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() < 3 {
        "000".to_string()
    } else {
        format!("{}**", &digits[..3])
    }
}

/// Per-patient date shifting: derive a deterministic shift in
/// `[-max_shift_days, max_shift_days]` from the (salted) patient id and
/// add it to every date. Intervals *within* a patient are preserved
/// exactly; absolute dates are not recoverable without the salt.
pub fn date_shift_days(salt: &str, patient_id: &str, max_shift_days: u32) -> i64 {
    assert!(max_shift_days > 0, "shift range must be positive");
    let h = content_hash128(hash_identifier(salt, patient_id).as_bytes());
    let raw = u64::from_le_bytes([h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]]);
    let span = (2 * max_shift_days + 1) as u64;
    (raw % span) as i64 - max_shift_days as i64
}

/// Apply a patient's date shift to a day-number timestamp.
pub fn shift_dates(days: &mut [i64], shift: i64) {
    for d in days {
        *d += shift;
    }
}

/// k-anonymity report for a set of records' quasi-identifier tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KAnonymityReport {
    /// The smallest equivalence-class size observed (usize::MAX when no
    /// records).
    pub min_class_size: usize,
    /// Number of distinct quasi-identifier combinations.
    pub class_count: usize,
    /// Combinations violating the requested k, with their sizes.
    pub violations: Vec<(Vec<String>, usize)>,
}

impl KAnonymityReport {
    /// True when every class has at least `k` members.
    pub fn satisfies(&self, k: usize) -> bool {
        self.violations.is_empty() && (self.class_count == 0 || self.min_class_size >= k)
    }
}

/// Check k-anonymity over rows of quasi-identifiers.
pub fn k_anonymity(rows: &[Vec<String>], k: usize) -> Result<KAnonymityReport, TransformError> {
    if k == 0 {
        return Err(TransformError::InvalidInput("k must be >= 1".into()));
    }
    let mut classes: BTreeMap<&[String], usize> = BTreeMap::new();
    for row in rows {
        *classes.entry(row.as_slice()).or_insert(0) += 1;
    }
    let min_class_size = classes.values().copied().min().unwrap_or(usize::MAX);
    let violations = classes
        .iter()
        .filter(|(_, &n)| n < k)
        .map(|(row, &n)| (row.to_vec(), n))
        .collect();
    Ok(KAnonymityReport {
        min_class_size,
        class_count: classes.len(),
        violations,
    })
}

/// Suppress (replace with `"*"`) the rarest quasi-identifier rows until
/// the remainder satisfies k-anonymity. Returns the number of rows
/// suppressed. A blunt but standard last-resort operator.
pub fn suppress_to_k(rows: &mut [Vec<String>], k: usize) -> Result<usize, TransformError> {
    let report = k_anonymity(rows, k)?;
    let bad: std::collections::BTreeSet<Vec<String>> =
        report.violations.into_iter().map(|(row, _)| row).collect();
    let mut suppressed = 0;
    for row in rows.iter_mut() {
        if bad.contains(row) {
            for field in row.iter_mut() {
                *field = "*".to_string();
            }
            suppressed += 1;
        }
    }
    Ok(suppressed)
}

/// Identifier patterns found by [`scan_for_identifiers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentifierKind {
    /// US Social Security Number pattern (ddd-dd-dddd).
    Ssn,
    /// Email address.
    Email,
    /// 10-digit phone number (with common separators).
    Phone,
    /// Medical record number marker ("MRN" followed by digits).
    Mrn,
}

/// Scan free text for identifier patterns — the release-gate audit the
/// secure-sharding step runs before anything leaves the enclave.
pub fn scan_for_identifiers(text: &str) -> Vec<(IdentifierKind, String)> {
    let mut hits = Vec::new();
    let bytes = text.as_bytes();
    let is_digit = |i: usize| i < bytes.len() && bytes[i].is_ascii_digit();

    // SSN: \d{3}-\d{2}-\d{4} with non-digit boundaries.
    for i in 0..bytes.len().saturating_sub(10) {
        if i > 0 && is_digit(i - 1) {
            continue;
        }
        if is_digit(i)
            && is_digit(i + 1)
            && is_digit(i + 2)
            && bytes[i + 3] == b'-'
            && is_digit(i + 4)
            && is_digit(i + 5)
            && bytes[i + 6] == b'-'
            && is_digit(i + 7)
            && is_digit(i + 8)
            && is_digit(i + 9)
            && is_digit(i + 10)
            && !is_digit(i + 11)
        {
            hits.push((IdentifierKind::Ssn, text[i..i + 11].to_string()));
        }
    }

    // Email: token '@' token '.' token over a conservative charset.
    let emailish = |c: u8| c.is_ascii_alphanumeric() || matches!(c, b'.' | b'_' | b'-' | b'+');
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'@' {
            continue;
        }
        let mut s = i;
        while s > 0 && emailish(bytes[s - 1]) {
            s -= 1;
        }
        let mut e = i + 1;
        while e < bytes.len() && (emailish(bytes[e])) {
            e += 1;
        }
        let local_ok = s < i;
        let domain = &text[i + 1..e];
        if local_ok && domain.contains('.') && !domain.starts_with('.') && !domain.ends_with('.') {
            hits.push((IdentifierKind::Email, text[s..e].to_string()));
        }
    }

    // Phone: 10 digits with -, space, (, ) or . separators.
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() || bytes[i] == b'(' {
            let mut digits = 0;
            let mut j = i;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || matches!(bytes[j], b'-' | b' ' | b'(' | b')' | b'.'))
            {
                if bytes[j].is_ascii_digit() {
                    digits += 1;
                }
                if digits > 10 {
                    break;
                }
                j += 1;
            }
            // Trim trailing separators.
            let mut end = j;
            while end > i && !bytes[end - 1].is_ascii_digit() {
                end -= 1;
            }
            let has_sep = text[i..end].chars().any(|c| !c.is_ascii_digit());
            if digits == 10 && has_sep && end > i {
                hits.push((IdentifierKind::Phone, text[i..end].to_string()));
                i = end;
                continue;
            }
        }
        i += 1;
    }

    // MRN marker.
    let upper = text.to_ascii_uppercase();
    let mut at = 0;
    while let Some(pos) = upper[at..].find("MRN") {
        let start = at + pos;
        let rest = &bytes[start + 3..];
        let mut k = 0;
        while k < rest.len() && matches!(rest[k], b' ' | b':' | b'#') {
            k += 1;
        }
        let dstart = k;
        while k < rest.len() && rest[k].is_ascii_digit() {
            k += 1;
        }
        if k > dstart {
            hits.push((IdentifierKind::Mrn, text[start..start + 3 + k].to_string()));
        }
        at = start + 3;
    }

    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_salted() {
        let a = hash_identifier("salt1", "patient-42");
        let b = hash_identifier("salt1", "patient-42");
        let c = hash_identifier("salt2", "patient-42");
        let d = hash_identifier("salt1", "patient-43");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 32); // 128-bit hex
        assert!(!a.contains("patient"));
    }

    #[test]
    fn age_bands() {
        assert_eq!(generalize_age(0, 10), "0-9");
        assert_eq!(generalize_age(42, 10), "40-49");
        assert_eq!(generalize_age(49, 10), "40-49");
        assert_eq!(generalize_age(89, 10), "80-89");
        assert_eq!(generalize_age(90, 10), "90+");
        assert_eq!(generalize_age(104, 10), "90+");
        assert_eq!(generalize_age(42, 5), "40-44");
    }

    #[test]
    fn zip_truncation() {
        assert_eq!(generalize_zip("37830"), "378**");
        assert_eq!(generalize_zip("37830-1234"), "378**");
        assert_eq!(generalize_zip("12"), "000");
        assert_eq!(generalize_zip("abc"), "000");
    }

    #[test]
    fn date_shift_preserves_intervals() {
        let shift = date_shift_days("s", "p1", 180);
        assert!((-180..=180).contains(&shift));
        let mut days = vec![1000, 1010, 1100];
        shift_dates(&mut days, shift);
        assert_eq!(days[1] - days[0], 10);
        assert_eq!(days[2] - days[0], 100);
        // Deterministic per patient, different across patients (probabilistic
        // but overwhelmingly likely over a few ids).
        assert_eq!(shift, date_shift_days("s", "p1", 180));
        let distinct = (0..20)
            .map(|i| date_shift_days("s", &format!("p{i}"), 180))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn k_anonymity_detects_violation() {
        let rows = vec![
            vec!["40-49".to_string(), "378**".to_string()],
            vec!["40-49".to_string(), "378**".to_string()],
            vec!["90+".to_string(), "000".to_string()], // unique!
        ];
        let report = k_anonymity(&rows, 2).unwrap();
        assert_eq!(report.class_count, 2);
        assert_eq!(report.min_class_size, 1);
        assert!(!report.satisfies(2));
        assert!(k_anonymity(&rows, 1).unwrap().satisfies(1));
        assert_eq!(report.violations.len(), 1);
        assert!(k_anonymity(&rows, 0).is_err());
    }

    #[test]
    fn k_anonymity_empty_ok() {
        let report = k_anonymity(&[], 5).unwrap();
        assert!(report.satisfies(5));
    }

    #[test]
    fn suppression_restores_k() {
        let mut rows = vec![
            vec!["a".to_string()],
            vec!["a".to_string()],
            vec!["a".to_string()],
            vec!["b".to_string()],
        ];
        let n = suppress_to_k(&mut rows, 2).unwrap();
        assert_eq!(n, 1);
        assert_eq!(rows[3], vec!["*".to_string()]);
        // After suppression the "*" row is its own (possibly small) class,
        // but the identifying values are gone; re-check on non-suppressed.
        let survivors: Vec<_> = rows.iter().filter(|r| r[0] != "*").cloned().collect();
        assert!(k_anonymity(&survivors, 2).unwrap().satisfies(2));
    }

    #[test]
    fn scanner_finds_ssn_email_phone_mrn() {
        let text = "Contact jane.doe+x@ornl.gov or 865-555-1234. \
                    SSN 123-45-6789, MRN: 0042371.";
        let hits = scan_for_identifiers(text);
        let kinds: Vec<IdentifierKind> = hits.iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&IdentifierKind::Email), "{hits:?}");
        assert!(kinds.contains(&IdentifierKind::Phone), "{hits:?}");
        assert!(kinds.contains(&IdentifierKind::Ssn), "{hits:?}");
        assert!(kinds.contains(&IdentifierKind::Mrn), "{hits:?}");
        let email = hits
            .iter()
            .find(|(k, _)| *k == IdentifierKind::Email)
            .unwrap();
        assert_eq!(email.1, "jane.doe+x@ornl.gov");
    }

    #[test]
    fn scanner_clean_text() {
        let text = "plasma current reached 1.2 MA at t=3.5s in shot 176042";
        assert!(
            scan_for_identifiers(text).is_empty(),
            "{:?}",
            scan_for_identifiers(text)
        );
    }

    #[test]
    fn scanner_avoids_false_ssn_inside_longer_number() {
        let text = "serial 9123-45-67890 is fine";
        let hits = scan_for_identifiers(text);
        assert!(
            !hits.iter().any(|(k, _)| *k == IdentifierKind::Ssn),
            "{hits:?}"
        );
    }
}
