//! Normalization: the universal preprocessing step ("normalizing by mean
//! and standard deviation", Fig. 1).
//!
//! Statistics are fitted in a single streaming pass (Welford / P²) so they
//! scale to shard-at-a-time reduction; `fit_parallel` merges per-chunk
//! accumulators the way a rayon/MPI reduction would.

use crate::TransformError;
use drai_tensor::stats::{P2Quantile, Welford};

/// Normalization method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `(x - mean) / std`.
    ZScore,
    /// `(x - min) / (max - min)` into [0, 1].
    MinMax,
    /// `(x - median) / IQR` — resistant to the outliers sensor glitches
    /// leave in experimental (fusion) data.
    Robust,
}

/// A fitted, reusable normalizer for one variable.
///
/// Fitting and application are separate so statistics computed on the
/// training split can be applied to validation/test (avoiding leakage) and
/// recorded in provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    method: Method,
    /// Offset subtracted from values (mean / min / median).
    pub offset: f64,
    /// Scale divided out (std / range / IQR).
    pub scale: f64,
}

impl Normalizer {
    /// Fit on a stream of values (NaNs skipped).
    pub fn fit(method: Method, values: &[f64]) -> Result<Normalizer, TransformError> {
        match method {
            Method::ZScore | Method::MinMax => {
                let mut w = Welford::new();
                w.extend(values);
                Self::from_welford(method, &w)
            }
            Method::Robust => {
                let mut q25 = P2Quantile::new(0.25);
                let mut q50 = P2Quantile::new(0.5);
                let mut q75 = P2Quantile::new(0.75);
                for &v in values {
                    q25.push(v);
                    q50.push(v);
                    q75.push(v);
                }
                let median = q50
                    .estimate()
                    .ok_or_else(|| TransformError::CannotFit("no finite values".into()))?;
                let iqr = q75.estimate().unwrap_or(median) - q25.estimate().unwrap_or(median);
                Ok(Normalizer {
                    method,
                    offset: median,
                    scale: if iqr.abs() < f64::EPSILON { 1.0 } else { iqr },
                })
            }
        }
    }

    /// Build from an already-reduced Welford accumulator (the parallel
    /// path: fit per shard, merge, then construct once).
    pub fn from_welford(method: Method, w: &Welford) -> Result<Normalizer, TransformError> {
        if w.count() == 0 {
            return Err(TransformError::CannotFit("no finite values".into()));
        }
        match method {
            Method::ZScore => {
                let std = w.std();
                Ok(Normalizer {
                    method,
                    offset: w.mean(),
                    scale: if std < f64::EPSILON { 1.0 } else { std },
                })
            }
            Method::MinMax => {
                let range = w.max() - w.min();
                Ok(Normalizer {
                    method,
                    offset: w.min(),
                    scale: if range < f64::EPSILON { 1.0 } else { range },
                })
            }
            Method::Robust => Err(TransformError::InvalidInput(
                "robust fit needs quantiles, not moments".into(),
            )),
        }
    }

    /// Fit on chunks as a parallel reduction (ZScore/MinMax only).
    pub fn fit_parallel(method: Method, chunks: &[&[f64]]) -> Result<Normalizer, TransformError> {
        let merged = chunks
            .iter()
            .map(|c| {
                let mut w = Welford::new();
                w.extend(c);
                w
            })
            .fold(Welford::new(), |a, b| a.merge(&b));
        Self::from_welford(method, &merged)
    }

    /// The method this normalizer was fitted with.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Reconstruct from previously fitted statistics — the
    /// deserialization path for caches and provenance replays that
    /// persist `(method, offset, scale)` and must rebuild the exact
    /// normalizer without refitting.
    pub fn from_parts(method: Method, offset: f64, scale: f64) -> Normalizer {
        Normalizer {
            method,
            offset,
            scale,
        }
    }

    /// Apply to one value (NaN passes through for later imputation).
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        (x - self.offset) / self.scale
    }

    /// Apply in place to a slice.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Invert (for writing model outputs back in physical units).
    #[inline]
    pub fn invert(&self, y: f64) -> f64 {
        y * self.scale + self.offset
    }
}

/// Per-variable normalizers for multivariate data laid out `[n, nvars]`
/// row-major — the shape climate/fusion feature matrices take before
/// sharding.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnNormalizer {
    normalizers: Vec<Normalizer>,
}

impl ColumnNormalizer {
    /// Fit one normalizer per column.
    pub fn fit(
        method: Method,
        data: &[f64],
        ncols: usize,
    ) -> Result<ColumnNormalizer, TransformError> {
        if ncols == 0 || data.len() % ncols != 0 {
            return Err(TransformError::InvalidInput(format!(
                "{} values not divisible into {ncols} columns",
                data.len()
            )));
        }
        let mut normalizers = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let col: Vec<f64> = data.iter().skip(c).step_by(ncols).copied().collect();
            normalizers.push(Normalizer::fit(method, &col)?);
        }
        Ok(ColumnNormalizer { normalizers })
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.normalizers.len()
    }

    /// Per-column normalizers.
    pub fn columns(&self) -> &[Normalizer] {
        &self.normalizers
    }

    /// Apply in place to `[n, ncols]` row-major data.
    pub fn apply(&self, data: &mut [f64]) -> Result<(), TransformError> {
        let ncols = self.normalizers.len();
        if data.len() % ncols != 0 {
            return Err(TransformError::ShapeMismatch {
                expected: format!("multiple of {ncols}"),
                got: format!("{}", data.len()),
            });
        }
        for row in data.chunks_mut(ncols) {
            for (x, n) in row.iter_mut().zip(&self.normalizers) {
                *x = n.apply(*x);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 12.0 + 7.0)
            .collect()
    }

    #[test]
    fn from_parts_round_trips_fitted_stats() {
        let data = sample();
        let fitted = Normalizer::fit(Method::ZScore, &data).unwrap();
        let rebuilt = Normalizer::from_parts(fitted.method(), fitted.offset, fitted.scale);
        assert_eq!(fitted, rebuilt);
        assert_eq!(fitted.apply(3.25), rebuilt.apply(3.25));
    }

    #[test]
    fn zscore_yields_zero_mean_unit_std() {
        let data = sample();
        let n = Normalizer::fit(Method::ZScore, &data).unwrap();
        let out: Vec<f64> = data.iter().map(|&x| n.apply(x)).collect();
        let mut w = Welford::new();
        w.extend(&out);
        assert!(w.mean().abs() < 1e-10);
        assert!((w.std() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn minmax_yields_unit_interval() {
        let data = sample();
        let n = Normalizer::fit(Method::MinMax, &data).unwrap();
        let out: Vec<f64> = data.iter().map(|&x| n.apply(x)).collect();
        let lo = out.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((lo - 0.0).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn robust_centers_on_median() {
        let mut data = sample();
        data.push(1e9); // extreme outlier
        let n = Normalizer::fit(Method::Robust, &data).unwrap();
        // Median of the sine data is ~7; the outlier must not drag offset.
        assert!((n.offset - 7.0).abs() < 1.0, "offset {}", n.offset);
    }

    #[test]
    fn invert_round_trips() {
        let data = sample();
        for method in [Method::ZScore, Method::MinMax, Method::Robust] {
            let n = Normalizer::fit(method, &data).unwrap();
            for &x in data.iter().take(50) {
                assert!((n.invert(n.apply(x)) - x).abs() < 1e-9, "{method:?}");
            }
        }
    }

    #[test]
    fn constant_input_does_not_divide_by_zero() {
        let data = vec![5.0; 100];
        for method in [Method::ZScore, Method::MinMax, Method::Robust] {
            let n = Normalizer::fit(method, &data).unwrap();
            let y = n.apply(5.0);
            assert!(y.is_finite(), "{method:?} gave {y}");
            assert_eq!(y, 0.0);
        }
    }

    #[test]
    fn nan_skipped_in_fit_passes_through_apply() {
        let mut data = sample();
        data[10] = f64::NAN;
        let n = Normalizer::fit(Method::ZScore, &data).unwrap();
        assert!(n.apply(f64::NAN).is_nan());
        assert!(n.apply(7.0).is_finite());
    }

    #[test]
    fn all_nan_cannot_fit() {
        let data = vec![f64::NAN; 10];
        assert!(matches!(
            Normalizer::fit(Method::ZScore, &data),
            Err(TransformError::CannotFit(_))
        ));
        assert!(Normalizer::fit(Method::Robust, &data).is_err());
        assert!(Normalizer::fit(Method::MinMax, &[]).is_err());
    }

    #[test]
    fn parallel_fit_matches_sequential() {
        let data = sample();
        let seq = Normalizer::fit(Method::ZScore, &data).unwrap();
        let (a, rest) = data.split_at(333);
        let (b, c) = rest.split_at(333);
        let par = Normalizer::fit_parallel(Method::ZScore, &[a, b, c]).unwrap();
        assert!((par.offset - seq.offset).abs() < 1e-10);
        assert!((par.scale - seq.scale).abs() < 1e-10);
    }

    #[test]
    fn column_normalizer_per_variable() {
        // Two columns with very different ranges.
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(i as f64); // col 0: 0..100
            data.push(i as f64 * 1000.0 + 5.0); // col 1: huge scale
        }
        let cn = ColumnNormalizer::fit(Method::ZScore, &data, 2).unwrap();
        assert_eq!(cn.ncols(), 2);
        let mut out = data.clone();
        cn.apply(&mut out).unwrap();
        // Each column independently standardized.
        for c in 0..2 {
            let col: Vec<f64> = out.iter().skip(c).step_by(2).copied().collect();
            let mut w = Welford::new();
            w.extend(&col);
            assert!(w.mean().abs() < 1e-9, "col {c}");
            assert!((w.std() - 1.0).abs() < 1e-9, "col {c}");
        }
    }

    #[test]
    fn column_normalizer_shape_checks() {
        assert!(ColumnNormalizer::fit(Method::ZScore, &[1.0, 2.0, 3.0], 2).is_err());
        assert!(ColumnNormalizer::fit(Method::ZScore, &[1.0, 2.0], 0).is_err());
        let cn = ColumnNormalizer::fit(Method::ZScore, &[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        let mut bad = vec![1.0; 3];
        assert!(cn.apply(&mut bad).is_err());
    }

    #[test]
    fn apply_slice_in_place() {
        let n = Normalizer {
            method: Method::ZScore,
            offset: 10.0,
            scale: 2.0,
        };
        let mut xs = vec![10.0, 12.0, 8.0];
        n.apply_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 1.0, -1.0]);
    }
}
