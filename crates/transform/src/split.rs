//! Deterministic train/validation/test splitting (the step before
//! sharding in Fig. 1).
//!
//! Splits are assigned by hashing a stable per-sample key (shot id, file
//! name, patient pseudonym) rather than by position, so: (1) re-running
//! the pipeline on a superset of the data keeps old samples in their old
//! splits, and (2) group integrity can be enforced — all windows of one
//! fusion shot, or all records of one patient, land in the same split
//! (preventing leakage across splits).

use crate::TransformError;
use drai_io::checksum::fnv1a64;

/// Which split a sample landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training set.
    Train,
    /// Validation set.
    Validation,
    /// Held-out test set.
    Test,
}

impl Split {
    /// Conventional directory/prefix name.
    pub fn name(self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Validation => "val",
            Split::Test => "test",
        }
    }
}

/// Split fractions; must sum to 1 (±1e-9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fractions {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub validation: f64,
    /// Test fraction.
    pub test: f64,
}

impl Fractions {
    /// The common 80/10/10.
    pub fn standard() -> Fractions {
        Fractions {
            train: 0.8,
            validation: 0.1,
            test: 0.1,
        }
    }

    /// Validate non-negativity and unit sum.
    pub fn validate(&self) -> Result<(), TransformError> {
        let vals = [self.train, self.validation, self.test];
        if vals.iter().any(|v| *v < 0.0) {
            return Err(TransformError::InvalidInput("negative fraction".into()));
        }
        let sum: f64 = vals.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(TransformError::InvalidInput(format!(
                "fractions sum to {sum}, expected 1"
            )));
        }
        Ok(())
    }
}

/// Assign a split from a stable key. `seed` lets different experiments
/// draw independent splits from the same keys.
pub fn assign(key: &str, seed: u64, fractions: Fractions) -> Result<Split, TransformError> {
    fractions.validate()?;
    let mut buf = Vec::with_capacity(key.len() + 8);
    buf.extend_from_slice(&seed.to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    // FNV-1a mixes low bits well but its high bits barely change across
    // short, similar keys ("shot-1", "shot-2", ...); finish with a
    // splitmix64 avalanche before taking the top 53 bits.
    let mut h = fnv1a64(&buf);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    // Map to [0, 1) with 53-bit precision.
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    Ok(if u < fractions.train {
        Split::Train
    } else if u < fractions.train + fractions.validation {
        Split::Validation
    } else {
        Split::Test
    })
}

/// The three partitions produced by [`partition`], in
/// (train, validation, test) order.
pub type Partitioned<T> = (Vec<T>, Vec<T>, Vec<T>);

/// Partition `(key, payload)` pairs into the three splits, preserving
/// input order within each split.
pub fn partition<T>(
    items: Vec<(String, T)>,
    seed: u64,
    fractions: Fractions,
) -> Result<Partitioned<T>, TransformError> {
    fractions.validate()?;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    for (key, payload) in items {
        match assign(&key, seed, fractions)? {
            Split::Train => train.push(payload),
            Split::Validation => val.push(payload),
            Split::Test => test.push(payload),
        }
    }
    Ok((train, val, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let f = Fractions::standard();
        for key in ["shot-176042", "patient-7", "file-x.nc"] {
            assert_eq!(assign(key, 1, f).unwrap(), assign(key, 1, f).unwrap());
        }
    }

    #[test]
    fn fractions_approximately_respected() {
        let f = Fractions::standard();
        let mut counts: HashMap<Split, usize> = HashMap::new();
        let n = 20_000;
        for i in 0..n {
            *counts
                .entry(assign(&format!("key-{i}"), 7, f).unwrap())
                .or_insert(0) += 1;
        }
        let frac = |s: Split| counts[&s] as f64 / n as f64;
        assert!(
            (frac(Split::Train) - 0.8).abs() < 0.02,
            "{}",
            frac(Split::Train)
        );
        assert!((frac(Split::Validation) - 0.1).abs() < 0.02);
        assert!((frac(Split::Test) - 0.1).abs() < 0.02);
    }

    #[test]
    fn different_seeds_differ() {
        let f = Fractions::standard();
        let n = 1000;
        let moved = (0..n)
            .filter(|i| {
                let k = format!("k{i}");
                assign(&k, 1, f).unwrap() != assign(&k, 2, f).unwrap()
            })
            .count();
        // ~2 * 0.2 * 0.8 + ... of keys should change split; require some.
        assert!(moved > n / 10, "only {moved} moved");
    }

    #[test]
    fn group_integrity_by_shared_key() {
        // All windows of a shot share its key → same split.
        let f = Fractions::standard();
        let shot_key = "shot-9";
        let s0 = assign(shot_key, 3, f).unwrap();
        for _window in 0..50 {
            assert_eq!(assign(shot_key, 3, f).unwrap(), s0);
        }
    }

    #[test]
    fn stability_under_superset() {
        // Adding new keys never moves existing keys.
        let f = Fractions::standard();
        let original: Vec<(String, Split)> = (0..500)
            .map(|i| {
                let k = format!("sample-{i}");
                let s = assign(&k, 11, f).unwrap();
                (k, s)
            })
            .collect();
        // "Ingest" 500 more samples, then re-check the originals.
        for i in 500..1000 {
            let _ = assign(&format!("sample-{i}"), 11, f).unwrap();
        }
        for (k, s) in original {
            assert_eq!(assign(&k, 11, f).unwrap(), s);
        }
    }

    #[test]
    fn partition_splits_payloads() {
        let items: Vec<(String, usize)> = (0..3000).map(|i| (format!("k{i}"), i)).collect();
        let (train, val, test) = partition(items, 5, Fractions::standard()).unwrap();
        assert_eq!(train.len() + val.len() + test.len(), 3000);
        assert!(train.len() > 2000);
        assert!(!val.is_empty());
        assert!(!test.is_empty());
        // Disjointness: payloads are unique indices.
        let mut all: Vec<usize> = train.into_iter().chain(val).chain(test).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3000);
    }

    #[test]
    fn bad_fractions_rejected() {
        let bad = Fractions {
            train: 0.9,
            validation: 0.2,
            test: 0.1,
        };
        assert!(assign("x", 0, bad).is_err());
        let neg = Fractions {
            train: 1.2,
            validation: -0.1,
            test: -0.1,
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn degenerate_all_train() {
        let f = Fractions {
            train: 1.0,
            validation: 0.0,
            test: 0.0,
        };
        for i in 0..100 {
            assert_eq!(assign(&format!("k{i}"), 0, f).unwrap(), Split::Train);
        }
    }

    #[test]
    fn split_names() {
        assert_eq!(Split::Train.name(), "train");
        assert_eq!(Split::Validation.name(), "val");
        assert_eq!(Split::Test.name(), "test");
    }
}
