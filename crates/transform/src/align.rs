//! Time-series alignment for the fusion archetype
//! (`extract → align → normalize → shard`).
//!
//! Tokamak diagnostics sample at wildly different rates (magnetics at
//! 100 kHz, Thomson scattering at 100 Hz) with independent clocks and
//! drop-outs. Training windows need every channel on one uniform clock:
//! [`resample_to_clock`] linearly interpolates irregular samples onto a
//! uniform grid, and [`window`] slices the aligned matrix into fixed-length
//! training windows (the "slices high-rate sensor streams into fixed time
//! windows" step of the DIII-D pipeline).

use crate::TransformError;

/// An irregularly sampled channel: `(timestamps, values)`, timestamps
/// strictly increasing, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Channel name (diagnostic id).
    pub name: String,
    /// Sample times (seconds), strictly increasing.
    pub times: Vec<f64>,
    /// Sample values, same length as `times`.
    pub values: Vec<f64>,
}

impl Channel {
    /// Validate monotonicity and length agreement.
    pub fn validate(&self) -> Result<(), TransformError> {
        if self.times.len() != self.values.len() {
            return Err(TransformError::InvalidInput(format!(
                "{}: {} times vs {} values",
                self.name,
                self.times.len(),
                self.values.len()
            )));
        }
        if self.times.windows(2).any(|w| w[1] <= w[0]) {
            return Err(TransformError::InvalidInput(format!(
                "{}: timestamps not strictly increasing",
                self.name
            )));
        }
        Ok(())
    }

    /// Native mean sample rate in Hz (None for < 2 samples).
    pub fn mean_rate(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let span = self.times[self.times.len() - 1] - self.times[0];
        if span <= 0.0 {
            return None;
        }
        Some((self.times.len() - 1) as f64 / span)
    }
}

/// A uniform clock: `t_k = start + k / rate_hz` for `k
/// = 0..len`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// First tick time (seconds).
    pub start: f64,
    /// Tick rate in Hz.
    pub rate_hz: f64,
    /// Number of ticks.
    pub len: usize,
}

impl Clock {
    /// Build a clock covering `[start, end]` at `rate_hz`.
    pub fn covering(start: f64, end: f64, rate_hz: f64) -> Result<Clock, TransformError> {
        if rate_hz.is_nan() || rate_hz <= 0.0 || end < start {
            return Err(TransformError::InvalidInput(format!(
                "bad clock: [{start}, {end}] at {rate_hz} Hz"
            )));
        }
        let len = ((end - start) * rate_hz).floor() as usize + 1;
        Ok(Clock {
            start,
            rate_hz,
            len,
        })
    }

    /// Time of tick `k`.
    pub fn tick(&self, k: usize) -> f64 {
        self.start + k as f64 / self.rate_hz
    }

    /// All tick times.
    pub fn times(&self) -> Vec<f64> {
        (0..self.len).map(|k| self.tick(k)).collect()
    }
}

/// Resample one channel onto a uniform clock by linear interpolation.
/// Ticks outside the channel's time span become NaN (to be imputed or
/// masked downstream — extrapolating plasma diagnostics fabricates data).
pub fn resample_to_clock(channel: &Channel, clock: &Clock) -> Result<Vec<f64>, TransformError> {
    channel.validate()?;
    let times = &channel.times;
    let values = &channel.values;
    let mut out = Vec::with_capacity(clock.len);
    let mut seg = 0usize; // invariant: times[seg] <= t target when advanced
    for k in 0..clock.len {
        let t = clock.tick(k);
        if times.is_empty() || t < times[0] || t > times[times.len() - 1] {
            out.push(f64::NAN);
            continue;
        }
        while seg + 1 < times.len() && times[seg + 1] < t {
            seg += 1;
        }
        if t <= times[seg] {
            out.push(values[seg]);
        } else {
            let (t0, t1) = (times[seg], times[seg + 1]);
            let (v0, v1) = (values[seg], values[seg + 1]);
            let frac = (t - t0) / (t1 - t0);
            out.push(v0 + (v1 - v0) * frac);
        }
    }
    Ok(out)
}

/// Align multiple channels onto one clock, producing a row-major
/// `[clock.len, channels.len]` matrix plus the channel order.
pub fn align_channels(
    channels: &[Channel],
    clock: &Clock,
) -> Result<(Vec<f64>, Vec<String>), TransformError> {
    if channels.is_empty() {
        return Err(TransformError::InvalidInput("no channels".into()));
    }
    let per_channel: Vec<Vec<f64>> = channels
        .iter()
        .map(|c| resample_to_clock(c, clock))
        .collect::<Result<_, _>>()?;
    let nch = channels.len();
    let mut matrix = vec![0.0; clock.len * nch];
    for (c, col) in per_channel.iter().enumerate() {
        for (t, &v) in col.iter().enumerate() {
            matrix[t * nch + c] = v;
        }
    }
    Ok((matrix, channels.iter().map(|c| c.name.clone()).collect()))
}

/// Slice an aligned `[ntime, nch]` matrix into fixed windows of
/// `window_len` ticks advancing by `stride` ticks. Windows containing any
/// NaN are dropped when `drop_incomplete` (sparse fusion data: better to
/// lose a window than train on fabricated samples).
pub fn window(
    matrix: &[f64],
    nch: usize,
    window_len: usize,
    stride: usize,
    drop_incomplete: bool,
) -> Result<Vec<Vec<f64>>, TransformError> {
    if nch == 0 || window_len == 0 || stride == 0 {
        return Err(TransformError::InvalidInput(
            "nch, window_len, stride must be positive".into(),
        ));
    }
    if matrix.len() % nch != 0 {
        return Err(TransformError::ShapeMismatch {
            expected: format!("multiple of {nch}"),
            got: format!("{}", matrix.len()),
        });
    }
    let ntime = matrix.len() / nch;
    let mut out = Vec::new();
    let mut start = 0;
    while start + window_len <= ntime {
        let slice = &matrix[start * nch..(start + window_len) * nch];
        if !(drop_incomplete && slice.iter().any(|v| v.is_nan())) {
            out.push(slice.to_vec());
        }
        start += stride;
    }
    Ok(out)
}

/// Interpolate a 1D profile from one mesh onto another — the "regridding
/// or interpolation across incompatible meshes (as in IMAS and XGC1)"
/// step of §3.2. `src_x` must be strictly increasing; destination points
/// outside the source span become NaN (no extrapolation of plasma
/// profiles).
pub fn resample_profile(
    src_x: &[f64],
    src_y: &[f64],
    dst_x: &[f64],
) -> Result<Vec<f64>, TransformError> {
    if src_x.len() != src_y.len() {
        return Err(TransformError::InvalidInput(format!(
            "profile: {} knots vs {} values",
            src_x.len(),
            src_y.len()
        )));
    }
    if src_x.windows(2).any(|w| w[1] <= w[0]) {
        return Err(TransformError::InvalidInput(
            "profile mesh not strictly increasing".into(),
        ));
    }
    let mut out = Vec::with_capacity(dst_x.len());
    for &x in dst_x {
        if src_x.is_empty() || x < src_x[0] || x > src_x[src_x.len() - 1] {
            out.push(f64::NAN);
            continue;
        }
        // Binary search for the containing segment.
        let seg = match src_x.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => {
                out.push(src_y[i]);
                continue;
            }
            Err(i) => i - 1, // x > src_x[0] guaranteed above
        };
        let (x0, x1) = (src_x[seg], src_x[seg + 1]);
        let t = (x - x0) / (x1 - x0);
        out.push(src_y[seg] + (src_y[seg + 1] - src_y[seg]) * t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_channel(name: &str, rate: f64, span: f64) -> Channel {
        // value(t) = 10 t, sampled at `rate`.
        let n = (span * rate) as usize + 1;
        let times: Vec<f64> = (0..n).map(|i| i as f64 / rate).collect();
        let values: Vec<f64> = times.iter().map(|&t| 10.0 * t).collect();
        Channel {
            name: name.into(),
            times,
            values,
        }
    }

    #[test]
    fn clock_covering() {
        let c = Clock::covering(0.0, 1.0, 10.0).unwrap();
        assert_eq!(c.len, 11);
        assert_eq!(c.tick(0), 0.0);
        assert!((c.tick(10) - 1.0).abs() < 1e-12);
        assert!(Clock::covering(1.0, 0.0, 10.0).is_err());
        assert!(Clock::covering(0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn resample_linear_is_exact_on_linear_signal() {
        let ch = ramp_channel("ip", 7.0, 2.0);
        let clock = Clock::covering(0.0, 2.0, 13.0).unwrap();
        let out = resample_to_clock(&ch, &clock).unwrap();
        for (k, &v) in out.iter().enumerate() {
            let t = clock.tick(k);
            if t <= 2.0 {
                assert!((v - 10.0 * t).abs() < 1e-9, "tick {k}");
            }
        }
    }

    #[test]
    fn out_of_span_ticks_are_nan() {
        let ch = Channel {
            name: "te".into(),
            times: vec![1.0, 2.0],
            values: vec![5.0, 6.0],
        };
        let clock = Clock::covering(0.0, 3.0, 1.0).unwrap(); // ticks 0,1,2,3
        let out = resample_to_clock(&ch, &clock).unwrap();
        assert!(out[0].is_nan());
        assert_eq!(out[1], 5.0);
        assert_eq!(out[2], 6.0);
        assert!(out[3].is_nan());
    }

    #[test]
    fn multirate_alignment() {
        let fast = ramp_channel("fast", 100.0, 1.0);
        let slow = ramp_channel("slow", 3.0, 1.0);
        let clock = Clock::covering(0.0, 1.0, 10.0).unwrap();
        let (matrix, names) = align_channels(&[fast, slow], &clock).unwrap();
        assert_eq!(names, vec!["fast", "slow"]);
        assert_eq!(matrix.len(), clock.len * 2);
        // Both channels represent the same ramp — aligned values agree.
        for t in 0..clock.len {
            let a = matrix[t * 2];
            let b = matrix[t * 2 + 1];
            assert!((a - b).abs() < 1e-9, "tick {t}: {a} vs {b}");
        }
    }

    #[test]
    fn validation_errors() {
        let bad_len = Channel {
            name: "x".into(),
            times: vec![0.0, 1.0],
            values: vec![1.0],
        };
        assert!(bad_len.validate().is_err());
        let non_monotone = Channel {
            name: "x".into(),
            times: vec![0.0, 1.0, 1.0],
            values: vec![1.0; 3],
        };
        assert!(non_monotone.validate().is_err());
        assert!(align_channels(&[], &Clock::covering(0.0, 1.0, 1.0).unwrap()).is_err());
    }

    #[test]
    fn windows_basic() {
        // 10 ticks, 2 channels, values = tick index.
        let nch = 2;
        let matrix: Vec<f64> = (0..10).flat_map(|t| [t as f64, t as f64]).collect();
        let w = window(&matrix, nch, 4, 2, true).unwrap();
        assert_eq!(w.len(), 4); // starts 0,2,4,6
        assert_eq!(w[0][0], 0.0);
        assert_eq!(w[1][0], 2.0);
        assert_eq!(w[0].len(), 4 * nch);
    }

    #[test]
    fn windows_drop_nan() {
        let nch = 1;
        let mut matrix: Vec<f64> = (0..10).map(|t| t as f64).collect();
        matrix[5] = f64::NAN;
        let kept = window(&matrix, nch, 3, 1, true).unwrap();
        // Starts 0..=7; windows covering index 5 are 3,4,5 → dropped.
        assert_eq!(kept.len(), 5);
        let all = window(&matrix, nch, 3, 1, false).unwrap();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn window_param_validation() {
        assert!(window(&[1.0], 0, 1, 1, true).is_err());
        assert!(window(&[1.0], 1, 0, 1, true).is_err());
        assert!(window(&[1.0], 1, 1, 0, true).is_err());
        assert!(window(&[1.0; 3], 2, 1, 1, true).is_err());
    }

    #[test]
    fn profile_resampling_linear_exact() {
        // y = 3x over an irregular source mesh resampled onto a uniform
        // rho grid — linear interpolation is exact for linear profiles.
        let src_x = vec![0.0, 0.13, 0.4, 0.55, 0.9, 1.0];
        let src_y: Vec<f64> = src_x.iter().map(|&x| 3.0 * x).collect();
        let dst_x: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let out = resample_profile(&src_x, &src_y, &dst_x).unwrap();
        for (&x, &y) in dst_x.iter().zip(&out) {
            assert!((y - 3.0 * x).abs() < 1e-12, "rho={x}: {y}");
        }
    }

    #[test]
    fn profile_no_extrapolation() {
        let out = resample_profile(&[0.2, 0.8], &[1.0, 2.0], &[0.0, 0.2, 0.5, 0.8, 1.0]).unwrap();
        assert!(out[0].is_nan());
        assert_eq!(out[1], 1.0);
        assert_eq!(out[3], 2.0);
        assert!(out[4].is_nan());
    }

    #[test]
    fn profile_exact_knot_hits() {
        let out = resample_profile(&[0.0, 1.0, 2.0], &[5.0, 7.0, 9.0], &[1.0]).unwrap();
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn profile_validation() {
        assert!(resample_profile(&[0.0, 1.0], &[1.0], &[0.5]).is_err());
        assert!(resample_profile(&[0.0, 0.0], &[1.0, 2.0], &[0.0]).is_err());
        assert!(resample_profile(&[1.0, 0.5], &[1.0, 2.0], &[0.7]).is_err());
        let empty = resample_profile(&[], &[], &[0.5]).unwrap();
        assert!(empty[0].is_nan());
    }

    #[test]
    fn mean_rate() {
        let ch = ramp_channel("x", 50.0, 2.0);
        assert!((ch.mean_rate().unwrap() - 50.0).abs() < 1e-9);
        let single = Channel {
            name: "s".into(),
            times: vec![0.0],
            values: vec![1.0],
        };
        assert_eq!(single.mean_rate(), None);
    }
}
