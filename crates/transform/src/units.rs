//! Unit consistency ("ensuring consistent units and formats" — §2.1).
//!
//! Scientific sources mix unit conventions freely (CMIP temperature in K,
//! station data in °C; pressures in Pa vs hPa; energies in eV vs J). The
//! registry performs dimension-checked linear conversions
//! `y = scale * x + offset` so a pipeline can declare one canonical unit
//! per variable and coerce every source into it.

use crate::TransformError;

/// Physical dimension of a unit (coarse: enough to reject nonsense
/// conversions like K → Pa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Thermodynamic temperature.
    Temperature,
    /// Pressure.
    Pressure,
    /// Length.
    Length,
    /// Time.
    Time,
    /// Energy.
    Energy,
    /// Mass.
    Mass,
    /// Electric current.
    Current,
    /// Magnetic flux density.
    MagneticField,
    /// Dimensionless (fractions, ratios, counts).
    Dimensionless,
}

/// A unit: dimension plus the affine map to that dimension's SI base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unit {
    /// Canonical symbol.
    pub symbol: &'static str,
    /// Physical dimension.
    pub dimension: Dimension,
    /// `base = scale * value + offset`.
    pub scale: f64,
    /// Affine offset to base (nonzero only for temperatures).
    pub offset: f64,
}

/// Look a unit up by symbol (case-sensitive; common aliases included).
pub fn lookup(symbol: &str) -> Option<Unit> {
    use Dimension::*;
    let u = |symbol, dimension, scale, offset| Unit {
        symbol,
        dimension,
        scale,
        offset,
    };
    Some(match symbol {
        // Temperature (base: K)
        "K" => u("K", Temperature, 1.0, 0.0),
        "degC" | "C" | "°C" => u("degC", Temperature, 1.0, 273.15),
        "degF" | "F" | "°F" => u("degF", Temperature, 5.0 / 9.0, 459.67 * 5.0 / 9.0),
        // Pressure (base: Pa)
        "Pa" => u("Pa", Pressure, 1.0, 0.0),
        "hPa" | "mbar" => u("hPa", Pressure, 100.0, 0.0),
        "kPa" => u("kPa", Pressure, 1e3, 0.0),
        "bar" => u("bar", Pressure, 1e5, 0.0),
        "atm" => u("atm", Pressure, 101_325.0, 0.0),
        // Length (base: m)
        "m" => u("m", Length, 1.0, 0.0),
        "cm" => u("cm", Length, 1e-2, 0.0),
        "mm" => u("mm", Length, 1e-3, 0.0),
        "km" => u("km", Length, 1e3, 0.0),
        "angstrom" | "Å" => u("angstrom", Length, 1e-10, 0.0),
        // Time (base: s)
        "s" => u("s", Time, 1.0, 0.0),
        "ms" => u("ms", Time, 1e-3, 0.0),
        "us" | "µs" => u("us", Time, 1e-6, 0.0),
        "min" => u("min", Time, 60.0, 0.0),
        "h" | "hr" => u("h", Time, 3600.0, 0.0),
        "day" => u("day", Time, 86_400.0, 0.0),
        // Energy (base: J)
        "J" => u("J", Energy, 1.0, 0.0),
        "kJ" => u("kJ", Energy, 1e3, 0.0),
        "eV" => u("eV", Energy, 1.602_176_634e-19, 0.0),
        "keV" => u("keV", Energy, 1.602_176_634e-16, 0.0),
        "MJ" => u("MJ", Energy, 1e6, 0.0),
        // Mass (base: kg)
        "kg" => u("kg", Mass, 1.0, 0.0),
        "g" => u("g", Mass, 1e-3, 0.0),
        "amu" | "u" => u("amu", Mass, 1.660_539_066_60e-27, 0.0),
        // Current (base: A)
        "A" => u("A", Current, 1.0, 0.0),
        "kA" => u("kA", Current, 1e3, 0.0),
        "MA" => u("MA", Current, 1e6, 0.0),
        // Magnetic field (base: T)
        "T" => u("T", MagneticField, 1.0, 0.0),
        "mT" => u("mT", MagneticField, 1e-3, 0.0),
        "G" | "gauss" => u("G", MagneticField, 1e-4, 0.0),
        // Dimensionless
        "1" | "" | "fraction" => u("1", Dimensionless, 1.0, 0.0),
        "%" | "percent" => u("%", Dimensionless, 0.01, 0.0),
        _ => return None,
    })
}

/// A validated conversion between two units of one dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conversion {
    scale: f64,
    offset: f64,
}

impl Conversion {
    /// Build a conversion `from → to`, rejecting unknown symbols and
    /// cross-dimension conversions.
    pub fn between(from: &str, to: &str) -> Result<Conversion, TransformError> {
        let f = lookup(from)
            .ok_or_else(|| TransformError::InvalidInput(format!("unknown unit {from:?}")))?;
        let t = lookup(to)
            .ok_or_else(|| TransformError::InvalidInput(format!("unknown unit {to:?}")))?;
        if f.dimension != t.dimension {
            return Err(TransformError::InvalidInput(format!(
                "cannot convert {from} ({:?}) to {to} ({:?})",
                f.dimension, t.dimension
            )));
        }
        // value_to = (scale_f * x + offset_f - offset_t) / scale_t
        Ok(Conversion {
            scale: f.scale / t.scale,
            offset: (f.offset - t.offset) / t.scale,
        })
    }

    /// Convert one value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        self.scale * x + self.offset
    }

    /// Convert a slice in place.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// One-shot convenience conversion.
pub fn convert(value: f64, from: &str, to: &str) -> Result<f64, TransformError> {
    Ok(Conversion::between(from, to)?.apply(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn temperature_conversions() {
        assert!(close(convert(0.0, "degC", "K").unwrap(), 273.15));
        assert!(close(convert(273.15, "K", "degC").unwrap(), 0.0));
        assert!(close(convert(32.0, "degF", "degC").unwrap(), 0.0));
        assert!(close(convert(212.0, "degF", "K").unwrap(), 373.15));
        assert!(close(convert(100.0, "degC", "degF").unwrap(), 212.0));
    }

    #[test]
    fn pressure_conversions() {
        assert!(close(convert(1013.25, "hPa", "Pa").unwrap(), 101_325.0));
        assert!(close(convert(1.0, "atm", "hPa").unwrap(), 1013.25));
        assert!(close(convert(1.0, "bar", "kPa").unwrap(), 100.0));
    }

    #[test]
    fn fusion_units() {
        assert!(close(convert(1.2, "MA", "A").unwrap(), 1.2e6));
        assert!(close(convert(20_000.0, "G", "T").unwrap(), 2.0));
        assert!(close(convert(10.0, "keV", "eV").unwrap(), 10_000.0));
    }

    #[test]
    fn materials_units() {
        assert!(close(convert(1.0, "angstrom", "m").unwrap(), 1e-10));
        assert!(close(
            convert(12.0, "amu", "kg").unwrap(),
            12.0 * 1.6605390666e-27
        ));
    }

    #[test]
    fn round_trips() {
        for (a, b) in [
            ("degC", "K"),
            ("degF", "degC"),
            ("hPa", "atm"),
            ("eV", "J"),
            ("min", "s"),
            ("%", "1"),
        ] {
            let fwd = Conversion::between(a, b).unwrap();
            let back = Conversion::between(b, a).unwrap();
            for x in [-40.0, 0.0, 1.0, 1234.5] {
                assert!(
                    close(back.apply(fwd.apply(x)), x),
                    "{a}<->{b} at {x}: {}",
                    back.apply(fwd.apply(x))
                );
            }
        }
    }

    #[test]
    fn identity_conversion() {
        let c = Conversion::between("K", "K").unwrap();
        assert_eq!(c.apply(300.0), 300.0);
    }

    #[test]
    fn cross_dimension_rejected() {
        assert!(Conversion::between("K", "Pa").is_err());
        assert!(Conversion::between("m", "s").is_err());
        assert!(Conversion::between("MA", "T").is_err());
    }

    #[test]
    fn unknown_units_rejected() {
        assert!(Conversion::between("parsec", "m").is_err());
        assert!(Conversion::between("m", "cubits").is_err());
        assert!(lookup("nonsense").is_none());
    }

    #[test]
    fn slice_conversion() {
        let c = Conversion::between("degC", "K").unwrap();
        let mut temps = vec![0.0, 25.0, 100.0];
        c.apply_slice(&mut temps);
        assert!(close(temps[0], 273.15));
        assert!(close(temps[1], 298.15));
        assert!(close(temps[2], 373.15));
    }

    #[test]
    fn percent_to_fraction() {
        assert!(close(convert(45.0, "%", "1").unwrap(), 0.45));
        assert!(close(convert(0.1, "1", "%").unwrap(), 10.0));
    }
}
