//! Labeling and pseudo-labeling ("when only a portion of the data is
//! labeled, semi-supervised methods can leverage both" — §2.1).
//!
//! [`pseudo_label`] implements the iterative scheme the paper cites
//! (Kage et al.): a model's confident predictions on unlabeled samples are
//! promoted to labels; the process repeats until no promotion clears the
//! confidence gate.

use crate::TransformError;

/// A labeled or unlabeled sample reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Label {
    /// Ground-truth label.
    Known(i64),
    /// Promoted pseudo-label with the confidence it cleared.
    Pseudo(i64, f64),
    /// Still unlabeled.
    Unknown,
}

impl Label {
    /// The class value, if any.
    pub fn class(&self) -> Option<i64> {
        match self {
            Label::Known(c) | Label::Pseudo(c, _) => Some(*c),
            Label::Unknown => None,
        }
    }

    /// True for ground-truth labels.
    pub fn is_known(&self) -> bool {
        matches!(self, Label::Known(_))
    }
}

/// Threshold labeler for event detection (e.g. "disruption within the
/// next window when plasma current collapse rate exceeds θ").
pub fn threshold_labels(values: &[f64], theta: f64) -> Vec<Label> {
    values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                Label::Unknown
            } else {
                Label::Known((v > theta) as i64)
            }
        })
        .collect()
}

/// Label coverage: fraction of samples with any label.
pub fn coverage(labels: &[Label]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|l| l.class().is_some()).count() as f64 / labels.len() as f64
}

/// Statistics from one [`pseudo_label`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PseudoLabelReport {
    /// Number of iterations executed.
    pub iterations: usize,
    /// Samples promoted per iteration.
    pub promoted_per_round: Vec<usize>,
    /// Final label coverage.
    pub final_coverage: f64,
}

/// Iterative pseudo-labeling.
///
/// `predict` is the (externally trained) model: given a sample index it
/// returns `(class, confidence)` — in a real pipeline this wraps an
/// inference call; in tests and benches a nearest-centroid model suffices.
/// Unlabeled samples whose confidence ≥ `confidence_gate` are promoted to
/// [`Label::Pseudo`] each round; iteration stops when a round promotes
/// nothing or `max_rounds` is reached.
pub fn pseudo_label(
    labels: &mut [Label],
    confidence_gate: f64,
    max_rounds: usize,
    mut predict: impl FnMut(usize, &[Label]) -> Option<(i64, f64)>,
) -> Result<PseudoLabelReport, TransformError> {
    if !(0.0..=1.0).contains(&confidence_gate) {
        return Err(TransformError::InvalidInput(format!(
            "confidence gate {confidence_gate}"
        )));
    }
    let mut promoted_per_round = Vec::new();
    for _ in 0..max_rounds {
        // Collect promotions against the *current* label state, then apply
        // (simultaneous update, so within a round order cannot matter).
        let mut promotions = Vec::new();
        for i in 0..labels.len() {
            if labels[i].class().is_some() {
                continue;
            }
            if let Some((class, conf)) = predict(i, labels) {
                if conf >= confidence_gate {
                    promotions.push((i, class, conf));
                }
            }
        }
        if promotions.is_empty() {
            break;
        }
        promoted_per_round.push(promotions.len());
        for (i, class, conf) in promotions {
            labels[i] = Label::Pseudo(class, conf);
        }
    }
    Ok(PseudoLabelReport {
        iterations: promoted_per_round.len(),
        promoted_per_round,
        final_coverage: coverage(labels),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_basics() {
        let labels = threshold_labels(&[0.1, 0.9, f64::NAN, 0.5], 0.5);
        assert_eq!(labels[0], Label::Known(0));
        assert_eq!(labels[1], Label::Known(1));
        assert_eq!(labels[2], Label::Unknown);
        assert_eq!(labels[3], Label::Known(0)); // strict >
        assert_eq!(coverage(&labels), 0.75);
        assert_eq!(coverage(&[]), 0.0);
    }

    #[test]
    fn label_accessors() {
        assert_eq!(Label::Known(3).class(), Some(3));
        assert_eq!(Label::Pseudo(2, 0.9).class(), Some(2));
        assert_eq!(Label::Unknown.class(), None);
        assert!(Label::Known(0).is_known());
        assert!(!Label::Pseudo(0, 1.0).is_known());
    }

    /// 1-D two-cluster world: position < 0 → class 0, > 0 → class 1.
    /// Nearest-labeled-neighbor predictor with confidence decaying in
    /// distance. Pseudo-labeling should flood-fill outward from the two
    /// seeds over multiple rounds.
    #[test]
    fn pseudo_label_flood_fills_clusters() {
        let positions: Vec<f64> = (-10..=10).map(|i| i as f64).collect();
        let n = positions.len();
        let mut labels = vec![Label::Unknown; n];
        labels[0] = Label::Known(0); // position -10
        labels[n - 1] = Label::Known(1); // position +10

        let pos = positions.clone();
        // Gate 0.5 admits immediate neighbours (d=1 → confidence 0.5) and
        // nothing farther, so labels flood outward one position per round.
        let report = pseudo_label(&mut labels, 0.5, 50, |i, current| {
            // Nearest labeled sample.
            let mut best: Option<(f64, i64)> = None;
            for (j, l) in current.iter().enumerate() {
                if let Some(c) = l.class() {
                    if j == i {
                        continue;
                    }
                    let d = (pos[i] - pos[j]).abs();
                    if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                        best = Some((d, c));
                    }
                }
            }
            best.map(|(d, c)| (c, 1.0 / (1.0 + d)))
        })
        .unwrap();

        assert!(report.iterations >= 5, "iterations {}", report.iterations);
        assert_eq!(report.final_coverage, 1.0);
        // Cluster structure respected: negatives 0, positives 1.
        for (i, l) in labels.iter().enumerate() {
            let expect = (positions[i] > 0.0) as i64;
            if positions[i] != 0.0 {
                assert_eq!(l.class(), Some(expect), "position {}", positions[i]);
            }
        }
    }

    #[test]
    fn gate_blocks_low_confidence() {
        let mut labels = vec![Label::Known(1), Label::Unknown];
        let report = pseudo_label(&mut labels, 0.9, 10, |_, _| Some((1, 0.5))).unwrap();
        assert_eq!(report.iterations, 0);
        assert_eq!(labels[1], Label::Unknown);
        assert_eq!(report.final_coverage, 0.5);
    }

    #[test]
    fn max_rounds_respected() {
        // Predictor always confident: everything promotes in round 1.
        let mut labels = vec![Label::Unknown; 10];
        let report = pseudo_label(&mut labels, 0.5, 3, |_, _| Some((0, 1.0))).unwrap();
        assert_eq!(report.iterations, 1);
        assert_eq!(report.promoted_per_round, vec![10]);
    }

    #[test]
    fn bad_gate_rejected() {
        let mut labels = vec![Label::Unknown];
        assert!(pseudo_label(&mut labels, 1.5, 1, |_, _| None).is_err());
        assert!(pseudo_label(&mut labels, -0.1, 1, |_, _| None).is_err());
    }

    #[test]
    fn known_labels_never_overwritten() {
        let mut labels = vec![Label::Known(7), Label::Unknown];
        pseudo_label(&mut labels, 0.0, 5, |_, _| Some((9, 1.0))).unwrap();
        assert_eq!(labels[0], Label::Known(7));
        assert_eq!(labels[1].class(), Some(9));
    }
}
