//! Data augmentation for sample-starved scientific datasets
//! ("rotating images, adding noise, and generating synthetic samples" —
//! §2.1).
//!
//! Augmentations take an explicit RNG so pipelines remain reproducible and
//! provenance can record the seed.

use crate::TransformError;
use drai_tensor::Tensor;
use rand::Rng;

/// Rotate a 2D field 90° clockwise `quarters` times.
pub fn rotate90(field: &Tensor<f64>, quarters: u32) -> Result<Tensor<f64>, TransformError> {
    if field.rank() != 2 {
        return Err(TransformError::InvalidInput(format!(
            "rotate90 needs rank 2, got {}",
            field.rank()
        )));
    }
    let mut cur = field.clone();
    for _ in 0..quarters % 4 {
        let (h, w) = (cur.shape()[0], cur.shape()[1]);
        // Row-major index arithmetic: src[i][j] -> dst[j][h-1-i].
        let src = cur.as_slice();
        let mut dst = vec![0.0; w * h];
        for i in 0..h {
            for j in 0..w {
                dst[j * h + (h - 1 - i)] = src[i * w + j];
            }
        }
        cur = Tensor::from_vec(dst, &[w, h])
            .map_err(|e| TransformError::InvalidInput(e.to_string()))?;
    }
    Ok(cur)
}

/// Mirror a 2D field horizontally (flip columns).
pub fn flip_horizontal(field: &Tensor<f64>) -> Result<Tensor<f64>, TransformError> {
    if field.rank() != 2 {
        return Err(TransformError::InvalidInput(format!(
            "flip needs rank 2, got {}",
            field.rank()
        )));
    }
    let (h, w) = (field.shape()[0], field.shape()[1]);
    let src = field.as_slice();
    let mut dst = vec![0.0; h * w];
    for i in 0..h {
        for j in 0..w {
            dst[i * w + (w - 1 - j)] = src[i * w + j];
        }
    }
    Tensor::from_vec(dst, &[h, w]).map_err(|e| TransformError::InvalidInput(e.to_string()))
}

/// Add zero-mean Gaussian noise with standard deviation `sigma`
/// (Box-Muller from the supplied RNG). NaNs pass through untouched.
pub fn jitter<R: Rng>(values: &mut [f64], sigma: f64, rng: &mut R) -> Result<(), TransformError> {
    if sigma.is_nan() || sigma < 0.0 {
        return Err(TransformError::InvalidInput(format!("sigma {sigma}")));
    }
    if sigma == 0.0 {
        return Ok(());
    }
    for v in values.iter_mut() {
        if v.is_nan() {
            continue;
        }
        // Box-Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        *v += sigma * z;
    }
    Ok(())
}

/// Mixup-style synthetic sample: `lambda * a + (1 - lambda) * b`.
/// `lambda` is drawn uniformly from `[alpha, 1 - alpha]` (alpha < 0.5
/// keeps samples near the originals).
pub fn mixup<R: Rng>(
    a: &[f64],
    b: &[f64],
    alpha: f64,
    rng: &mut R,
) -> Result<(Vec<f64>, f64), TransformError> {
    if a.len() != b.len() {
        return Err(TransformError::ShapeMismatch {
            expected: format!("{}", a.len()),
            got: format!("{}", b.len()),
        });
    }
    if !(0.0..0.5).contains(&alpha) {
        return Err(TransformError::InvalidInput(format!("alpha {alpha}")));
    }
    let lambda = rng.gen_range(alpha..=(1.0 - alpha));
    let mixed = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| lambda * x + (1.0 - lambda) * y)
        .collect();
    Ok((mixed, lambda))
}

/// Expand a set of 2D samples with rotations/flips until `target` samples
/// exist (keeps originals first; augmented copies cycle through the 7
/// non-identity dihedral transforms).
pub fn augment_to_count(
    samples: &[Tensor<f64>],
    target: usize,
) -> Result<Vec<Tensor<f64>>, TransformError> {
    if samples.is_empty() {
        return Err(TransformError::InvalidInput("no samples to augment".into()));
    }
    let mut out: Vec<Tensor<f64>> = samples.to_vec();
    let mut variant = 0usize;
    let mut src = 0usize;
    while out.len() < target {
        let base = &samples[src % samples.len()];
        let aug = match variant % 7 {
            0 => rotate90(base, 1)?,
            1 => rotate90(base, 2)?,
            2 => rotate90(base, 3)?,
            3 => flip_horizontal(base)?,
            4 => rotate90(&flip_horizontal(base)?, 1)?,
            5 => rotate90(&flip_horizontal(base)?, 2)?,
            _ => rotate90(&flip_horizontal(base)?, 3)?,
        };
        out.push(aug);
        src += 1;
        if src % samples.len() == 0 {
            variant += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> Tensor<f64> {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap()
    }

    #[test]
    fn rotate_quarter() {
        let r = rotate90(&grid(), 1).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        // [1 2 3; 4 5 6] rotated CW → [4 1; 5 2; 6 3]
        assert_eq!(r.as_slice(), &[4.0, 1.0, 5.0, 2.0, 6.0, 3.0]);
    }

    #[test]
    fn rotate_full_circle_identity() {
        let r = rotate90(&grid(), 4).unwrap();
        assert_eq!(r, grid());
        let r0 = rotate90(&grid(), 0).unwrap();
        assert_eq!(r0, grid());
    }

    #[test]
    fn flip_twice_identity() {
        let f = flip_horizontal(&grid()).unwrap();
        assert_eq!(f.as_slice(), &[3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        assert_eq!(flip_horizontal(&f).unwrap(), grid());
    }

    #[test]
    fn rank_checked() {
        let t = Tensor::<f64>::zeros(&[2, 2, 2]);
        assert!(rotate90(&t, 1).is_err());
        assert!(flip_horizontal(&t).is_err());
    }

    #[test]
    fn jitter_statistics() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut values = vec![10.0; 20_000];
        jitter(&mut values, 2.0, &mut rng).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn jitter_preserves_nan_and_zero_sigma() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut values = vec![1.0, f64::NAN, 3.0];
        jitter(&mut values, 0.0, &mut rng).unwrap();
        assert_eq!(values[0], 1.0);
        jitter(&mut values, 1.0, &mut rng).unwrap();
        assert!(values[1].is_nan());
        assert!(jitter(&mut values, -1.0, &mut rng).is_err());
    }

    #[test]
    fn jitter_reproducible() {
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        jitter(&mut a, 1.0, &mut SmallRng::seed_from_u64(7)).unwrap();
        jitter(&mut b, 1.0, &mut SmallRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mixup_convexity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = vec![0.0; 10];
        let b = vec![10.0; 10];
        let (mixed, lambda) = mixup(&a, &b, 0.2, &mut rng).unwrap();
        assert!((0.2..=0.8).contains(&lambda));
        for &v in &mixed {
            assert!((v - (1.0 - lambda) * 10.0).abs() < 1e-12);
            assert!((0.0..=10.0).contains(&v));
        }
        assert!(mixup(&a, &b[..5], 0.2, &mut rng).is_err());
        assert!(mixup(&a, &b, 0.7, &mut rng).is_err());
    }

    #[test]
    fn augment_reaches_target() {
        let samples = vec![grid()];
        let out = augment_to_count(&samples, 8).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(out[0], grid()); // originals preserved
                                    // All variants differ from each other (dihedral orbit of an
                                    // asymmetric grid).
        for i in 0..out.len() {
            for j in i + 1..out.len() {
                assert_ne!(out[i], out[j], "variants {i} and {j} identical");
            }
        }
    }

    #[test]
    fn augment_noop_when_enough() {
        let samples = vec![grid(), grid()];
        let out = augment_to_count(&samples, 2).unwrap();
        assert_eq!(out.len(), 2);
        assert!(augment_to_count(&[], 5).is_err());
    }
}
