//! Categorical and sequence encoding ("managing categorical variables";
//! Enformer-style one-hot DNA tiles).

use crate::TransformError;
use drai_tensor::Tensor;
use std::collections::BTreeMap;

/// A fitted categorical vocabulary: category string → dense index.
///
/// Indices are assigned in sorted category order so the encoding is
/// deterministic across runs (a reproducibility requirement the paper's
/// provenance discussion makes explicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    map: BTreeMap<String, usize>,
}

impl Vocabulary {
    /// Build from observed category values.
    pub fn fit<S: AsRef<str>>(values: &[S]) -> Vocabulary {
        let mut uniq: Vec<&str> = values.iter().map(|s| s.as_ref()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        Vocabulary {
            map: uniq
                .into_iter()
                .enumerate()
                .map(|(i, s)| (s.to_string(), i))
                .collect(),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no categories were observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Dense index of a category.
    pub fn index(&self, value: &str) -> Option<usize> {
        self.map.get(value).copied()
    }

    /// Encode values to indices; unseen categories error (they signal a
    /// train/serve skew that must be surfaced, not hidden).
    pub fn encode<S: AsRef<str>>(&self, values: &[S]) -> Result<Vec<usize>, TransformError> {
        values
            .iter()
            .map(|v| {
                self.index(v.as_ref()).ok_or_else(|| {
                    TransformError::InvalidInput(format!("unseen category {:?}", v.as_ref()))
                })
            })
            .collect()
    }

    /// One-hot encode to an `[n, vocab]` f32 tensor.
    pub fn one_hot<S: AsRef<str>>(&self, values: &[S]) -> Result<Tensor<f32>, TransformError> {
        let idx = self.encode(values)?;
        let k = self.len();
        let mut data = vec![0.0_f32; idx.len() * k];
        for (row, &i) in idx.iter().enumerate() {
            data[row * k + i] = 1.0;
        }
        Tensor::from_vec(data, &[idx.len(), k])
            .map_err(|e| TransformError::InvalidInput(format!("{e}")))
    }
}

/// Sequence alphabet for biological one-hot encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    symbols: Vec<u8>,
    lookup: [Option<u8>; 256],
}

impl Alphabet {
    /// DNA: A, C, G, T (N and other ambiguity codes encode as all-zero).
    pub fn dna() -> Alphabet {
        Alphabet::new(b"ACGT")
    }

    /// The 20 standard amino acids.
    pub fn protein() -> Alphabet {
        Alphabet::new(b"ACDEFGHIKLMNPQRSTVWY")
    }

    /// Custom alphabet from ASCII symbols (case-insensitive lookup).
    pub fn new(symbols: &[u8]) -> Alphabet {
        let mut lookup = [None; 256];
        for (i, &s) in symbols.iter().enumerate() {
            lookup[s.to_ascii_uppercase() as usize] = Some(i as u8);
            lookup[s.to_ascii_lowercase() as usize] = Some(i as u8);
        }
        Alphabet {
            symbols: symbols.to_vec(),
            lookup,
        }
    }

    /// Alphabet size.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// One-hot encode a sequence to `[len, alphabet]` f32 (Enformer
    /// layout). Unknown symbols (e.g. `N`) become all-zero rows.
    pub fn one_hot(&self, sequence: &str) -> Tensor<f32> {
        self.one_hot_bytes(sequence.as_bytes())
    }

    fn one_hot_bytes(&self, bytes: &[u8]) -> Tensor<f32> {
        let k = self.len();
        let mut data = vec![0.0_f32; bytes.len() * k];
        for (row, &b) in bytes.iter().enumerate() {
            if let Some(i) = self.lookup[b as usize] {
                data[row * k + i as usize] = 1.0;
            }
        }
        let rows = bytes.len();
        Tensor::from_vec(data, &[rows, k]).unwrap_or_else(|_| Tensor::zeros(&[rows, k]))
    }

    /// Slice a long sequence into fixed-length tiles (final partial tile
    /// dropped), then one-hot each — the Enformer "fixed-length tiles"
    /// preprocessing step.
    pub fn one_hot_tiles(&self, sequence: &str, tile_len: usize) -> Vec<Tensor<f32>> {
        assert!(tile_len > 0, "tile length must be positive");
        sequence
            .as_bytes()
            .chunks_exact(tile_len)
            .map(|tile| self.one_hot_bytes(tile))
            .collect()
    }

    /// Decode a one-hot row back to a symbol (None for all-zero rows).
    pub fn decode_row(&self, row: &[f32]) -> Option<char> {
        let idx = row.iter().position(|&x| x > 0.5)?;
        Some(self.symbols[idx] as char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_deterministic_order() {
        let v1 = Vocabulary::fit(&["zebra", "apple", "mango", "apple"]);
        let v2 = Vocabulary::fit(&["mango", "zebra", "apple"]);
        assert_eq!(v1, v2);
        assert_eq!(v1.len(), 3);
        assert_eq!(v1.index("apple"), Some(0));
        assert_eq!(v1.index("mango"), Some(1));
        assert_eq!(v1.index("zebra"), Some(2));
    }

    #[test]
    fn vocabulary_encode_and_unseen() {
        let v = Vocabulary::fit(&["a", "b"]);
        assert_eq!(v.encode(&["b", "a", "b"]).unwrap(), vec![1, 0, 1]);
        assert!(v.encode(&["c"]).is_err());
        assert_eq!(v.index("c"), None);
    }

    #[test]
    fn vocabulary_one_hot() {
        let v = Vocabulary::fit(&["x", "y", "z"]);
        let t = v.one_hot(&["y", "x"]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn dna_one_hot() {
        let t = Alphabet::dna().one_hot("ACGT");
        assert_eq!(t.shape(), &[4, 4]);
        // Identity matrix.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.get(&[i, j]).unwrap(), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn dna_lowercase_and_n() {
        let a = Alphabet::dna();
        let t = a.one_hot("acgN");
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0); // a → A
        assert_eq!(t.get(&[3, 0]).unwrap(), 0.0); // N → all zero
        let row: Vec<f32> = (0..4).map(|j| t.get(&[3, j]).unwrap()).collect();
        assert!(row.iter().all(|&x| x == 0.0));
        assert_eq!(a.decode_row(&row), None);
        let row0: Vec<f32> = (0..4).map(|j| t.get(&[0, j]).unwrap()).collect();
        assert_eq!(a.decode_row(&row0), Some('A'));
    }

    #[test]
    fn tiling_drops_partial() {
        let a = Alphabet::dna();
        let tiles = a.one_hot_tiles("ACGTACGTAC", 4);
        assert_eq!(tiles.len(), 2); // 10 / 4 → 2 full tiles
        assert_eq!(tiles[0].shape(), &[4, 4]);
    }

    #[test]
    fn protein_alphabet_size() {
        let a = Alphabet::protein();
        assert_eq!(a.len(), 20);
        let t = a.one_hot("MKV");
        assert_eq!(t.shape(), &[3, 20]);
        // Each row sums to 1 for known residues.
        for lane in t.lanes() {
            let s: f32 = lane.as_slice().iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn empty_sequence() {
        let t = Alphabet::dna().one_hot("");
        assert_eq!(t.shape(), &[0, 4]);
        assert!(Alphabet::dna().one_hot_tiles("", 5).is_empty());
    }
}
