//! Missing-value imputation ("handling missing values", Fig. 1).
//!
//! The convention throughout drai is that missing values are `f64::NAN`
//! (produced by the CSV reader for empty cells, the GRIB bitmap for masked
//! grid points, and the fusion extractor for dropped-out channels).

use crate::TransformError;

/// Imputation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Replace with the mean of finite values.
    Mean,
    /// Replace with the median of finite values.
    Median,
    /// Replace with a constant.
    Constant(f64),
    /// Carry the last finite value forward (time series). Leading NaNs
    /// take the first finite value (back-fill at the head).
    ForwardFill,
    /// Linear interpolation between neighbouring finite samples;
    /// boundary NaNs extend the nearest finite value.
    Interpolate,
}

/// Fraction of values missing (NaN).
pub fn missing_fraction(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| v.is_nan()).count() as f64 / values.len() as f64
}

/// Impute in place. Errors if every value is NaN and the strategy needs
/// data statistics.
pub fn impute(values: &mut [f64], strategy: Strategy) -> Result<usize, TransformError> {
    let missing = values.iter().filter(|v| v.is_nan()).count();
    if missing == 0 {
        return Ok(0);
    }
    let all_nan = missing == values.len();
    match strategy {
        Strategy::Constant(c) => {
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = c;
                }
            }
        }
        Strategy::Mean => {
            if all_nan {
                return Err(TransformError::CannotFit("all values missing".into()));
            }
            let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            let mean = finite.iter().sum::<f64>() / finite.len() as f64;
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = mean;
                }
            }
        }
        Strategy::Median => {
            if all_nan {
                return Err(TransformError::CannotFit("all values missing".into()));
            }
            let mut finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            finite.sort_by(|a, b| a.total_cmp(b));
            let median = if finite.len() % 2 == 1 {
                finite[finite.len() / 2]
            } else {
                (finite[finite.len() / 2 - 1] + finite[finite.len() / 2]) / 2.0
            };
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = median;
                }
            }
        }
        Strategy::ForwardFill => {
            if all_nan {
                return Err(TransformError::CannotFit("all values missing".into()));
            }
            let Some(first_finite) = values.iter().copied().find(|v| !v.is_nan()) else {
                return Err(TransformError::CannotFit("all values missing".into()));
            };
            let mut last = first_finite;
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
        }
        Strategy::Interpolate => {
            if all_nan {
                return Err(TransformError::CannotFit("all values missing".into()));
            }
            let n = values.len();
            let mut i = 0;
            while i < n {
                if !values[i].is_nan() {
                    i += 1;
                    continue;
                }
                // Gap [i, j).
                let mut j = i;
                while j < n && values[j].is_nan() {
                    j += 1;
                }
                let left = if i > 0 { Some(values[i - 1]) } else { None };
                let right = if j < n { Some(values[j]) } else { None };
                match (left, right) {
                    (Some(l), Some(r)) => {
                        let gap = (j - i + 1) as f64;
                        for (k, slot) in (i..j).enumerate() {
                            let t = (k + 1) as f64 / gap;
                            values[slot] = l + (r - l) * t;
                        }
                    }
                    (Some(l), None) => values[i..j].fill(l),
                    (None, Some(r)) => values[i..j].fill(r),
                    // Both neighbours missing can only mean the whole slice
                    // is NaN, which the all-NaN guard rejected; leave the
                    // gap as NaN rather than abort.
                    (None, None) => values[i..j].fill(f64::NAN),
                }
                i = j;
            }
        }
    }
    Ok(missing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_fraction_counts() {
        assert_eq!(missing_fraction(&[]), 0.0);
        assert_eq!(missing_fraction(&[1.0, f64::NAN]), 0.5);
        assert_eq!(missing_fraction(&[f64::NAN; 4]), 1.0);
    }

    #[test]
    fn mean_fill() {
        let mut v = vec![1.0, f64::NAN, 3.0];
        assert_eq!(impute(&mut v, Strategy::Mean).unwrap(), 1);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn median_fill_even_and_odd() {
        let mut v = vec![1.0, f64::NAN, 100.0, 2.0];
        impute(&mut v, Strategy::Median).unwrap();
        assert_eq!(v[1], 2.0); // median of {1, 2, 100}
        let mut w = vec![f64::NAN, 1.0, 3.0, 5.0, 7.0];
        impute(&mut w, Strategy::Median).unwrap();
        assert_eq!(w[0], 4.0); // median of {1,3,5,7}
    }

    #[test]
    fn constant_fill() {
        let mut v = vec![f64::NAN, 2.0, f64::NAN];
        assert_eq!(impute(&mut v, Strategy::Constant(-1.0)).unwrap(), 2);
        assert_eq!(v, vec![-1.0, 2.0, -1.0]);
        // Constant works even when everything is missing.
        let mut all = vec![f64::NAN; 3];
        impute(&mut all, Strategy::Constant(0.0)).unwrap();
        assert_eq!(all, vec![0.0; 3]);
    }

    #[test]
    fn forward_fill_with_leading_gap() {
        let mut v = vec![f64::NAN, f64::NAN, 5.0, f64::NAN, 7.0, f64::NAN];
        impute(&mut v, Strategy::ForwardFill).unwrap();
        assert_eq!(v, vec![5.0, 5.0, 5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn interpolate_interior_gap() {
        let mut v = vec![0.0, f64::NAN, f64::NAN, f64::NAN, 4.0];
        impute(&mut v, Strategy::Interpolate).unwrap();
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolate_boundary_gaps() {
        let mut v = vec![f64::NAN, 2.0, f64::NAN, 4.0, f64::NAN];
        impute(&mut v, Strategy::Interpolate).unwrap();
        assert_eq!(v, vec![2.0, 2.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn no_missing_is_noop() {
        let mut v = vec![1.0, 2.0];
        assert_eq!(impute(&mut v, Strategy::Mean).unwrap(), 0);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn all_nan_errors_for_statistical_strategies() {
        for s in [
            Strategy::Mean,
            Strategy::Median,
            Strategy::ForwardFill,
            Strategy::Interpolate,
        ] {
            let mut v = vec![f64::NAN; 5];
            assert!(impute(&mut v, s).is_err(), "{s:?}");
        }
    }
}
