//! Feature engineering kernels: "computes derivative-based features from
//! diagnostics" (DIII-D pipeline) and spectral features for turbulence
//! analysis (PyFusion-style).

use crate::TransformError;

/// Central-difference first derivative of a uniformly sampled signal
/// (`dt` seconds between samples). One-sided differences at boundaries.
pub fn derivative(signal: &[f64], dt: f64) -> Result<Vec<f64>, TransformError> {
    if dt.is_nan() || dt <= 0.0 {
        return Err(TransformError::InvalidInput(format!("dt = {dt}")));
    }
    let n = signal.len();
    if n < 2 {
        return Ok(vec![0.0; n]);
    }
    let mut out = Vec::with_capacity(n);
    out.push((signal[1] - signal[0]) / dt);
    for i in 1..n - 1 {
        out.push((signal[i + 1] - signal[i - 1]) / (2.0 * dt));
    }
    out.push((signal[n - 1] - signal[n - 2]) / dt);
    Ok(out)
}

/// Rolling mean with a centered window of `width` samples (odd widths
/// recommended); edges shrink the window.
pub fn rolling_mean(signal: &[f64], width: usize) -> Result<Vec<f64>, TransformError> {
    if width == 0 {
        return Err(TransformError::InvalidInput("width 0".into()));
    }
    let half = width / 2;
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let s: f64 = signal[lo..hi].iter().sum();
        out.push(s / (hi - lo) as f64);
    }
    Ok(out)
}

/// Rolling standard deviation (population) with the same window rules.
pub fn rolling_std(signal: &[f64], width: usize) -> Result<Vec<f64>, TransformError> {
    if width == 0 {
        return Err(TransformError::InvalidInput("width 0".into()));
    }
    let half = width / 2;
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let w = &signal[lo..hi];
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let var = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / w.len() as f64;
        out.push(var.sqrt());
    }
    Ok(out)
}

/// In-place iterative radix-2 FFT (decimation in time).
/// `re`/`im` length must be a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64]) -> Result<(), TransformError> {
    let n = re.len();
    if n != im.len() {
        return Err(TransformError::InvalidInput("re/im length mismatch".into()));
    }
    if n == 0 || n & (n - 1) != 0 {
        return Err(TransformError::InvalidInput(format!(
            "FFT length {n} is not a power of two"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut cur_r = 1.0;
            let mut cur_i = 0.0;
            for k in 0..len / 2 {
                let a = i + k;
                let b = i + k + len / 2;
                let tr = re[b] * cur_r - im[b] * cur_i;
                let ti = re[b] * cur_i + im[b] * cur_r;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// One-sided power spectral density of a real signal (length must be a
/// power of two). Returns `n/2 + 1` bins; bin `k` covers frequency
/// `k * fs / n`.
pub fn power_spectrum(signal: &[f64]) -> Result<Vec<f64>, TransformError> {
    let n = signal.len();
    let mut re = signal.to_vec();
    let mut im = vec![0.0; n];
    fft_inplace(&mut re, &mut im)?;
    let scale = 1.0 / n as f64;
    let mut out = Vec::with_capacity(n / 2 + 1);
    for k in 0..=n / 2 {
        let p = (re[k] * re[k] + im[k] * im[k]) * scale;
        // Double interior bins for the one-sided spectrum.
        out.push(if k == 0 || k == n / 2 { p } else { 2.0 * p });
    }
    Ok(out)
}

/// Band power features: integrate the power spectrum over `bands`
/// (inclusive bin ranges as fractions of Nyquist, e.g. `(0.0, 0.1)`).
pub fn band_powers(spectrum: &[f64], bands: &[(f64, f64)]) -> Result<Vec<f64>, TransformError> {
    if spectrum.is_empty() {
        return Err(TransformError::InvalidInput("empty spectrum".into()));
    }
    let top = (spectrum.len() - 1) as f64;
    bands
        .iter()
        .map(|&(lo, hi)| {
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || hi < lo {
                return Err(TransformError::InvalidInput(format!(
                    "bad band ({lo}, {hi})"
                )));
            }
            let a = (lo * top).round() as usize;
            let b = (hi * top).round() as usize;
            Ok(spectrum[a..=b].iter().sum())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_ramp_is_constant() {
        let signal: Vec<f64> = (0..100).map(|i| 3.0 * i as f64).collect();
        let d = derivative(&signal, 1.0).unwrap();
        assert!(d.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn derivative_of_sine_is_cosine() {
        let dt = 0.001;
        let signal: Vec<f64> = (0..1000).map(|i| (i as f64 * dt * 10.0).sin()).collect();
        let d = derivative(&signal, dt).unwrap();
        for (i, &di) in d.iter().enumerate().take(990).skip(10) {
            let expect = 10.0 * (i as f64 * dt * 10.0).cos();
            assert!((di - expect).abs() < 1e-3, "i={i}: {di} vs {expect}");
        }
    }

    #[test]
    fn derivative_edge_cases() {
        assert_eq!(derivative(&[], 1.0).unwrap(), Vec::<f64>::new());
        assert_eq!(derivative(&[5.0], 1.0).unwrap(), vec![0.0]);
        assert!(derivative(&[1.0, 2.0], 0.0).is_err());
        assert!(derivative(&[1.0, 2.0], -1.0).is_err());
    }

    #[test]
    fn rolling_mean_smooths() {
        let signal = vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let m = rolling_mean(&signal, 3).unwrap();
        // Interior windows hold {0,10,0} or {10,0,10}: means 10/3 and 20/3,
        // both far from the raw 0/10 swings.
        for &v in &m[1..5] {
            assert!(v > 3.0 && v < 7.0, "smoothed value {v}");
        }
        assert_eq!(m.len(), signal.len());
        assert!(rolling_mean(&signal, 0).is_err());
    }

    #[test]
    fn rolling_mean_constant_signal() {
        let m = rolling_mean(&[4.0; 10], 5).unwrap();
        assert!(m.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn rolling_std_detects_burst() {
        let mut signal = vec![1.0; 50];
        for v in signal.iter_mut().skip(20).take(5) {
            *v = 10.0;
        }
        let s = rolling_std(&signal, 5).unwrap();
        // Burst edges mix 1.0 and 10.0 inside the window → large std;
        // window fully inside the burst (or fully outside) → zero std.
        assert!(s[19] > 1.0, "edge std {}", s[19]);
        assert!(s[25] > 1.0, "edge std {}", s[25]);
        assert!(s[22] < 1e-12, "inside-burst std {}", s[22]);
        assert!(s[5] < 1e-12);
    }

    #[test]
    fn fft_of_pure_tone_peaks_at_bin() {
        let n = 256;
        let freq_bin = 16;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_bin as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&signal).unwrap();
        assert_eq!(spec.len(), n / 2 + 1);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, freq_bin);
        // Energy concentrated: peak ≥ 100x any non-adjacent bin.
        for (k, &p) in spec.iter().enumerate() {
            if (k as isize - freq_bin as isize).abs() > 1 {
                assert!(spec[peak] > 100.0 * p.max(1e-30), "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn fft_parseval() {
        // Total signal energy equals total spectral power (both averaged).
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let spec = power_spectrum(&signal).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum::<f64>() / n as f64;
        let spec_energy: f64 = spec.iter().sum::<f64>() / n as f64;
        assert!(
            (time_energy - spec_energy).abs() < 1e-9,
            "{time_energy} vs {spec_energy}"
        );
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 100];
        let mut im = vec![0.0; 100];
        assert!(fft_inplace(&mut re, &mut im).is_err());
        let mut re2 = vec![0.0; 4];
        let mut im2 = vec![0.0; 3];
        assert!(fft_inplace(&mut re2, &mut im2).is_err());
    }

    #[test]
    fn fft_dc_signal() {
        let spec = power_spectrum(&[3.0; 64]).unwrap();
        assert!(spec[0] > 0.0);
        for &p in &spec[1..] {
            assert!(p < 1e-20);
        }
    }

    #[test]
    fn band_power_partition_sums_to_total() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() + 0.3).collect();
        let spec = power_spectrum(&signal).unwrap();
        let bands = band_powers(&spec, &[(0.0, 1.0)]).unwrap();
        let total: f64 = spec.iter().sum();
        assert!((bands[0] - total).abs() < 1e-12);
    }

    #[test]
    fn band_power_validation() {
        let spec = vec![1.0; 10];
        assert!(band_powers(&spec, &[(0.5, 0.2)]).is_err());
        assert!(band_powers(&spec, &[(-0.1, 0.5)]).is_err());
        assert!(band_powers(&[], &[(0.0, 1.0)]).is_err());
    }
}
