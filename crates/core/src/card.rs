//! Dataset cards — the paper's §5 "Data Quality, Bias, and Fairness"
//! remedy ("Datasheets for Datasets or Data Cards can help identify
//! potential biases"), generated from a manifest + quality reports +
//! assessment.

use crate::assess::Assessment;
use crate::dataset::DatasetManifest;
use crate::quality::QualityReport;
use drai_io::json::Json;

/// A generated dataset card.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetCard {
    /// Manifest snapshot.
    pub manifest: DatasetManifest,
    /// Overall + per-stage readiness at generation time.
    pub assessment: Assessment,
    /// Per-variable quality reports.
    pub quality: Vec<QualityReport>,
}

impl DatasetCard {
    /// Assemble a card.
    pub fn new(
        manifest: DatasetManifest,
        assessment: Assessment,
        quality: Vec<QualityReport>,
    ) -> DatasetCard {
        DatasetCard {
            manifest,
            assessment,
            quality,
        }
    }

    /// Bias warnings derived from the quality reports: imbalance,
    /// missingness, outlier contamination.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for q in &self.quality {
            if q.imbalance_ratio > 3.0 {
                out.push(format!(
                    "{}: distribution imbalance ratio {:.1} — consider reweighting/resampling",
                    q.name, q.imbalance_ratio
                ));
            }
            if q.missing_fraction > 0.05 {
                out.push(format!(
                    "{}: {:.1}% missing — imputation strategy should be documented",
                    q.name,
                    q.missing_fraction * 100.0
                ));
            }
            if q.outlier_fraction > 0.01 {
                out.push(format!(
                    "{}: {:.2}% gross outliers (|z| > 5) — check sensor glitches",
                    q.name,
                    q.outlier_fraction * 100.0
                ));
            }
        }
        if self.manifest.requires_anonymization && !self.manifest.anonymized {
            out.push("dataset contains PHI/PII but is NOT anonymized — do not release".into());
        }
        if self.manifest.label_coverage < 1.0 {
            out.push(format!(
                "label coverage {:.0}% — consider pseudo-labeling for the remainder",
                self.manifest.label_coverage * 100.0
            ));
        }
        out
    }

    /// Render as Markdown (the human-facing datasheet).
    pub fn to_markdown(&self) -> String {
        let m = &self.manifest;
        let mut md = String::new();
        md.push_str(&format!("# Dataset card: {}\n\n", m.name));
        md.push_str(&format!(
            "- **Domain:** {}\n- **Modality:** {}\n- **Records:** {}\n- **Readiness:** {}\n\n",
            m.domain,
            m.modality.name(),
            m.records,
            self.assessment.overall
        ));
        md.push_str("## Schema\n\n| Variable | dtype | unit | shape |\n|---|---|---|---|\n");
        for v in &m.schema {
            md.push_str(&format!(
                "| {} | {} | {} | {:?} |\n",
                v.name, v.dtype, v.unit, v.shape
            ));
        }
        md.push_str("\n## Readiness per stage\n\n| Stage | Level |\n|---|---|\n");
        for (stage, level) in &self.assessment.per_stage {
            md.push_str(&format!("| {} | {} |\n", stage.label(), level));
        }
        if let Some(d) = self.assessment.blocking() {
            md.push_str(&format!(
                "\n**Blocked from {} by {}:** {}\n",
                d.blocked_level,
                d.stage.label(),
                d.reason
            ));
        }
        md.push_str("\n## Quality\n\n| Variable | missing | mean | std | outliers | imbalance |\n|---|---|---|---|---|---|\n");
        for q in &self.quality {
            md.push_str(&format!(
                "| {} | {:.2}% | {:.4} | {:.4} | {:.2}% | {:.2} |\n",
                q.name,
                q.missing_fraction * 100.0,
                q.mean,
                q.std,
                q.outlier_fraction * 100.0,
                q.imbalance_ratio
            ));
        }
        let warnings = self.warnings();
        if !warnings.is_empty() {
            md.push_str("\n## Warnings\n\n");
            for w in &warnings {
                md.push_str(&format!("- ⚠ {w}\n"));
            }
        }
        md
    }

    /// Render as JSON (the machine-facing card).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("manifest", self.manifest.to_json()),
            (
                "readiness",
                Json::obj([
                    ("overall", Json::from(self.assessment.overall.to_string())),
                    (
                        "per_stage",
                        Json::Arr(
                            self.assessment
                                .per_stage
                                .iter()
                                .map(|(s, l)| {
                                    Json::obj([
                                        ("stage", Json::from(s.label())),
                                        ("level", Json::from(l.number() as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "quality",
                Json::Arr(self.quality.iter().map(|q| q.to_json()).collect()),
            ),
            (
                "warnings",
                Json::Arr(self.warnings().into_iter().map(Json::from).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assess::ReadinessAssessor;
    use crate::dataset::{Modality, VariableSpec};

    fn sample_card() -> DatasetCard {
        let mut m = DatasetManifest::raw("card-test", "fusion", Modality::TimeSeries, 500);
        m.standard_format = true;
        m.ingest_validated = true;
        m.aligned_initial = true;
        m.schema.push(VariableSpec {
            name: "ip".into(),
            dtype: drai_tensor::DType::F32,
            unit: "MA".into(),
            shape: vec![64],
        });
        m.label_coverage = 0.6;
        let assessment = ReadinessAssessor::new().assess(&m).unwrap();
        let good = QualityReport::compute("ip", &(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let mut skewed_vals = vec![0.5; 950];
        skewed_vals.extend((0..50).map(|i| i as f64));
        skewed_vals.push(f64::NAN);
        let skewed = QualityReport::compute("vloop", &skewed_vals);
        DatasetCard::new(m, assessment, vec![good, skewed])
    }

    #[test]
    fn warnings_catch_imbalance_and_labels() {
        let card = sample_card();
        let warnings = card.warnings();
        assert!(
            warnings.iter().any(|w| w.contains("imbalance")),
            "{warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("label coverage")),
            "{warnings:?}"
        );
    }

    #[test]
    fn phi_warning_when_not_anonymized() {
        let mut card = sample_card();
        card.manifest.requires_anonymization = true;
        card.manifest.anonymized = false;
        assert!(card.warnings().iter().any(|w| w.contains("NOT anonymized")));
        card.manifest.anonymized = true;
        assert!(!card.warnings().iter().any(|w| w.contains("NOT anonymized")));
    }

    #[test]
    fn markdown_contains_sections() {
        let md = sample_card().to_markdown();
        assert!(md.contains("# Dataset card: card-test"));
        assert!(md.contains("## Schema"));
        assert!(md.contains("| ip | f32 | MA |"));
        assert!(md.contains("## Readiness per stage"));
        assert!(md.contains("**Blocked from"));
        assert!(md.contains("## Warnings"));
    }

    #[test]
    fn json_card_parses() {
        let card = sample_card();
        let text = card.to_json().to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("manifest")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("card-test")
        );
        assert!(parsed.get("warnings").unwrap().as_arr().unwrap().len() >= 2);
    }

    #[test]
    fn clean_dataset_no_warnings() {
        let mut m = DatasetManifest::raw("clean", "demo", Modality::Tabular, 10);
        m.label_coverage = 1.0;
        // Manifest at level 1 is fine for card purposes.
        let assessment = ReadinessAssessor::new().assess(&m).unwrap();
        let q = QualityReport::compute("x", &(0..100).map(|i| (i % 10) as f64).collect::<Vec<_>>());
        let card = DatasetCard::new(m, assessment, vec![q]);
        assert!(card.warnings().is_empty(), "{:?}", card.warnings());
    }
}
