//! Throughput and latency accounting shared by pipeline runs and the
//! bench harness.

use drai_telemetry::Stopwatch;
use std::time::Duration;

/// Accumulated work counters for one stage or run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Records processed.
    pub records: u64,
    /// Payload bytes processed.
    pub bytes: u64,
    /// Wall time spent.
    pub elapsed: Duration,
}

impl Throughput {
    /// Records per second (0 when no time elapsed).
    pub fn records_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.records as f64 / s
        } else {
            0.0
        }
    }

    /// Mebibytes per second.
    pub fn mib_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.bytes as f64 / (1024.0 * 1024.0) / s
        } else {
            0.0
        }
    }

    /// Merge with another accumulator (durations add; for parallel stages
    /// merge wall time separately).
    pub fn merge(&self, other: &Throughput) -> Throughput {
        Throughput {
            records: self.records + other.records,
            bytes: self.bytes + other.bytes,
            elapsed: self.elapsed + other.elapsed,
        }
    }
}

/// Scope timer that records into a `Throughput` on drop.
pub struct Timer {
    start: Stopwatch,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Start timing now.
    pub fn new() -> Timer {
        Timer {
            start: Stopwatch::start(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Finish, producing a throughput record.
    pub fn finish(self, records: u64, bytes: u64) -> Throughput {
        Throughput {
            records,
            bytes,
            elapsed: self.start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_computed() {
        let t = Throughput {
            records: 1000,
            bytes: 10 * 1024 * 1024,
            elapsed: Duration::from_secs(2),
        };
        assert!((t.records_per_sec() - 500.0).abs() < 1e-9);
        assert!((t.mib_per_sec() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_is_zero_rate() {
        let t = Throughput::default();
        assert_eq!(t.records_per_sec(), 0.0);
        assert_eq!(t.mib_per_sec(), 0.0);
    }

    #[test]
    fn merge_adds() {
        let a = Throughput {
            records: 10,
            bytes: 100,
            elapsed: Duration::from_millis(5),
        };
        let b = Throughput {
            records: 20,
            bytes: 200,
            elapsed: Duration::from_millis(10),
        };
        let m = a.merge(&b);
        assert_eq!(m.records, 30);
        assert_eq!(m.bytes, 300);
        assert_eq!(m.elapsed, Duration::from_millis(15));
    }

    #[test]
    fn timer_measures() {
        let timer = Timer::new();
        std::thread::sleep(Duration::from_millis(10));
        let t = timer.finish(1, 1);
        assert!(t.elapsed >= Duration::from_millis(9));
    }
}
