//! The readiness assessor: derives a dataset's position in the maturity
//! matrix from manifest evidence.
//!
//! Assessment is per-stage: each processing stage earns the highest level
//! whose Table 2 criteria the evidence satisfies, and the dataset's
//! overall level is the minimum across stages *applicable at the next
//! level* — readiness is gated by the weakest stage, mirroring how the
//! paper describes datasets "bottlenecked by domain-specific constraints".

use crate::dataset::DatasetManifest;
use crate::readiness::{MaturityMatrix, ProcessingStage, ReadinessLevel};

/// Why a stage failed to reach the next level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deficiency {
    /// The stage that is holding the dataset back.
    pub stage: ProcessingStage,
    /// The level that could not be reached.
    pub blocked_level: ReadinessLevel,
    /// Human-readable reason.
    pub reason: String,
}

/// Result of assessing a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Assessment {
    /// Overall readiness level (minimum over stage gates).
    pub overall: ReadinessLevel,
    /// Level achieved per stage (for stages applicable at `overall`'s
    /// successor; stages beyond the overall level report their own gate).
    pub per_stage: Vec<(ProcessingStage, ReadinessLevel)>,
    /// What blocks promotion to the next level (empty at level 5).
    pub deficiencies: Vec<Deficiency>,
}

impl Assessment {
    /// The first deficiency blocking promotion, if any.
    pub fn blocking(&self) -> Option<&Deficiency> {
        self.deficiencies.first()
    }
}

/// Derives readiness levels from manifests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadinessAssessor {
    /// Label coverage required for "comprehensive labeling" (level 4).
    /// Defaults to 0.95.
    pub comprehensive_label_coverage: f64,
    /// Maximum missing fraction tolerated at level ≥ 3. Defaults to 0.05.
    pub max_missing_fraction: f64,
}

impl ReadinessAssessor {
    /// Assessor with the default thresholds.
    pub fn new() -> ReadinessAssessor {
        ReadinessAssessor {
            comprehensive_label_coverage: 0.95,
            max_missing_fraction: 0.05,
        }
    }

    /// Does `manifest` satisfy the criteria of `(level, stage)`?
    ///
    /// N/A cells are vacuously satisfied (a raw dataset is not penalized
    /// for having no shard story — that cell is grey in Table 2).
    pub fn satisfies(
        &self,
        m: &DatasetManifest,
        level: ReadinessLevel,
        stage: ProcessingStage,
    ) -> Result<(), String> {
        use ProcessingStage as S;
        use ReadinessLevel as L;
        if !MaturityMatrix::applicable(level, stage) {
            return Ok(());
        }
        let need = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(what.to_string())
            }
        };
        match (level, stage) {
            (L::Raw, S::Ingest) => need(m.records > 0, "no records acquired"),

            (L::Cleaned, S::Ingest) => need(
                m.standard_format && m.ingest_validated,
                "not validated into a standard format",
            ),
            (L::Cleaned, S::Preprocess) => {
                need(m.aligned_initial, "no initial alignment/regridding")
            }

            (L::Labeled, S::Ingest) => need(
                m.metadata_enriched && !m.schema.is_empty(),
                "metadata/schema not enriched",
            ),
            (L::Labeled, S::Preprocess) => {
                need(m.aligned_standardized, "alignment not standardized")?;
                need(
                    m.missing_fraction <= self.max_missing_fraction,
                    "too many missing values after preprocessing",
                )
            }
            (L::Labeled, S::Transform) => {
                need(m.normalized_initial, "no initial normalization")?;
                if m.requires_anonymization {
                    need(m.anonymized, "PHI/PII present but not anonymized")?;
                }
                need(m.label_coverage > 0.0, "no labels at all")
            }

            (L::FeatureEngineered, S::Ingest) => need(
                m.high_throughput_ingest,
                "ingestion not high-throughput/parallel",
            ),
            (L::FeatureEngineered, S::Preprocess) => {
                need(m.aligned_standardized, "alignment not fully standardized")
            }
            (L::FeatureEngineered, S::Transform) => {
                need(m.normalized_final, "normalization not finalized")?;
                need(
                    m.label_coverage >= self.comprehensive_label_coverage,
                    "labeling not comprehensive",
                )
            }
            (L::FeatureEngineered, S::Structure) => {
                need(m.features_extracted, "domain features not extracted")
            }

            (L::FullyAiReady, S::Ingest) => need(m.ingest_automated, "ingestion not automated"),
            (L::FullyAiReady, S::Preprocess) => {
                need(m.alignment_automated, "alignment not integrated/automated")
            }
            (L::FullyAiReady, S::Transform) => {
                need(m.transform_audited, "transform not automated and audited")
            }
            (L::FullyAiReady, S::Structure) => {
                need(m.features_validated, "feature extraction not validated")
            }
            (L::FullyAiReady, S::Shard) => {
                need(m.split_assigned, "train/val/test split not assigned")?;
                need(m.sharded, "not sharded into binary formats")
            }
            // Every remaining (level, stage) pair is an N/A cell, already
            // returned Ok above via the applicability check.
            _ => Ok(()),
        }
    }

    /// Highest level every applicable stage criterion satisfies.
    pub fn assess(&self, m: &DatasetManifest) -> Result<Assessment, crate::CoreError> {
        m.validate()?;
        let mut overall = ReadinessLevel::Raw;
        let mut deficiencies = Vec::new();

        // Walk levels upward; stop at the first level with any deficiency.
        'levels: for level in ReadinessLevel::ALL {
            let mut level_deficiencies = Vec::new();
            for stage in ProcessingStage::ALL {
                if let Err(reason) = self.satisfies(m, level, stage) {
                    level_deficiencies.push(Deficiency {
                        stage,
                        blocked_level: level,
                        reason,
                    });
                }
            }
            if level_deficiencies.is_empty() {
                overall = level;
            } else {
                deficiencies = level_deficiencies;
                break 'levels;
            }
        }

        // Per-stage achieved levels (independent walk per stage).
        let per_stage = ProcessingStage::ALL
            .iter()
            .map(|&stage| {
                let mut achieved = ReadinessLevel::Raw;
                for level in ReadinessLevel::ALL {
                    if self.satisfies(m, level, stage).is_ok() {
                        achieved = level;
                    } else {
                        break;
                    }
                }
                (stage, achieved)
            })
            .collect();

        Ok(Assessment {
            overall,
            per_stage,
            deficiencies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Modality, VariableSpec};
    use drai_tensor::DType;

    fn manifest_at_level(n: u8) -> DatasetManifest {
        let mut m = DatasetManifest::raw("test", "climate", Modality::Grid, 100);
        if n >= 2 {
            m.standard_format = true;
            m.ingest_validated = true;
            m.aligned_initial = true;
        }
        if n >= 3 {
            m.metadata_enriched = true;
            m.schema.push(VariableSpec {
                name: "tas".into(),
                dtype: DType::F32,
                unit: "K".into(),
                shape: vec![64, 128],
            });
            m.aligned_standardized = true;
            m.normalized_initial = true;
            m.label_coverage = 0.3;
        }
        if n >= 4 {
            m.high_throughput_ingest = true;
            m.normalized_final = true;
            m.label_coverage = 1.0;
            m.features_extracted = true;
        }
        if n >= 5 {
            m.ingest_automated = true;
            m.alignment_automated = true;
            m.transform_audited = true;
            m.features_validated = true;
            m.split_assigned = true;
            m.sharded = true;
        }
        m
    }

    #[test]
    fn ladder_levels_assess_correctly() {
        let assessor = ReadinessAssessor::new();
        for n in 1..=5u8 {
            let m = manifest_at_level(n);
            let a = assessor.assess(&m).unwrap();
            assert_eq!(
                a.overall,
                ReadinessLevel::from_number(n).unwrap(),
                "manifest staged for level {n} assessed as {}",
                a.overall
            );
        }
    }

    #[test]
    fn fully_ready_has_no_deficiencies() {
        let a = ReadinessAssessor::new()
            .assess(&manifest_at_level(5))
            .unwrap();
        assert!(a.deficiencies.is_empty());
        assert!(a.blocking().is_none());
        for (_, l) in &a.per_stage {
            assert_eq!(*l, ReadinessLevel::FullyAiReady);
        }
    }

    #[test]
    fn raw_dataset_blocked_at_cleaned() {
        let a = ReadinessAssessor::new()
            .assess(&manifest_at_level(1))
            .unwrap();
        assert_eq!(a.overall, ReadinessLevel::Raw);
        let b = a.blocking().unwrap();
        assert_eq!(b.blocked_level, ReadinessLevel::Cleaned);
    }

    #[test]
    fn weakest_stage_gates_overall() {
        // Everything at level 5 except sharding.
        let mut m = manifest_at_level(5);
        m.sharded = false;
        let a = ReadinessAssessor::new().assess(&m).unwrap();
        assert_eq!(a.overall, ReadinessLevel::FeatureEngineered);
        let d = a.blocking().unwrap();
        assert_eq!(d.stage, ProcessingStage::Shard);
        assert!(d.reason.contains("sharded"));
        // Other stages still report level 5 individually.
        let ingest = a
            .per_stage
            .iter()
            .find(|(s, _)| *s == ProcessingStage::Ingest)
            .unwrap();
        assert_eq!(ingest.1, ReadinessLevel::FullyAiReady);
    }

    #[test]
    fn anonymization_required_for_phi_data() {
        let mut m = manifest_at_level(3);
        m.domain = "bio".into();
        m.requires_anonymization = true;
        m.anonymized = false;
        let a = ReadinessAssessor::new().assess(&m).unwrap();
        assert_eq!(a.overall, ReadinessLevel::Cleaned);
        assert!(a
            .deficiencies
            .iter()
            .any(|d| d.reason.contains("anonymized")));
        m.anonymized = true;
        let a2 = ReadinessAssessor::new().assess(&m).unwrap();
        assert_eq!(a2.overall, ReadinessLevel::Labeled);
    }

    #[test]
    fn missing_values_block_level3() {
        let mut m = manifest_at_level(3);
        m.missing_fraction = 0.5;
        let a = ReadinessAssessor::new().assess(&m).unwrap();
        assert_eq!(a.overall, ReadinessLevel::Cleaned);
        assert!(a.deficiencies.iter().any(|d| d.reason.contains("missing")));
    }

    #[test]
    fn label_coverage_thresholds() {
        let assessor = ReadinessAssessor::new();
        let mut m = manifest_at_level(4);
        m.label_coverage = 0.5; // below comprehensive threshold
        let a = assessor.assess(&m).unwrap();
        assert_eq!(a.overall, ReadinessLevel::Labeled);
        m.label_coverage = 0.96;
        assert_eq!(
            assessor.assess(&m).unwrap().overall,
            ReadinessLevel::FeatureEngineered
        );
    }

    #[test]
    fn custom_thresholds() {
        let strict = ReadinessAssessor {
            comprehensive_label_coverage: 1.0,
            max_missing_fraction: 0.0,
        };
        let mut m = manifest_at_level(4);
        m.label_coverage = 0.99;
        assert_eq!(strict.assess(&m).unwrap().overall, ReadinessLevel::Labeled);
    }

    #[test]
    fn empty_dataset_not_even_raw_acquisition() {
        let m = DatasetManifest::raw("empty", "climate", Modality::Grid, 0);
        let a = ReadinessAssessor::new().assess(&m).unwrap();
        // Level 1's Ingest cell requires records > 0, so the walk stops
        // immediately; overall stays at the floor.
        assert_eq!(a.overall, ReadinessLevel::Raw);
        assert!(a
            .deficiencies
            .iter()
            .any(|d| d.blocked_level == ReadinessLevel::Raw));
    }

    #[test]
    fn invalid_manifest_rejected() {
        let mut m = manifest_at_level(3);
        m.label_coverage = 2.0;
        assert!(ReadinessAssessor::new().assess(&m).is_err());
    }
}
