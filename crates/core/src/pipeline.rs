//! The pipeline execution engine: named stages over a shared artifact
//! type, per-stage metrics, rayon batch execution, and the iterative
//! refinement loop of Figure 1 ("data preparation outcomes inform
//! subsequent model training, and model performance provides feedback").
//!
//! Every run also reports into the context registry
//! (`drai_telemetry::Registry::current`, falling back to the global
//! one): `run` emits a root `pipeline.<pipeline>.run` span containing
//! one span per stage named `pipeline.<pipeline>.<stage>` carrying the
//! stage's record/byte counters, `run_batch` emits a
//! `pipeline.<pipeline>.run_batch` span plus merged per-stage counters
//! and latency histograms, and `run_iterative` wraps the whole
//! feedback loop in a span whose item count is the number of passes.
//! Stage spans are *entered* while the stage function runs, so spans
//! opened by the I/O layer inside a stage (shard writes, prefetch
//! workers, retries) attach under that stage in the trace tree.

use crate::metrics::Throughput;
use crate::readiness::ProcessingStage;
use crate::CoreError;
use drai_telemetry::{Registry, Span, Stopwatch};
use rayon::prelude::*;
use std::sync::Arc;

/// Counters a stage can report about the work it did.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCounters {
    /// Records consumed/produced.
    pub records: u64,
    /// Bytes consumed/produced.
    pub bytes: u64,
}

type StageFn<T> = dyn Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync;
type FastFn<T> = dyn Fn(T, &mut StageCounters) -> FastPath<T> + Send + Sync;

/// Outcome of a stage's optional *fast path* — a cheap pre-check that
/// can produce the stage's output without running the full stage
/// function (e.g. a cache probe). A fast path is infallible by
/// construction: anything that goes wrong degrades to [`FastPath::Miss`]
/// and the full function runs.
pub enum FastPath<T> {
    /// The fast path produced the stage output; the stage function is
    /// skipped. Counters set by the fast path are kept.
    Hit(T),
    /// No shortcut; the input is handed back for the full function.
    Miss(T),
}

/// One pipeline stage: a name, its processing-stage classification, the
/// transformation function, and an optional fast path tried first.
pub struct StageDef<T> {
    pub(crate) name: String,
    pub(crate) kind: ProcessingStage,
    pub(crate) func: Arc<StageFn<T>>,
    pub(crate) fast: Option<Arc<FastFn<T>>>,
}

impl<T> Clone for StageDef<T> {
    fn clone(&self) -> Self {
        StageDef {
            name: self.name.clone(),
            kind: self.kind,
            func: self.func.clone(),
            fast: self.fast.clone(),
        }
    }
}

/// Timing/volume record for one executed stage.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Stage name.
    pub name: String,
    /// Stage classification (which maturity-matrix column it advances).
    pub kind: ProcessingStage,
    /// Work done.
    pub throughput: Throughput,
}

/// A finished per-item run plus each stage's `(start, end)` window in
/// nanoseconds relative to the batch epoch — what `run_windowed` hands
/// back to the batch mergers.
type WindowedRun<T> = (PipelineRun<T>, Vec<(u64, u64)>);

/// Result of a pipeline run: the final artifact plus per-stage metrics.
#[derive(Debug)]
pub struct PipelineRun<T> {
    /// Final artifact.
    pub output: T,
    /// Metrics per executed stage, in order.
    pub stages: Vec<StageMetrics>,
}

impl<T> PipelineRun<T> {
    /// Total wall time across stages.
    pub fn total_elapsed(&self) -> std::time::Duration {
        self.stages.iter().map(|s| s.throughput.elapsed).sum()
    }

    /// Metrics for a named stage.
    pub fn stage(&self, name: &str) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder<T> {
    name: String,
    stages: Vec<StageDef<T>>,
}

impl<T> PipelineBuilder<T> {
    /// Add a stage.
    pub fn stage(
        mut self,
        name: &str,
        kind: ProcessingStage,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(StageDef {
            name: name.to_string(),
            kind,
            func: Arc::new(func),
            fast: None,
        });
        self
    }

    /// Add a stage with a *fast path*: `fast` is tried first and may
    /// produce the stage output outright ([`FastPath::Hit`]), in which
    /// case `func` never runs. Used by the cache layer to probe for a
    /// memoized result, and by the streaming executor to short-circuit
    /// a stage's channel hop entirely on a hit.
    pub fn stage_with_fast_path(
        mut self,
        name: &str,
        kind: ProcessingStage,
        fast: impl Fn(T, &mut StageCounters) -> FastPath<T> + Send + Sync + 'static,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(StageDef {
            name: name.to_string(),
            kind,
            func: Arc::new(func),
            fast: Some(Arc::new(fast)),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Pipeline<T> {
        Pipeline {
            name: self.name,
            stages: self.stages,
        }
    }
}

impl<T: Clone + 'static> PipelineBuilder<T> {
    /// Add a stage that is re-attempted up to `max_attempts` times when
    /// its function fails — the pipeline-level counterpart of the I/O
    /// layer's `RetrySink`, for stages that talk to flaky storage or
    /// services. The input is cloned per attempt (hence `T: Clone`),
    /// counters reflect only the successful attempt, and the run aborts
    /// with the *last* error once attempts are exhausted. Retries are
    /// immediate (no sleeping): stage work dominates any sensible
    /// backoff, and determinism matters more here than politeness.
    ///
    /// Telemetry: each re-attempt increments
    /// `pipeline.<pipeline>.<stage>.retries`.
    pub fn retry_stage(
        mut self,
        name: &str,
        kind: ProcessingStage,
        max_attempts: u32,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        let pipeline_name = self.name.clone();
        let stage_name = name.to_string();
        let wrapped = move |input: T, counters: &mut StageCounters| {
            let mut last_err = String::new();
            for attempt in 0..max_attempts {
                let mut local = StageCounters::default();
                match func(input.clone(), &mut local) {
                    Ok(out) => {
                        *counters = local;
                        return Ok(out);
                    }
                    Err(e) => {
                        last_err = e;
                        if attempt + 1 < max_attempts {
                            Registry::current()
                                .counter(&format!("pipeline.{pipeline_name}.{stage_name}.retries"))
                                .incr();
                        }
                    }
                }
            }
            Err(format!("exhausted {max_attempts} attempts: {last_err}"))
        };
        self.stages.push(StageDef {
            name: name.to_string(),
            kind,
            func: Arc::new(wrapped),
            fast: None,
        });
        self
    }
}

/// An ordered sequence of named stages over artifact type `T`.
///
/// `T` is whatever the domain moves between stages — a tensor bundle, a
/// set of shot records, file paths. Stages run in order; each failure
/// aborts the run with the failing stage named.
pub struct Pipeline<T> {
    pub(crate) name: String,
    pub(crate) stages: Vec<StageDef<T>>,
}

impl<T> Clone for Pipeline<T> {
    fn clone(&self) -> Self {
        Pipeline {
            name: self.name.clone(),
            stages: self.stages.clone(),
        }
    }
}

impl<T> Pipeline<T> {
    /// Start a builder.
    pub fn builder(name: &str) -> PipelineBuilder<T> {
        PipelineBuilder {
            name: name.to_string(),
            stages: Vec::new(),
        }
    }

    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stage names in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name.as_str()).collect()
    }

    /// The ordered processing-stage kinds (used to check a domain
    /// pipeline covers the canonical ingest→…→shard sequence).
    pub fn stage_kinds(&self) -> Vec<ProcessingStage> {
        self.stages.iter().map(|s| s.kind).collect()
    }

    /// Run sequentially on one artifact, emitting one telemetry span
    /// per stage.
    pub fn run(&self, input: T) -> Result<PipelineRun<T>, CoreError> {
        self.run_inner(input, true)
    }

    /// Telemetry name for one of this pipeline's stages.
    fn stage_metric(&self, stage: &str) -> String {
        format!("pipeline.{}.{}", self.name, stage)
    }

    fn run_inner(&self, input: T, telemetry: bool) -> Result<PipelineRun<T>, CoreError> {
        let epoch = Stopwatch::start();
        self.run_windowed(input, telemetry, epoch)
            .map(|(run, _)| run)
    }

    /// Execute one stage on one artifact: try the fast path first, then
    /// the full function. Shared by the sequential runner and the
    /// streaming executor so both observe identical stage semantics.
    pub(crate) fn execute_stage(
        stage: &StageDef<T>,
        input: T,
        counters: &mut StageCounters,
    ) -> Result<T, String> {
        let current = match &stage.fast {
            Some(fast) => match fast(input, counters) {
                FastPath::Hit(output) => return Ok(output),
                FastPath::Miss(input) => input,
            },
            None => input,
        };
        (stage.func)(current, counters)
    }

    /// Sequential run that additionally reports each stage's
    /// `(start, end)` window in nanoseconds relative to `epoch`, so
    /// batch callers can compute per-stage wall-clock across items.
    fn run_windowed(
        &self,
        input: T,
        telemetry: bool,
        epoch: Stopwatch,
    ) -> Result<WindowedRun<T>, CoreError> {
        let registry = Registry::current();
        // Root span for the whole run; stage spans nest under it, and
        // it in turn nests under whatever context the caller entered
        // (e.g. a domain's `domain.<name>.run`).
        let run_span = telemetry.then(|| registry.span(format!("pipeline.{}.run", self.name)));
        let _in_run = run_span.as_ref().map(Span::enter);
        let mut current = input;
        let mut metrics = Vec::with_capacity(self.stages.len());
        let mut windows = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let span = telemetry.then(|| registry.span(self.stage_metric(&stage.name)));
            let start_ns = epoch.elapsed_ns();
            let start = Stopwatch::start();
            let mut counters = StageCounters::default();
            // Entered while the stage function runs so I/O-layer spans
            // opened inside it parent under this stage.
            let in_stage = span.as_ref().map(Span::enter);
            let result = Self::execute_stage(stage, current, &mut counters);
            drop(in_stage);
            current = result.map_err(|message| CoreError::Stage {
                stage: stage.name.clone(),
                message,
            })?;
            if let Some(span) = &span {
                span.add_items(counters.records);
                span.add_bytes(counters.bytes);
                let base = self.stage_metric(&stage.name);
                registry
                    .counter(&format!("{base}.records"))
                    .add(counters.records);
                registry
                    .counter(&format!("{base}.bytes"))
                    .add(counters.bytes);
            }
            windows.push((start_ns, epoch.elapsed_ns()));
            metrics.push(StageMetrics {
                name: stage.name.clone(),
                kind: stage.kind,
                throughput: Throughput {
                    records: counters.records,
                    bytes: counters.bytes,
                    elapsed: start.elapsed(),
                },
            });
        }
        Ok((
            PipelineRun {
                output: current,
                stages: metrics,
            },
            windows,
        ))
    }

    /// One zeroed [`StageMetrics`] per stage — what an empty batch
    /// merges to, so downstream zips over stage lists never see
    /// mismatched lengths.
    pub(crate) fn zeroed_metrics(&self) -> Vec<StageMetrics> {
        self.stages
            .iter()
            .map(|stage| StageMetrics {
                name: stage.name.clone(),
                kind: stage.kind,
                throughput: Throughput::default(),
            })
            .collect()
    }
}

impl<T: Send> Pipeline<T> {
    /// Run the whole pipeline independently on many artifacts in
    /// parallel (rayon). Failures abort with the error of the *lowest
    /// input index* that failed — deterministic regardless of worker
    /// scheduling. Outputs preserve input order. Per-item metrics are
    /// merged per stage; an empty batch merges to one zeroed
    /// [`StageMetrics`] per stage.
    ///
    /// Telemetry: one `pipeline.<name>.run_batch` span for the batch
    /// (items = batch size) plus merged per-stage counters and two
    /// histograms per stage — `pipeline.<name>.<stage>.ns` records the
    /// stage's batch *wall-clock* (last item out minus first item in,
    /// so it never exceeds the batch wall time regardless of
    /// parallelism), and `.item_ns` records each item's own latency
    /// through the stage. Per-item spans are suppressed so large
    /// batches don't flood the span log.
    pub fn run_batch(&self, items: Vec<T>) -> Result<(Vec<T>, Vec<StageMetrics>), CoreError> {
        let registry = Registry::current();
        let batch_span = registry.span(format!("pipeline.{}.run_batch", self.name));
        batch_span.add_items(items.len() as u64);
        let _in_batch = batch_span.enter();
        if items.is_empty() {
            return Ok((Vec::new(), self.zeroed_metrics()));
        }
        let epoch = Stopwatch::start();
        // Collect every item's result (no short-circuit), then scan in
        // input order: the first failure by input index wins, so the
        // reported error doesn't depend on which rayon worker lost the
        // race.
        let results: Vec<Result<WindowedRun<T>, CoreError>> = items
            .into_par_iter()
            .map(|item| self.run_windowed(item, false, epoch))
            .collect();
        let mut runs = Vec::with_capacity(results.len());
        for result in results {
            runs.push(result?);
        }
        let mut merged: Vec<StageMetrics> = self.zeroed_metrics();
        // Per-stage wall-clock window across the batch: earliest start
        // to latest end among all items.
        let mut walls: Vec<(u64, u64)> = vec![(u64::MAX, 0); self.stages.len()];
        let mut item_ns: Vec<Vec<u64>> = vec![Vec::with_capacity(runs.len()); self.stages.len()];
        let mut outputs = Vec::with_capacity(runs.len());
        for (run, windows) in runs {
            for (si, s) in run.stages.iter().enumerate() {
                merged[si].throughput.records += s.throughput.records;
                merged[si].throughput.bytes += s.throughput.bytes;
                item_ns[si].push(s.throughput.elapsed.as_nanos() as u64);
            }
            for (si, &(start, end)) in windows.iter().enumerate() {
                walls[si].0 = walls[si].0.min(start);
                walls[si].1 = walls[si].1.max(end);
            }
            outputs.push(run.output);
        }
        for (si, m) in merged.iter_mut().enumerate() {
            let (start, end) = walls[si];
            let wall_ns = end.saturating_sub(start);
            m.throughput.elapsed = std::time::Duration::from_nanos(wall_ns);
            let base = self.stage_metric(&m.name);
            registry
                .counter(&format!("{base}.records"))
                .add(m.throughput.records);
            registry
                .counter(&format!("{base}.bytes"))
                .add(m.throughput.bytes);
            registry.histogram(&format!("{base}.ns")).record(wall_ns);
            let per_item = registry.histogram(&format!("{base}.item_ns"));
            for &ns in &item_ns[si] {
                per_item.record(ns);
            }
            batch_span.add_bytes(m.throughput.bytes);
        }
        Ok((outputs, merged))
    }
}

/// Verdict from the evaluation step of the iterative loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// Data is good enough; stop iterating.
    Accept,
    /// Refine and run again (with a reason for the provenance log).
    Refine(String),
}

/// Result of [`run_iterative`].
#[derive(Debug)]
pub struct IterativeRun<T> {
    /// Final accepted artifact.
    pub output: T,
    /// Number of pipeline passes executed.
    pub passes: usize,
    /// Refinement reasons, one per non-final pass.
    pub refinements: Vec<String>,
    /// Whether iteration converged (true) or hit the pass limit (false).
    pub converged: bool,
}

/// The Figure 1 feedback loop: run the pipeline, evaluate the result,
/// refine the artifact and repeat until accepted or `max_passes`.
///
/// `refine` receives the evaluated artifact and the feedback reason and
/// produces the input for the next pass (e.g. relabel low-confidence
/// samples, add augmented data, tighten cleaning thresholds).
pub fn run_iterative<T>(
    pipeline: &Pipeline<T>,
    input: T,
    max_passes: usize,
    mut evaluate: impl FnMut(&T) -> Feedback,
    mut refine: impl FnMut(T, &str) -> T,
) -> Result<IterativeRun<T>, CoreError> {
    assert!(max_passes > 0, "need at least one pass");
    let registry = Registry::current();
    let loop_span = registry.span(format!("pipeline.{}.run_iterative", pipeline.name));
    let refine_counter = registry.counter(&format!("pipeline.{}.refinements", pipeline.name));
    // Entered so each pass's `pipeline.<name>.run` span nests under
    // the loop span.
    let _in_loop = loop_span.enter();
    let mut current = input;
    let mut refinements = Vec::new();
    let mut pass = 0;
    loop {
        pass += 1;
        loop_span.add_items(1); // one item per executed pass
        let run = pipeline.run(current)?;
        match evaluate(&run.output) {
            Feedback::Accept => {
                return Ok(IterativeRun {
                    output: run.output,
                    passes: pass,
                    refinements,
                    converged: true,
                })
            }
            Feedback::Refine(reason) => {
                if pass >= max_passes {
                    return Ok(IterativeRun {
                        output: run.output,
                        passes: pass,
                        refinements,
                        converged: false,
                    });
                }
                current = refine(run.output, &reason);
                refine_counter.incr();
                refinements.push(reason);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readiness::ProcessingStage as S;

    fn doubling_pipeline() -> Pipeline<Vec<f64>> {
        Pipeline::builder("test")
            .stage("ingest", S::Ingest, |v: Vec<f64>, c| {
                c.records = v.len() as u64;
                Ok(v)
            })
            .stage("double", S::Transform, |v: Vec<f64>, c| {
                c.records = v.len() as u64;
                c.bytes = (v.len() * 8) as u64;
                Ok(v.into_iter().map(|x| x * 2.0).collect())
            })
            .build()
    }

    #[test]
    fn run_executes_in_order_with_metrics() {
        let p = doubling_pipeline();
        assert_eq!(p.stage_names(), vec!["ingest", "double"]);
        assert_eq!(p.stage_kinds(), vec![S::Ingest, S::Transform]);
        let run = p.run(vec![1.0, 2.0]).unwrap();
        assert_eq!(run.output, vec![2.0, 4.0]);
        assert_eq!(run.stages.len(), 2);
        assert_eq!(run.stage("double").unwrap().throughput.records, 2);
        assert_eq!(run.stage("double").unwrap().throughput.bytes, 16);
        assert!(run.stage("missing").is_none());
        assert!(run.total_elapsed() > std::time::Duration::ZERO);
    }

    #[test]
    fn stage_failure_names_stage() {
        let p: Pipeline<i32> = Pipeline::builder("failing")
            .stage("ok", S::Ingest, |x, _| Ok(x))
            .stage("boom", S::Transform, |_, _| Err("kaput".to_string()))
            .build();
        match p.run(1) {
            Err(CoreError::Stage { stage, message }) => {
                assert_eq!(stage, "boom");
                assert_eq!(message, "kaput");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_preserves_order_and_merges_metrics() {
        let p = doubling_pipeline();
        let items: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let (outputs, metrics) = p.run_batch(items).unwrap();
        assert_eq!(outputs.len(), 64);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out[0], i as f64 * 2.0);
        }
        // Merged double-stage counters: 64 records.
        let double = metrics.iter().find(|m| m.name == "double").unwrap();
        assert_eq!(double.throughput.records, 64);
    }

    #[test]
    fn batch_of_empty_input_yields_zeroed_per_stage_metrics() {
        let p = doubling_pipeline();
        let (outputs, metrics) = p.run_batch(Vec::new()).unwrap();
        assert!(outputs.is_empty());
        // One zeroed entry per stage, so downstream code zipping merged
        // metrics against stage lists never sees unequal lengths.
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].name, "ingest");
        assert_eq!(metrics[1].name, "double");
        for m in &metrics {
            assert_eq!(m.throughput.records, 0);
            assert_eq!(m.throughput.bytes, 0);
            assert_eq!(m.throughput.elapsed, std::time::Duration::ZERO);
        }
        // The batch span is still emitted (zero items) and no per-stage
        // counters move.
        let snap = drai_telemetry::Registry::global().snapshot();
        let batch = snap.spans_named("pipeline.test.run_batch");
        assert!(batch.iter().any(|s| s.items == 0));
    }

    #[test]
    fn batch_stage_latency_never_exceeds_batch_wall_clock() {
        use drai_telemetry::{Registry, TraceContext};
        let reg = Registry::new();
        let p: Pipeline<u64> = Pipeline::builder("batch-wall")
            .stage("spin", S::Transform, |x: u64, c| {
                // Busy work so per-item elapsed is measurable: summed
                // across parallel items it would exceed the batch wall.
                let mut acc = x;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                }
                c.records = 1;
                Ok(acc)
            })
            .build();
        let wall = Stopwatch::start();
        TraceContext::root(&reg)
            .scope(|| p.run_batch((0..32).collect()))
            .unwrap();
        let wall_ns = wall.elapsed_ns();
        let snap = reg.snapshot();
        let ns = &snap.histograms["pipeline.batch-wall.spin.ns"];
        assert_eq!(ns.count, 1);
        // The fixed `.ns` records the stage's batch wall-clock, which
        // can never exceed the wall time of the whole run_batch call.
        assert!(
            ns.max <= wall_ns,
            "stage wall {} > batch wall {wall_ns}",
            ns.max
        );
        // Per-item latency lands in `.item_ns`: one observation per item.
        let item = &snap.histograms["pipeline.batch-wall.spin.item_ns"];
        assert_eq!(item.count, 32);
    }

    #[test]
    fn batch_multi_failure_error_is_lowest_input_index() {
        // Items 5, 9 and 13 all fail; regardless of which rayon worker
        // finishes first, the reported error must be item 5's.
        let p: Pipeline<i32> = Pipeline::builder("batch-det")
            .stage("maybe", S::Transform, |x, _| {
                if x % 4 == 1 && x > 1 {
                    Err(format!("item {x} failed"))
                } else {
                    Ok(x)
                }
            })
            .build();
        for _ in 0..8 {
            match p.run_batch((0..16).collect()) {
                Err(CoreError::Stage { stage, message }) => {
                    assert_eq!(stage, "maybe");
                    assert_eq!(message, "item 5 failed");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn fast_path_hit_skips_stage_function() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let func_calls = Arc::new(AtomicU32::new(0));
        let calls = func_calls.clone();
        let p: Pipeline<i32> = Pipeline::builder("fastpath")
            .stage_with_fast_path(
                "memo",
                S::Transform,
                |x, c| {
                    if x % 2 == 0 {
                        c.records = 1;
                        FastPath::Hit(x * 10)
                    } else {
                        FastPath::Miss(x)
                    }
                },
                move |x, c| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    c.records = 1;
                    Ok(x * 10)
                },
            )
            .build();
        assert_eq!(p.run(4).unwrap().output, 40);
        assert_eq!(func_calls.load(Ordering::SeqCst), 0, "hit skips func");
        assert_eq!(p.run(3).unwrap().output, 30);
        assert_eq!(func_calls.load(Ordering::SeqCst), 1, "miss runs func");
    }

    #[test]
    fn batch_of_one_matches_a_sequential_run() {
        let p: Pipeline<Vec<f64>> = Pipeline::builder("batch-single")
            .stage("double", S::Transform, |v: Vec<f64>, c| {
                c.records = v.len() as u64;
                c.bytes = (v.len() * 8) as u64;
                Ok(v.into_iter().map(|x| x * 2.0).collect())
            })
            .build();
        let (outputs, metrics) = p.run_batch(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(outputs, vec![vec![2.0, 4.0, 6.0]]);
        // A single-item batch merges to exactly that item's counters —
        // nothing is double-counted by the merge seeding.
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].name, "double");
        assert_eq!(metrics[0].throughput.records, 3);
        assert_eq!(metrics[0].throughput.bytes, 24);
        let snap = drai_telemetry::Registry::global().snapshot();
        assert_eq!(snap.counters["pipeline.batch-single.double.records"], 3);
        assert_eq!(snap.histograms["pipeline.batch-single.double.ns"].count, 1);
    }

    #[test]
    fn batch_error_mid_batch_emits_no_merged_metrics() {
        use drai_telemetry::{Registry, TraceContext};
        let reg = Registry::new();
        let p: Pipeline<i32> = Pipeline::builder("batch-err")
            .stage("pass", S::Ingest, |x, c| {
                c.records = 1;
                Ok(x)
            })
            .stage("maybe", S::Transform, |x, c| {
                if x == 7 {
                    Err("unlucky".into())
                } else {
                    c.records = 1;
                    Ok(x)
                }
            })
            .build();
        let err = TraceContext::root(&reg)
            .scope(|| p.run_batch((0..16).collect()))
            .unwrap_err();
        match err {
            CoreError::Stage { stage, message } => {
                assert_eq!(stage, "maybe");
                assert_eq!(message, "unlucky");
            }
            other => panic!("{other:?}"),
        }
        // The failed batch publishes no merged per-stage counters or
        // latency histograms — even for the stage that succeeded on
        // other items — so dashboards never mix partial batches in.
        let snap = reg.snapshot();
        assert!(!snap
            .counters
            .contains_key("pipeline.batch-err.pass.records"));
        assert!(!snap
            .counters
            .contains_key("pipeline.batch-err.maybe.records"));
        assert!(!snap.histograms.contains_key("pipeline.batch-err.pass.ns"));
        // The batch span itself still records the attempt.
        assert_eq!(snap.spans_named("pipeline.batch-err.run_batch").len(), 1);
    }

    #[test]
    fn batch_propagates_errors() {
        let p: Pipeline<i32> = Pipeline::builder("pb")
            .stage("maybe", S::Transform, |x, _| {
                if x == 13 {
                    Err("unlucky".into())
                } else {
                    Ok(x)
                }
            })
            .build();
        assert!(p.run_batch((0..20).collect()).is_err());
        assert!(p.run_batch(vec![1, 2, 3]).is_ok());
    }

    #[test]
    fn iterative_converges() {
        // Pipeline adds 1.0; accept when sum >= 5.
        let p: Pipeline<Vec<f64>> = Pipeline::builder("iter")
            .stage("inc", S::Transform, |v: Vec<f64>, _| {
                Ok(v.into_iter().map(|x| x + 1.0).collect())
            })
            .build();
        let result = run_iterative(
            &p,
            vec![0.0, 0.0],
            100,
            |v| {
                if v.iter().sum::<f64>() >= 5.0 {
                    Feedback::Accept
                } else {
                    Feedback::Refine("sum too low".into())
                }
            },
            |v, _| v,
        )
        .unwrap();
        assert!(result.converged);
        assert_eq!(result.passes, 3); // sums 2, 4, 6
        assert_eq!(result.refinements.len(), 2);
    }

    #[test]
    fn iterative_hits_pass_limit() {
        let p: Pipeline<i32> = Pipeline::builder("never")
            .stage("id", S::Transform, |x, _| Ok(x))
            .build();
        let result = run_iterative(
            &p,
            0,
            3,
            |_| Feedback::Refine("never good".into()),
            |x, _| x,
        )
        .unwrap();
        assert!(!result.converged);
        assert_eq!(result.passes, 3);
        assert_eq!(result.refinements.len(), 2); // last pass doesn't refine
    }

    #[test]
    fn run_emits_telemetry_spans_and_counters() {
        // Unique pipeline name: the global registry is shared with other
        // tests in this process.
        let p: Pipeline<Vec<f64>> = Pipeline::builder("telem-unit")
            .stage("count", S::Ingest, |v: Vec<f64>, c| {
                c.records = v.len() as u64;
                c.bytes = (v.len() * 8) as u64;
                Ok(v)
            })
            .build();
        p.run(vec![1.0; 32]).unwrap();
        let snap = drai_telemetry::Registry::global().snapshot();
        let spans = snap.spans_named("pipeline.telem-unit.count");
        assert_eq!(spans.len(), 1);
        assert!(spans[0].dur_ns > 0);
        assert_eq!(spans[0].items, 32);
        assert_eq!(spans[0].bytes, 256);
        assert_eq!(snap.counters["pipeline.telem-unit.count.records"], 32);
        assert!(snap.histograms.contains_key("pipeline.telem-unit.count.ns"));
    }

    #[test]
    fn run_spans_form_a_tree_in_the_callers_registry() {
        use drai_telemetry::{Registry, TraceContext};
        let reg = Registry::new();
        let p = doubling_pipeline();
        TraceContext::root(&reg).scope(|| {
            p.run(vec![1.0, 2.0]).unwrap();
        });
        let snap = reg.snapshot();
        let run = snap.spans_named("pipeline.test.run");
        assert_eq!(run.len(), 1, "one root run span");
        for stage in ["ingest", "double"] {
            let spans = snap.spans_named(&format!("pipeline.test.{stage}"));
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].parent, Some(run[0].id), "{stage} not under run");
            assert_eq!(spans[0].trace, run[0].trace);
        }
        // Counters landed in the private registry, not the global one.
        assert_eq!(snap.counters["pipeline.test.double.records"], 2);
    }

    #[test]
    fn run_batch_emits_merged_telemetry() {
        let p: Pipeline<i32> = Pipeline::builder("telem-batch")
            .stage("inc", S::Transform, |x, c| {
                c.records = 1;
                Ok(x + 1)
            })
            .build();
        p.run_batch((0..16).collect()).unwrap();
        let snap = drai_telemetry::Registry::global().snapshot();
        let batch = snap.spans_named("pipeline.telem-batch.run_batch");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].items, 16);
        // Per-item spans are suppressed; merged counters remain.
        assert!(snap.spans_named("pipeline.telem-batch.inc").is_empty());
        assert_eq!(snap.counters["pipeline.telem-batch.inc.records"], 16);
        assert_eq!(snap.histograms["pipeline.telem-batch.inc.ns"].count, 1);
    }

    #[test]
    fn retry_stage_recovers_from_transient_failures() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let flaky_calls = Arc::new(AtomicU32::new(0));
        let calls = flaky_calls.clone();
        let p: Pipeline<Vec<f64>> = Pipeline::builder("retry-unit")
            .retry_stage("flaky", S::Transform, 4, move |v: Vec<f64>, c| {
                // Fail the first two attempts, then succeed.
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    c.records = v.len() as u64;
                    Ok(v.into_iter().map(|x| x + 1.0).collect())
                }
            })
            .build();
        let run = p.run(vec![1.0, 2.0]).unwrap();
        assert_eq!(run.output, vec![2.0, 3.0]);
        assert_eq!(flaky_calls.load(Ordering::SeqCst), 3);
        // Counters reflect the successful attempt only.
        assert_eq!(run.stage("flaky").unwrap().throughput.records, 2);
        let snap = drai_telemetry::Registry::global().snapshot();
        assert_eq!(snap.counters["pipeline.retry-unit.flaky.retries"], 2);
    }

    #[test]
    fn retry_stage_exhaustion_reports_last_error() {
        let p: Pipeline<i32> = Pipeline::builder("retry-fail")
            .retry_stage("doomed", S::Transform, 3, |_, _| {
                Err("still broken".to_string())
            })
            .build();
        match p.run(1) {
            Err(CoreError::Stage { stage, message }) => {
                assert_eq!(stage, "doomed");
                assert!(
                    message.contains("3 attempts") && message.contains("still broken"),
                    "{message}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refine_feeds_next_pass() {
        let p: Pipeline<i32> = Pipeline::builder("r")
            .stage("id", S::Transform, |x, _| Ok(x))
            .build();
        let result = run_iterative(
            &p,
            0,
            10,
            |&x| {
                if x >= 4 {
                    Feedback::Accept
                } else {
                    Feedback::Refine(format!("x={x}"))
                }
            },
            |x, reason| {
                assert!(reason.starts_with("x="));
                x + 2
            },
        )
        .unwrap();
        assert!(result.converged);
        assert_eq!(result.output, 4);
        assert_eq!(result.refinements, vec!["x=0", "x=2"]);
    }
}
