//! Domain preprocessing templates — the paper's closing call:
//! "developing standardized domain-specific preprocessing templates for
//! wider adoption" (§6).
//!
//! A [`DomainTemplate`] is the declarative form of a Table 1 row: the
//! expected stage sequence (with each stage's processing-stage kind), the
//! target storage format, and the domain-specific constraints a pipeline
//! must satisfy. Templates validate concrete pipelines (did the
//! implementation cover the canonical steps, in order?) — turning §3.5's
//! abstracted patterns into a checkable contract.

use crate::pipeline::Pipeline;
use crate::readiness::ProcessingStage;

/// A named step in a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateStep {
    /// Canonical step name ("regrid", "anonymize", ...).
    pub name: &'static str,
    /// Which processing stage it belongs to.
    pub kind: ProcessingStage,
    /// Whether a conforming pipeline may omit it.
    pub optional: bool,
}

/// Constraints a domain imposes beyond the stage sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainConstraints {
    /// PHI/PII handling required (bio/health).
    pub requires_anonymization: bool,
    /// Physical conservation required in spatial resampling (climate
    /// flux variables).
    pub requires_conservative_remap: bool,
    /// Group-level split integrity required (fusion shots, patients).
    pub requires_group_splits: bool,
}

/// A domain's preprocessing template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainTemplate {
    /// Domain name ("climate", ...).
    pub domain: &'static str,
    /// Canonical pattern string as written in the paper.
    pub pattern: &'static str,
    /// Expected steps in order.
    pub steps: Vec<TemplateStep>,
    /// Target storage format for the shard stage.
    pub shard_format: &'static str,
    /// Extra constraints.
    pub constraints: DomainConstraints,
}

/// Problems found when validating a pipeline against a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateViolation {
    /// A required step kind is missing.
    MissingStage(ProcessingStage),
    /// Stage kinds appear out of canonical order.
    OutOfOrder {
        /// The stage found too early.
        found: ProcessingStage,
        /// The stage it preceded incorrectly.
        before: ProcessingStage,
    },
}

impl DomainTemplate {
    /// The climate template (§3.1): download → regrid → normalize → shard.
    pub fn climate() -> DomainTemplate {
        use ProcessingStage as S;
        DomainTemplate {
            domain: "climate",
            pattern: "download -> regrid -> normalize -> shard",
            steps: vec![
                TemplateStep {
                    name: "download",
                    kind: S::Ingest,
                    optional: false,
                },
                TemplateStep {
                    name: "regrid",
                    kind: S::Preprocess,
                    optional: false,
                },
                TemplateStep {
                    name: "normalize",
                    kind: S::Transform,
                    optional: false,
                },
                TemplateStep {
                    name: "shard",
                    kind: S::Shard,
                    optional: false,
                },
            ],
            shard_format: "npz",
            constraints: DomainConstraints {
                requires_conservative_remap: true,
                ..DomainConstraints::default()
            },
        }
    }

    /// The fusion template (§3.2): extract → align → normalize → shard.
    pub fn fusion() -> DomainTemplate {
        use ProcessingStage as S;
        DomainTemplate {
            domain: "fusion",
            pattern: "extract -> align -> normalize -> shard",
            steps: vec![
                TemplateStep {
                    name: "extract",
                    kind: S::Ingest,
                    optional: false,
                },
                TemplateStep {
                    name: "align",
                    kind: S::Preprocess,
                    optional: false,
                },
                TemplateStep {
                    name: "normalize",
                    kind: S::Transform,
                    optional: false,
                },
                TemplateStep {
                    name: "shard",
                    kind: S::Shard,
                    optional: false,
                },
            ],
            shard_format: "tfrecord",
            constraints: DomainConstraints {
                requires_group_splits: true,
                ..DomainConstraints::default()
            },
        }
    }

    /// The bio/health template (§3.3): encode → anonymize → fuse → shard.
    pub fn bio() -> DomainTemplate {
        use ProcessingStage as S;
        DomainTemplate {
            domain: "bio",
            pattern: "encode -> anonymize -> fuse -> secure-shard",
            steps: vec![
                TemplateStep {
                    name: "ingest",
                    kind: S::Ingest,
                    optional: false,
                },
                TemplateStep {
                    name: "anonymize",
                    kind: S::Transform,
                    optional: false,
                },
                TemplateStep {
                    name: "fuse",
                    kind: S::Structure,
                    optional: false,
                },
                TemplateStep {
                    name: "secure-shard",
                    kind: S::Shard,
                    optional: false,
                },
            ],
            shard_format: "h5lite+chacha20",
            constraints: DomainConstraints {
                requires_anonymization: true,
                requires_group_splits: true,
                ..DomainConstraints::default()
            },
        }
    }

    /// The materials template (§3.4): parse → normalize → encode → shard.
    pub fn materials() -> DomainTemplate {
        use ProcessingStage as S;
        DomainTemplate {
            domain: "materials",
            pattern: "parse -> normalize -> encode -> shard",
            steps: vec![
                TemplateStep {
                    name: "parse",
                    kind: S::Ingest,
                    optional: false,
                },
                TemplateStep {
                    name: "normalize",
                    kind: S::Transform,
                    optional: false,
                },
                TemplateStep {
                    name: "encode",
                    kind: S::Structure,
                    optional: false,
                },
                TemplateStep {
                    name: "shard",
                    kind: S::Shard,
                    optional: false,
                },
            ],
            shard_format: "bp+jsonl",
            constraints: DomainConstraints::default(),
        }
    }

    /// All four Table 1 templates.
    pub fn all() -> Vec<DomainTemplate> {
        vec![
            Self::climate(),
            Self::fusion(),
            Self::bio(),
            Self::materials(),
        ]
    }

    /// Required stage kinds, deduplicated, in order.
    pub fn required_kinds(&self) -> Vec<ProcessingStage> {
        let mut out: Vec<ProcessingStage> = Vec::new();
        for step in self.steps.iter().filter(|s| !s.optional) {
            if out.last() != Some(&step.kind) {
                out.push(step.kind);
            }
        }
        out
    }

    /// Validate a pipeline's stage kinds against this template.
    pub fn validate<T>(&self, pipeline: &Pipeline<T>) -> Vec<TemplateViolation> {
        let kinds = pipeline.stage_kinds();
        let mut violations = Vec::new();
        // Order: kinds must be non-decreasing in pipeline index.
        for w in kinds.windows(2) {
            if w[0].index() > w[1].index() {
                violations.push(TemplateViolation::OutOfOrder {
                    found: w[1],
                    before: w[0],
                });
            }
        }
        // Coverage: every required kind present.
        for kind in self.required_kinds() {
            if !kinds.contains(&kind) {
                violations.push(TemplateViolation::MissingStage(kind));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use ProcessingStage as S;

    #[test]
    fn four_templates_cover_table1() {
        let all = DomainTemplate::all();
        assert_eq!(all.len(), 4);
        let domains: Vec<&str> = all.iter().map(|t| t.domain).collect();
        assert_eq!(domains, vec!["climate", "fusion", "bio", "materials"]);
        // Every template ends in a shard step, per the abstracted pattern.
        for t in &all {
            assert_eq!(t.steps.last().unwrap().kind, S::Shard, "{}", t.domain);
            assert!(t.pattern.contains("shard"));
        }
        // Only bio requires anonymization.
        assert!(DomainTemplate::bio().constraints.requires_anonymization);
        assert!(!DomainTemplate::climate().constraints.requires_anonymization);
    }

    #[test]
    fn conforming_pipeline_validates() {
        let p: Pipeline<u32> = Pipeline::builder("climate-like")
            .stage("download", S::Ingest, |x, _| Ok(x))
            .stage("regrid", S::Preprocess, |x, _| Ok(x))
            .stage("normalize", S::Transform, |x, _| Ok(x))
            .stage("shard", S::Shard, |x, _| Ok(x))
            .build();
        assert!(DomainTemplate::climate().validate(&p).is_empty());
    }

    #[test]
    fn missing_stage_detected() {
        let p: Pipeline<u32> = Pipeline::builder("no-shard")
            .stage("download", S::Ingest, |x, _| Ok(x))
            .stage("normalize", S::Transform, |x, _| Ok(x))
            .build();
        let violations = DomainTemplate::climate().validate(&p);
        assert!(violations.contains(&TemplateViolation::MissingStage(S::Preprocess)));
        assert!(violations.contains(&TemplateViolation::MissingStage(S::Shard)));
    }

    #[test]
    fn out_of_order_detected() {
        let p: Pipeline<u32> = Pipeline::builder("backwards")
            .stage("shard", S::Shard, |x, _| Ok(x))
            .stage("ingest", S::Ingest, |x, _| Ok(x))
            .build();
        let violations = DomainTemplate::fusion().validate(&p);
        assert!(violations
            .iter()
            .any(|v| matches!(v, TemplateViolation::OutOfOrder { .. })));
    }

    #[test]
    fn required_kinds_deduplicate() {
        let t = DomainTemplate::climate();
        let kinds = t.required_kinds();
        assert_eq!(
            kinds,
            vec![S::Ingest, S::Preprocess, S::Transform, S::Shard]
        );
    }
}
