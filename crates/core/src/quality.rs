//! Data-quality reporting — the paper's "Data Quality, Bias, and
//! Fairness" cross-cutting challenge, operationalized as a per-variable
//! report that feeds both the readiness assessor and dataset cards.

use drai_io::json::Json;
use drai_tensor::stats::{Histogram, Welford};

/// Quality metrics for one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Variable name.
    pub name: String,
    /// Observations examined.
    pub count: u64,
    /// Fraction missing (NaN).
    pub missing_fraction: f64,
    /// Mean of finite values.
    pub mean: f64,
    /// Population standard deviation of finite values.
    pub std: f64,
    /// Minimum finite value.
    pub min: f64,
    /// Maximum finite value.
    pub max: f64,
    /// Fraction of finite values with |z| > 5 (gross outliers).
    pub outlier_fraction: f64,
    /// Histogram imbalance ratio (1.0 = uniform across support).
    pub imbalance_ratio: f64,
}

impl QualityReport {
    /// Compute a report over raw values.
    pub fn compute(name: &str, values: &[f64]) -> QualityReport {
        let mut w = Welford::new();
        w.extend(values);
        let total = values.len() as u64;
        let missing_fraction = if total == 0 {
            0.0
        } else {
            w.nan_count() as f64 / total as f64
        };
        let (mean, std) = (w.mean(), w.std());

        let mut outliers = 0u64;
        if std > 0.0 {
            for &v in values {
                if !v.is_nan() && ((v - mean) / std).abs() > 5.0 {
                    outliers += 1;
                }
            }
        }
        let outlier_fraction = if w.count() == 0 {
            0.0
        } else {
            outliers as f64 / w.count() as f64
        };

        let imbalance_ratio = if w.count() > 0 && w.max() > w.min() {
            let mut h =
                Histogram::new(w.min(), w.max() + f64::EPSILON * w.max().abs().max(1.0), 16);
            for &v in values {
                h.push(v);
            }
            h.imbalance_ratio()
        } else {
            1.0
        };

        QualityReport {
            name: name.to_string(),
            count: total,
            missing_fraction,
            mean,
            std,
            min: w.min(),
            max: w.max(),
            outlier_fraction,
            imbalance_ratio,
        }
    }

    /// A coarse pass/fail gate for the assessor's defaults.
    pub fn acceptable(&self, max_missing: f64, max_outlier: f64) -> bool {
        self.missing_fraction <= max_missing && self.outlier_fraction <= max_outlier
    }

    /// Serialize for dataset cards / provenance.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("count", Json::from(self.count)),
            ("missing_fraction", Json::from(self.missing_fraction)),
            ("mean", Json::from(self.mean)),
            ("std", Json::from(self.std)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
            ("outlier_fraction", Json::from(self.outlier_fraction)),
            ("imbalance_ratio", Json::from(self.imbalance_ratio)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_gaussianish_data() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| {
                // Sum of sines ≈ bounded, symmetric.
                (i as f64 * 0.1).sin() + (i as f64 * 0.013).sin()
            })
            .collect();
        let r = QualityReport::compute("x", &values);
        assert_eq!(r.count, 10_000);
        assert_eq!(r.missing_fraction, 0.0);
        assert!(r.mean.abs() < 0.1);
        assert_eq!(r.outlier_fraction, 0.0);
        assert!(r.acceptable(0.01, 0.01));
    }

    #[test]
    fn missing_and_outliers_detected() {
        let mut values: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        values[5] = f64::NAN;
        values[6] = f64::NAN;
        values[100] = 1e6; // gross outlier
        let r = QualityReport::compute("y", &values);
        assert!((r.missing_fraction - 0.002).abs() < 1e-12);
        assert!(r.outlier_fraction > 0.0);
        assert!(!r.acceptable(0.001, 0.01));
        assert!(!r.acceptable(0.01, 0.0));
    }

    #[test]
    fn imbalance_detected() {
        // 95% of mass in one narrow region.
        let mut values = vec![0.5; 950];
        values.extend((0..50).map(|i| i as f64));
        let r = QualityReport::compute("z", &values);
        assert!(r.imbalance_ratio > 3.0, "imbalance {}", r.imbalance_ratio);
    }

    #[test]
    fn constant_and_empty_inputs() {
        let r = QualityReport::compute("c", &[7.0; 10]);
        assert_eq!(r.std, 0.0);
        assert_eq!(r.imbalance_ratio, 1.0);
        assert_eq!(r.outlier_fraction, 0.0);
        let e = QualityReport::compute("e", &[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.missing_fraction, 0.0);
    }

    #[test]
    fn json_round_trips() {
        let r = QualityReport::compute("v", &[1.0, 2.0, f64::NAN]);
        let text = r.to_json().to_string_compact();
        let parsed = drai_io::json::Json::parse(&text).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("v"));
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(3));
    }
}
