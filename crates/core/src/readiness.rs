//! Data Readiness Levels, Data Processing Stages, and the conceptual
//! maturity matrix of Table 2.

use std::fmt;

/// The five Data Readiness Levels (Table 2, rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReadinessLevel {
    /// Level 1 — initial raw acquisition.
    Raw,
    /// Level 2 — validated ingestion into standard formats, initial
    /// alignment/regridding.
    Cleaned,
    /// Level 3 — enriched metadata, standardized grids, initial
    /// normalization/anonymization, basic labels.
    Labeled,
    /// Level 4 — optimized ingestion, finalized normalization,
    /// comprehensive labels, domain features extracted.
    FeatureEngineered,
    /// Level 5 — fully automated, audited pipelines; split and sharded
    /// into binary formats for scalable ingestion.
    FullyAiReady,
}

impl ReadinessLevel {
    /// All levels, lowest to highest.
    pub const ALL: [ReadinessLevel; 5] = [
        ReadinessLevel::Raw,
        ReadinessLevel::Cleaned,
        ReadinessLevel::Labeled,
        ReadinessLevel::FeatureEngineered,
        ReadinessLevel::FullyAiReady,
    ];

    /// 1-based numeric level as printed in the paper ("1 - Raw").
    pub const fn number(self) -> u8 {
        match self {
            ReadinessLevel::Raw => 1,
            ReadinessLevel::Cleaned => 2,
            ReadinessLevel::Labeled => 3,
            ReadinessLevel::FeatureEngineered => 4,
            ReadinessLevel::FullyAiReady => 5,
        }
    }

    /// Level from its 1-based number.
    pub fn from_number(n: u8) -> Option<ReadinessLevel> {
        Self::ALL.get(n.checked_sub(1)? as usize).copied()
    }

    /// Paper row label.
    pub const fn label(self) -> &'static str {
        match self {
            ReadinessLevel::Raw => "Raw",
            ReadinessLevel::Cleaned => "Cleaned",
            ReadinessLevel::Labeled => "Labeled",
            ReadinessLevel::FeatureEngineered => "Feature-engineered",
            ReadinessLevel::FullyAiReady => "Fully AI-ready",
        }
    }

    /// Next level up, if any.
    pub fn next(self) -> Option<ReadinessLevel> {
        Self::from_number(self.number() + 1)
    }
}

impl fmt::Display for ReadinessLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {}", self.number(), self.label())
    }
}

/// The five Data Processing Stages (Table 2, columns): the abstracted
/// cross-domain pipeline `ingest → preprocess → transform → structure →
/// shard` of §3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcessingStage {
    /// Acquisition and validated ingestion.
    Ingest,
    /// Alignment, regridding, resampling, cleaning.
    Preprocess,
    /// Domain-specific conversions: normalization, anonymization, labels.
    Transform,
    /// Organizing into model-facing structures: features, tensors, graphs.
    Structure,
    /// Partitioning into splits and sharding to binary formats.
    Shard,
}

impl ProcessingStage {
    /// All stages, pipeline order.
    pub const ALL: [ProcessingStage; 5] = [
        ProcessingStage::Ingest,
        ProcessingStage::Preprocess,
        ProcessingStage::Transform,
        ProcessingStage::Structure,
        ProcessingStage::Shard,
    ];

    /// 0-based pipeline position.
    pub const fn index(self) -> usize {
        match self {
            ProcessingStage::Ingest => 0,
            ProcessingStage::Preprocess => 1,
            ProcessingStage::Transform => 2,
            ProcessingStage::Structure => 3,
            ProcessingStage::Shard => 4,
        }
    }

    /// Column label.
    pub const fn label(self) -> &'static str {
        match self {
            ProcessingStage::Ingest => "Ingest",
            ProcessingStage::Preprocess => "Preprocess",
            ProcessingStage::Transform => "Transform",
            ProcessingStage::Structure => "Structure",
            ProcessingStage::Shard => "Shard",
        }
    }
}

impl fmt::Display for ProcessingStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The conceptual maturity matrix (Table 2): for each readiness level,
/// what each processing stage looks like — with the paper's grey N/A
/// cells where a stage is not yet applicable at that maturity.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaturityMatrix;

impl MaturityMatrix {
    /// Whether a `(level, stage)` cell is applicable. In Table 2, level
    /// *n* populates exactly the first *n* stage columns: raw data has
    /// only ingest semantics; only fully AI-ready data has shard
    /// semantics.
    pub fn applicable(level: ReadinessLevel, stage: ProcessingStage) -> bool {
        stage.index() < level.number() as usize
    }

    /// The paper's cell text for an applicable cell, `None` for N/A.
    pub fn cell(level: ReadinessLevel, stage: ProcessingStage) -> Option<&'static str> {
        use ProcessingStage as S;
        use ReadinessLevel as L;
        let text = match (level, stage) {
            (L::Raw, S::Ingest) => "Initial raw acquisition",
            (L::Cleaned, S::Ingest) => "Validated ingestion into standard formats",
            (L::Cleaned, S::Preprocess) => "Initial spatial/temporal alignment or regridding",
            (L::Labeled, S::Ingest) => "Enhanced metadata enrichment",
            (L::Labeled, S::Preprocess) => "Refined alignment; grids standardized",
            (L::Labeled, S::Transform) => {
                "Initial normalization or anonymization; basic labels added"
            }
            (L::FeatureEngineered, S::Ingest) => "Optimized high-throughput ingestion",
            (L::FeatureEngineered, S::Preprocess) => "Alignment fully standardized",
            (L::FeatureEngineered, S::Transform) => {
                "Normalization or anonymization finalized; comprehensive labeling"
            }
            (L::FeatureEngineered, S::Structure) => "Domain-specific feature extraction completed",
            (L::FullyAiReady, S::Ingest) => {
                "Ingestion pipelines fully automated and performance-optimized"
            }
            (L::FullyAiReady, S::Preprocess) => "Alignment integrated and automated",
            (L::FullyAiReady, S::Transform) => {
                "Normalization / anonymization fully automated and audited"
            }
            (L::FullyAiReady, S::Structure) => "Feature extraction automated and validated",
            (L::FullyAiReady, S::Shard) => {
                "Data partitioned into train/test/val & sharded into binary formats \
                 for scalable ingestion"
            }
            _ => return None,
        };
        Some(text)
    }

    /// Render the full matrix as rows of `(level, [cell text or None])` —
    /// the structure the Table 2 reproduction test and the
    /// `readiness_report` example print.
    pub fn rows() -> Vec<(ReadinessLevel, Vec<Option<&'static str>>)> {
        ReadinessLevel::ALL
            .iter()
            .map(|&l| {
                (
                    l,
                    ProcessingStage::ALL
                        .iter()
                        .map(|&s| Self::cell(l, s))
                        .collect(),
                )
            })
            .collect()
    }

    /// Count of applicable (non-N/A) cells — 15 in the paper's table
    /// (1+2+3+4+5).
    pub fn applicable_cell_count() -> usize {
        ReadinessLevel::ALL
            .iter()
            .map(|&l| {
                ProcessingStage::ALL
                    .iter()
                    .filter(|&&s| Self::applicable(l, s))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_ordered_and_numbered() {
        assert!(ReadinessLevel::Raw < ReadinessLevel::FullyAiReady);
        for (i, l) in ReadinessLevel::ALL.iter().enumerate() {
            assert_eq!(l.number() as usize, i + 1);
            assert_eq!(ReadinessLevel::from_number(l.number()), Some(*l));
        }
        assert_eq!(ReadinessLevel::from_number(0), None);
        assert_eq!(ReadinessLevel::from_number(6), None);
    }

    #[test]
    fn next_walks_up() {
        assert_eq!(ReadinessLevel::Raw.next(), Some(ReadinessLevel::Cleaned));
        assert_eq!(ReadinessLevel::FullyAiReady.next(), None);
        let mut l = ReadinessLevel::Raw;
        let mut hops = 0;
        while let Some(n) = l.next() {
            l = n;
            hops += 1;
        }
        assert_eq!(hops, 4);
    }

    #[test]
    fn stage_order_matches_pipeline() {
        let labels: Vec<&str> = ProcessingStage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Ingest", "Preprocess", "Transform", "Structure", "Shard"]
        );
        for (i, s) in ProcessingStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    /// Reproduces the *structure* of Table 2: which cells are populated
    /// and which are grey/N-A.
    #[test]
    fn table2_na_structure() {
        use ProcessingStage as S;
        use ReadinessLevel as L;
        // Row 1: only Ingest.
        assert!(MaturityMatrix::applicable(L::Raw, S::Ingest));
        for s in [S::Preprocess, S::Transform, S::Structure, S::Shard] {
            assert!(!MaturityMatrix::applicable(L::Raw, s));
            assert_eq!(MaturityMatrix::cell(L::Raw, s), None);
        }
        // Row 5: everything.
        for s in S::ALL {
            assert!(MaturityMatrix::applicable(L::FullyAiReady, s));
            assert!(MaturityMatrix::cell(L::FullyAiReady, s).is_some());
        }
        // Shard appears only at level 5.
        for l in [L::Raw, L::Cleaned, L::Labeled, L::FeatureEngineered] {
            assert!(!MaturityMatrix::applicable(l, S::Shard));
        }
        // Triangular fill: 1+2+3+4+5 = 15 applicable cells.
        assert_eq!(MaturityMatrix::applicable_cell_count(), 15);
    }

    #[test]
    fn table2_cell_text_spot_checks() {
        use ProcessingStage as S;
        use ReadinessLevel as L;
        assert_eq!(
            MaturityMatrix::cell(L::Raw, S::Ingest),
            Some("Initial raw acquisition")
        );
        assert_eq!(
            MaturityMatrix::cell(L::Cleaned, S::Preprocess),
            Some("Initial spatial/temporal alignment or regridding")
        );
        assert!(MaturityMatrix::cell(L::FullyAiReady, S::Shard)
            .unwrap()
            .contains("train/test/val"));
    }

    #[test]
    fn applicable_iff_cell_text_exists() {
        for l in ReadinessLevel::ALL {
            for s in ProcessingStage::ALL {
                assert_eq!(
                    MaturityMatrix::applicable(l, s),
                    MaturityMatrix::cell(l, s).is_some(),
                    "{l} / {s}"
                );
            }
        }
    }

    #[test]
    fn rows_render_full_table() {
        let rows = MaturityMatrix::rows();
        assert_eq!(rows.len(), 5);
        for (i, (level, cells)) in rows.iter().enumerate() {
            assert_eq!(level.number() as usize, i + 1);
            assert_eq!(cells.len(), 5);
            assert_eq!(cells.iter().filter(|c| c.is_some()).count(), i + 1);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReadinessLevel::Raw.to_string(), "1 - Raw");
        assert_eq!(
            ReadinessLevel::FullyAiReady.to_string(),
            "5 - Fully AI-ready"
        );
        assert_eq!(ProcessingStage::Shard.to_string(), "Shard");
    }
}
