//! Dataset manifests: the evidence a dataset carries about its own
//! preparation.
//!
//! The assessor (see [`crate::assess`]) never trusts a declared readiness
//! level; it derives one from the manifest's recorded evidence. Pipelines
//! update the manifest as stages complete, and provenance records the
//! transitions.

use crate::readiness::ProcessingStage;
use drai_io::json::Json;
use drai_tensor::DType;

/// Data modality (Table 1's "Modality" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modality {
    /// Spatial/temporal grids (climate fields).
    Grid,
    /// Multichannel time series (fusion diagnostics).
    TimeSeries,
    /// Symbol sequences (DNA, protein).
    Sequence,
    /// Rows and columns (EHR).
    Tabular,
    /// Node/edge structures (materials).
    Graph,
    /// Dense images.
    Image,
}

impl Modality {
    /// Stable name for manifests.
    pub const fn name(self) -> &'static str {
        match self {
            Modality::Grid => "grid",
            Modality::TimeSeries => "time-series",
            Modality::Sequence => "sequence",
            Modality::Tabular => "tabular",
            Modality::Graph => "graph",
            Modality::Image => "image",
        }
    }

    /// Parse a manifest name.
    pub fn from_name(s: &str) -> Option<Modality> {
        Some(match s {
            "grid" => Modality::Grid,
            "time-series" => Modality::TimeSeries,
            "sequence" => Modality::Sequence,
            "tabular" => Modality::Tabular,
            "graph" => Modality::Graph,
            "image" => Modality::Image,
            _ => return None,
        })
    }
}

/// One variable/channel/column in the dataset schema.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableSpec {
    /// Variable name.
    pub name: String,
    /// Storage dtype.
    pub dtype: DType,
    /// Physical unit symbol ("K", "A", "1"); empty when unknown — a
    /// readiness deficiency the assessor notices.
    pub unit: String,
    /// Per-sample shape (empty = scalar).
    pub shape: Vec<usize>,
}

/// Evidence of what preparation a dataset has undergone.
///
/// Boolean fields are *claims backed by pipeline execution* — the domain
/// pipelines set them as stages complete, and integration tests verify a
/// fresh synthetic dataset walks levels 1→5 as the flags accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetManifest {
    /// Dataset name.
    pub name: String,
    /// Scientific domain ("climate", "fusion", "bio", "materials", ...).
    pub domain: String,
    /// Primary modality.
    pub modality: Modality,
    /// Variables (empty until a schema is established).
    pub schema: Vec<VariableSpec>,
    /// Total sample/record count.
    pub records: u64,

    // --- Ingest evidence ---
    /// Data is held in a standard, self-describing format.
    pub standard_format: bool,
    /// Ingestion validated (checksums verified, schema checked).
    pub ingest_validated: bool,
    /// Metadata enriched (units, schema, descriptions present).
    pub metadata_enriched: bool,
    /// Ingestion path is parallel/high-throughput.
    pub high_throughput_ingest: bool,
    /// Ingestion runs without manual steps.
    pub ingest_automated: bool,

    // --- Preprocess evidence ---
    /// Initial spatial/temporal alignment or regridding done.
    pub aligned_initial: bool,
    /// Alignment standardized (common grid/clock across sources).
    pub aligned_standardized: bool,
    /// Alignment integrated and automated.
    pub alignment_automated: bool,

    // --- Transform evidence ---
    /// Initial normalization (or anonymization where required) applied.
    pub normalized_initial: bool,
    /// Normalization/anonymization finalized (fitted stats recorded).
    pub normalized_final: bool,
    /// Transform stage automated and audited (provenance captured).
    pub transform_audited: bool,
    /// Dataset contains PHI/PII and therefore requires anonymization.
    pub requires_anonymization: bool,
    /// Anonymization applied and verified (k-anonymity / scan clean).
    pub anonymized: bool,
    /// Fraction of samples with labels, 0..=1.
    pub label_coverage: f64,

    // --- Structure evidence ---
    /// Domain-specific features extracted.
    pub features_extracted: bool,
    /// Feature extraction automated and validated against invariants.
    pub features_validated: bool,

    // --- Shard evidence ---
    /// Train/val/test split assigned.
    pub split_assigned: bool,
    /// Sharded into binary formats with a manifest.
    pub sharded: bool,

    // --- Quality ---
    /// Fraction of missing values after preprocessing, 0..=1.
    pub missing_fraction: f64,
}

impl DatasetManifest {
    /// A new, entirely raw dataset (level 1 evidence only).
    pub fn raw(name: &str, domain: &str, modality: Modality, records: u64) -> DatasetManifest {
        DatasetManifest {
            name: name.to_string(),
            domain: domain.to_string(),
            modality,
            schema: Vec::new(),
            records,
            standard_format: false,
            ingest_validated: false,
            metadata_enriched: false,
            high_throughput_ingest: false,
            ingest_automated: false,
            aligned_initial: false,
            aligned_standardized: false,
            alignment_automated: false,
            normalized_initial: false,
            normalized_final: false,
            transform_audited: false,
            requires_anonymization: false,
            anonymized: false,
            label_coverage: 0.0,
            features_extracted: false,
            features_validated: false,
            split_assigned: false,
            sharded: false,
            missing_fraction: 0.0,
        }
    }

    /// Validate internal consistency (fractions in range, implications
    /// like `normalized_final → normalized_initial` hold).
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        let frac_ok = |f: f64| (0.0..=1.0).contains(&f);
        if !frac_ok(self.label_coverage) {
            return Err(crate::CoreError::InvalidManifest(format!(
                "label_coverage {}",
                self.label_coverage
            )));
        }
        if !frac_ok(self.missing_fraction) {
            return Err(crate::CoreError::InvalidManifest(format!(
                "missing_fraction {}",
                self.missing_fraction
            )));
        }
        let implications = [
            (
                self.normalized_final,
                self.normalized_initial,
                "normalized_final → normalized_initial",
            ),
            (
                self.aligned_standardized,
                self.aligned_initial,
                "aligned_standardized → aligned_initial",
            ),
            (
                self.alignment_automated,
                self.aligned_standardized,
                "alignment_automated → aligned_standardized",
            ),
            (
                self.features_validated,
                self.features_extracted,
                "features_validated → features_extracted",
            ),
            (
                self.ingest_automated,
                self.high_throughput_ingest,
                "ingest_automated → high_throughput_ingest",
            ),
            (
                self.transform_audited,
                self.normalized_final,
                "transform_audited → normalized_final",
            ),
        ];
        for (a, b, what) in implications {
            if a && !b {
                return Err(crate::CoreError::InvalidManifest(format!(
                    "inconsistent evidence: {what}"
                )));
            }
        }
        Ok(())
    }

    /// Which stages have *any* recorded evidence — used by reports.
    pub fn touched_stages(&self) -> Vec<ProcessingStage> {
        let mut out = vec![ProcessingStage::Ingest];
        if self.aligned_initial {
            out.push(ProcessingStage::Preprocess);
        }
        if self.normalized_initial || self.anonymized || self.label_coverage > 0.0 {
            out.push(ProcessingStage::Transform);
        }
        if self.features_extracted {
            out.push(ProcessingStage::Structure);
        }
        if self.split_assigned || self.sharded {
            out.push(ProcessingStage::Shard);
        }
        out
    }

    /// Serialize to JSON (for sidecar files and provenance).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("domain", Json::from(self.domain.clone())),
            ("modality", Json::from(self.modality.name())),
            ("records", Json::from(self.records)),
            (
                "schema",
                Json::Arr(
                    self.schema
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("name", Json::from(v.name.clone())),
                                ("dtype", Json::from(v.dtype.to_string())),
                                ("unit", Json::from(v.unit.clone())),
                                (
                                    "shape",
                                    Json::Arr(v.shape.iter().map(|&d| Json::from(d)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "evidence",
                Json::obj([
                    ("standard_format", Json::from(self.standard_format)),
                    ("ingest_validated", Json::from(self.ingest_validated)),
                    ("metadata_enriched", Json::from(self.metadata_enriched)),
                    (
                        "high_throughput_ingest",
                        Json::from(self.high_throughput_ingest),
                    ),
                    ("ingest_automated", Json::from(self.ingest_automated)),
                    ("aligned_initial", Json::from(self.aligned_initial)),
                    (
                        "aligned_standardized",
                        Json::from(self.aligned_standardized),
                    ),
                    ("alignment_automated", Json::from(self.alignment_automated)),
                    ("normalized_initial", Json::from(self.normalized_initial)),
                    ("normalized_final", Json::from(self.normalized_final)),
                    ("transform_audited", Json::from(self.transform_audited)),
                    (
                        "requires_anonymization",
                        Json::from(self.requires_anonymization),
                    ),
                    ("anonymized", Json::from(self.anonymized)),
                    ("label_coverage", Json::from(self.label_coverage)),
                    ("features_extracted", Json::from(self.features_extracted)),
                    ("features_validated", Json::from(self.features_validated)),
                    ("split_assigned", Json::from(self.split_assigned)),
                    ("sharded", Json::from(self.sharded)),
                    ("missing_fraction", Json::from(self.missing_fraction)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_manifest_is_valid_and_minimal() {
        let m = DatasetManifest::raw("cmip-synth", "climate", Modality::Grid, 1000);
        m.validate().unwrap();
        assert_eq!(m.touched_stages(), vec![ProcessingStage::Ingest]);
        assert_eq!(m.records, 1000);
    }

    #[test]
    fn modality_name_round_trip() {
        for m in [
            Modality::Grid,
            Modality::TimeSeries,
            Modality::Sequence,
            Modality::Tabular,
            Modality::Graph,
            Modality::Image,
        ] {
            assert_eq!(Modality::from_name(m.name()), Some(m));
        }
        assert_eq!(Modality::from_name("hologram"), None);
    }

    #[test]
    fn implication_violations_detected() {
        let mut m = DatasetManifest::raw("x", "fusion", Modality::TimeSeries, 10);
        m.normalized_final = true; // without normalized_initial
        assert!(m.validate().is_err());
        m.normalized_initial = true;
        m.validate().unwrap();

        let mut m2 = DatasetManifest::raw("x", "fusion", Modality::TimeSeries, 10);
        m2.alignment_automated = true;
        assert!(m2.validate().is_err());

        let mut m3 = DatasetManifest::raw("x", "bio", Modality::Tabular, 10);
        m3.label_coverage = 1.5;
        assert!(m3.validate().is_err());
        m3.label_coverage = 0.5;
        m3.missing_fraction = -0.1;
        assert!(m3.validate().is_err());
    }

    #[test]
    fn touched_stages_accumulate() {
        let mut m = DatasetManifest::raw("x", "climate", Modality::Grid, 10);
        m.aligned_initial = true;
        m.normalized_initial = true;
        m.features_extracted = true;
        m.sharded = true;
        assert_eq!(m.touched_stages().len(), 5);
    }

    #[test]
    fn json_contains_evidence() {
        let mut m = DatasetManifest::raw("x", "bio", Modality::Sequence, 5);
        m.schema.push(VariableSpec {
            name: "onehot".into(),
            dtype: DType::F32,
            unit: "1".into(),
            shape: vec![196_608, 4],
        });
        m.anonymized = true;
        let j = m.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(
            j.get("evidence")
                .unwrap()
                .get("anonymized")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let schema = j.get("schema").unwrap().as_arr().unwrap();
        assert_eq!(schema[0].get("dtype").unwrap().as_str(), Some("f32"));
        // Round-trip through text parses cleanly.
        let text = j.to_string_compact();
        assert!(Json::parse(&text).is_ok());
    }
}
