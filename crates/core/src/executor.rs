//! Streaming, bounded-memory batch executor.
//!
//! `Pipeline::run_batch` materializes every item and barriers on one
//! rayon collect: stage work never overlaps *across* items and peak
//! memory grows linearly with batch size. This module runs the same
//! pipeline as a pipelined chain instead — one bounded channel per
//! stage boundary, a small worker pool per stage — so item 7 can be
//! sharding while item 9 is still regridding, and at most
//! `O(channel_capacity × stages)` items are resident at once
//! regardless of batch size (the paper's Figure 1 streaming
//! raw→AI-ready flow, rather than a batch barrier).
//!
//! Semantics match `run_batch`:
//!
//! * outputs preserve input order;
//! * on failure the error of the *lowest input index* wins,
//!   deterministically — after any failure, later-index items are
//!   drained (received and dropped) so the chain never deadlocks,
//!   while earlier-index items keep running in case one of them fails
//!   with a smaller index;
//! * a panic inside a stage is caught in the worker, the chain drains,
//!   and the panic resumes on the calling thread;
//! * a failed batch publishes no merged per-stage metrics;
//! * an empty batch returns one zeroed [`StageMetrics`] per stage.
//!
//! Stages with a fast path ([`PipelineBuilder::stage_with_fast_path`],
//! e.g. cache probes installed by `drai-cache`) are probed on the
//! *sending* side: a hit short-circuits the stage's channel hop
//! entirely, so a fully-warm item can travel from the feeder to the
//! output without ever being queued.
//!
//! Telemetry (registered in `drai_telemetry::METRIC_FAMILIES`):
//! `executor.queue_depth` (gauge over all queued items; its high-water
//! mark bounds resident items), `executor.stall_ns` (histogram of time
//! producers spend blocked on a full downstream channel — the
//! backpressure signal), `executor.<pipeline>.<stage>.inflight`
//! (per-stage gauge of items inside the stage function),
//! `executor.shortcircuits` (fast-path hits that skipped a hop),
//! `executor.items_completed` (counter ticking live as items clear the
//! whole chain — the progress signal the monitor sampler reads), and a
//! `pipeline.<name>.run_streaming` span. Per-stage `.records`/`.bytes`
//! counters and `.ns`/`.item_ns` histograms follow the `run_batch`
//! contract.
//!
//! [`executor_health_spec`] packages these metrics into the default
//! `drai_telemetry::monitor` health rules for a streaming run.

use crate::metrics::Throughput;
use crate::pipeline::{FastPath, Pipeline, StageCounters, StageDef, StageMetrics};
use crate::CoreError;
use crossbeam::channel::{bounded, Receiver, Sender};
use drai_telemetry::monitor::{Condition, HealthSpec};
use drai_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch, TraceContext};
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for [`StreamingBatchExt::run_batch_streaming`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Capacity of each inter-stage channel (clamped to ≥ 1). Peak
    /// resident items are `O(channel_capacity × stages)`, independent
    /// of batch size.
    pub channel_capacity: usize,
    /// Worker threads per stage (clamped to ≥ 1).
    pub workers_per_stage: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            channel_capacity: 8,
            workers_per_stage: 2,
        }
    }
}

impl ExecutorConfig {
    /// Tune for the current host. On a single hardware thread extra
    /// stage workers only add context switches and deeper queues only
    /// add resident items, so degrade toward a capacity-2, one-worker
    /// chain; with real parallelism keep the default small pools.
    pub fn for_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            ExecutorConfig::default()
        } else {
            ExecutorConfig {
                channel_capacity: 2,
                workers_per_stage: 1,
            }
        }
    }
}

/// Default monitor health rules for a streaming run under `cfg` with
/// `nstages` stages:
///
/// - `queue_saturated`: the `executor.queue_depth` window watermark
///   reached every channel's capacity at once — the chain is fully
///   backpressured end to end.
/// - `no_progress`: `executor.items_completed` went 8 consecutive
///   samples without an item clearing the chain — a stall or livelock
///   candidate at the sampling cadence.
pub fn executor_health_spec(cfg: &ExecutorConfig, nstages: usize) -> HealthSpec {
    let cap = cfg.channel_capacity.max(1);
    let saturated = ((nstages + 1) * cap) as i64;
    HealthSpec::new()
        .rule(
            "queue_saturated",
            "executor.queue_depth",
            Condition::GaugeAbove(saturated),
        )
        .rule(
            "no_progress",
            "executor.items_completed",
            Condition::StallFor(8),
        )
}

/// Cooperative cancellation handle for a streaming run, shared between
/// the caller (e.g. the `drai-sched` scheduler shedding a job) and the
/// executor's feeder/workers. Firing it is a one-way latch: the feeder
/// stops admitting new items, in-flight items drain without work, and
/// the run returns a typed `batch cancelled` error instead of partial
/// output — never a silent short batch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Latch the token. Idempotent; observable from every clone.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// Streaming counterpart of `Pipeline::run_batch`.
pub trait StreamingBatchExt<T> {
    /// Run `items` through the pipeline as a pipelined chain over
    /// bounded channels. Same outputs, ordering, error selection and
    /// metrics contract as `run_batch`; memory bounded by
    /// `cfg.channel_capacity` per stage boundary instead of by the
    /// batch size.
    fn run_batch_streaming(
        &self,
        items: Vec<T>,
        cfg: &ExecutorConfig,
    ) -> Result<(Vec<T>, Vec<StageMetrics>), CoreError>;

    /// [`StreamingBatchExt::run_batch_streaming`] with a cooperative
    /// [`CancelToken`]: when the token fires mid-run the chain drains
    /// (never deadlocks), no merged metrics are published, and the
    /// result is a `CoreError::Stage` whose message is `batch
    /// cancelled` — unless a stage error/panic with some input index
    /// already decided the batch, which still wins.
    fn run_batch_streaming_cancellable(
        &self,
        items: Vec<T>,
        cfg: &ExecutorConfig,
        cancel: &CancelToken,
    ) -> Result<(Vec<T>, Vec<StageMetrics>), CoreError>;
}

/// An item in flight, tagged with its input index.
struct Msg<T> {
    idx: usize,
    item: T,
}

/// Why the batch must fail: the stage error or caught panic with the
/// lowest input index observed so far.
enum Incident {
    Error {
        index: usize,
        stage: String,
        message: String,
    },
    Panic {
        index: usize,
        payload: Box<dyn Any + Send>,
    },
}

impl Incident {
    fn index(&self) -> usize {
        match self {
            Incident::Error { index, .. } | Incident::Panic { index, .. } => *index,
        }
    }
}

/// Per-stage accumulators, updated lock-free by workers (the item
/// latency list is the one mutex, touched once per item).
struct StageAcc {
    records: AtomicU64,
    bytes: AtomicU64,
    /// Earliest stage entry, ns since the executor epoch (`u64::MAX`
    /// until the first item).
    start_min: AtomicU64,
    /// Latest stage exit, ns since the executor epoch.
    end_max: AtomicU64,
    /// Per-item latency through this stage, buffered and published to
    /// the `.item_ns` histogram only if the whole batch succeeds.
    item_ns: Mutex<Vec<u64>>,
}

impl StageAcc {
    fn new() -> Self {
        StageAcc {
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            start_min: AtomicU64::new(u64::MAX),
            end_max: AtomicU64::new(0),
            item_ns: Mutex::new(Vec::new()),
        }
    }

    fn absorb(&self, counters: &StageCounters, start_ns: u64, end_ns: u64) {
        self.records.fetch_add(counters.records, Ordering::Relaxed);
        self.bytes.fetch_add(counters.bytes, Ordering::Relaxed);
        self.start_min.fetch_min(start_ns, Ordering::Relaxed);
        self.end_max.fetch_max(end_ns, Ordering::Relaxed);
        self.item_ns.lock().push(end_ns.saturating_sub(start_ns));
    }
}

/// Everything the feeder, stage workers and collector share by
/// reference for the duration of one streaming run.
struct ExecShared<'a, T> {
    stages: &'a [StageDef<T>],
    accs: &'a [StageAcc],
    incident: &'a Mutex<Option<Incident>>,
    /// Lowest failing input index so far (`usize::MAX` = none). Items
    /// with an index ≥ this are drained without work; items below it
    /// keep running so a smaller-index failure can still surface.
    error_before: &'a AtomicUsize,
    epoch: Stopwatch,
    queue_depth: Arc<Gauge>,
    stall: Arc<Histogram>,
    shortcircuits: Arc<Counter>,
    inflight: &'a [Arc<Gauge>],
    /// External cancellation latch (a fresh, never-fired token for
    /// plain streaming runs).
    cancel: &'a CancelToken,
}

impl<T> ExecShared<'_, T> {
    fn cancelled(&self, idx: usize) -> bool {
        self.cancel.is_cancelled() || idx >= self.error_before.load(Ordering::SeqCst)
    }

    fn record_incident(&self, inc: Incident) {
        self.error_before.fetch_min(inc.index(), Ordering::SeqCst);
        let mut slot = self.incident.lock();
        let replace = match slot.as_ref() {
            Some(current) => inc.index() < current.index(),
            None => true,
        };
        if replace {
            *slot = Some(inc);
        }
    }

    /// Probe fast paths from stage `k` onward: each hit absorbs its
    /// counters into that stage's accumulators and skips the stage's
    /// channel hop. Returns the stage the item must enter next
    /// (`stages.len()` = done) or `None` when a probe panicked (the
    /// incident is recorded).
    fn advance(&self, mut k: usize, idx: usize, mut item: T) -> Option<(usize, T)> {
        while k < self.stages.len() {
            let Some(fast) = self.stages[k].fast.clone() else {
                break;
            };
            let start_ns = self.epoch.elapsed_ns();
            let mut counters = StageCounters::default();
            let probed = catch_unwind(AssertUnwindSafe(|| fast(item, &mut counters)));
            match probed {
                Err(payload) => {
                    self.record_incident(Incident::Panic {
                        index: idx,
                        payload,
                    });
                    return None;
                }
                Ok(FastPath::Hit(output)) => {
                    self.accs[k].absorb(&counters, start_ns, self.epoch.elapsed_ns());
                    self.shortcircuits.incr();
                    item = output;
                    k += 1;
                }
                Ok(FastPath::Miss(original)) => {
                    item = original;
                    break;
                }
            }
        }
        Some((k, item))
    }

    /// Send `msg` into the channel for stage `k` (relative to `txs`),
    /// timing how long the send blocks on a full downstream channel.
    fn forward(&self, txs: &[Sender<Msg<T>>], k: usize, msg: Msg<T>) {
        let Some(tx) = txs.get(k) else {
            return;
        };
        let wait = Stopwatch::start();
        // A send error means every downstream receiver exited — only
        // possible when the run is collapsing; dropping the item is
        // correct (the incident that caused the collapse is recorded).
        if tx.send(msg).is_ok() {
            self.queue_depth.add(1);
        }
        self.stall.record(wait.elapsed_ns());
    }

    /// Feeder: push every input item into the front of the chain (or
    /// further along, when leading fast paths hit).
    fn feed(&self, items: Vec<T>, txs: Vec<Sender<Msg<T>>>) {
        for (idx, item) in items.into_iter().enumerate() {
            if self.cancelled(idx) {
                continue;
            }
            if let Some((k, item)) = self.advance(0, idx, item) {
                self.forward(&txs, k, Msg { idx, item });
            }
        }
    }

    /// Worker for stage `s`: `txs` covers channels `s+1..=stages.len()`.
    fn work(&self, s: usize, rx: Receiver<Msg<T>>, txs: Vec<Sender<Msg<T>>>) {
        while let Ok(msg) = rx.recv() {
            self.queue_depth.add(-1);
            if self.cancelled(msg.idx) {
                continue; // drain without work so upstream never blocks
            }
            let busy = self.inflight[s].inc_scope();
            let start_ns = self.epoch.elapsed_ns();
            let mut counters = StageCounters::default();
            let func = self.stages[s].func.clone();
            let item = msg.item;
            let result = catch_unwind(AssertUnwindSafe(|| func(item, &mut counters)));
            let end_ns = self.epoch.elapsed_ns();
            drop(busy);
            match result {
                Err(payload) => self.record_incident(Incident::Panic {
                    index: msg.idx,
                    payload,
                }),
                Ok(Err(message)) => self.record_incident(Incident::Error {
                    index: msg.idx,
                    stage: self.stages[s].name.clone(),
                    message,
                }),
                Ok(Ok(output)) => {
                    self.accs[s].absorb(&counters, start_ns, end_ns);
                    if let Some((k, output)) = self.advance(s + 1, msg.idx, output) {
                        self.forward(
                            &txs,
                            k - (s + 1),
                            Msg {
                                idx: msg.idx,
                                item: output,
                            },
                        );
                    }
                }
            }
        }
    }
}

impl<T: Send> StreamingBatchExt<T> for Pipeline<T> {
    fn run_batch_streaming(
        &self,
        items: Vec<T>,
        cfg: &ExecutorConfig,
    ) -> Result<(Vec<T>, Vec<StageMetrics>), CoreError> {
        // A fresh token never fires, so this is exactly the
        // pre-cancellation semantics.
        self.run_batch_streaming_cancellable(items, cfg, &CancelToken::new())
    }

    fn run_batch_streaming_cancellable(
        &self,
        items: Vec<T>,
        cfg: &ExecutorConfig,
        cancel: &CancelToken,
    ) -> Result<(Vec<T>, Vec<StageMetrics>), CoreError> {
        let registry = Registry::current();
        let span = registry.span(format!("pipeline.{}.run_streaming", self.name));
        span.add_items(items.len() as u64);
        let _in_span = span.enter();
        let nstages = self.stages.len();
        if nstages == 0 {
            return Ok((items, Vec::new()));
        }
        if items.is_empty() {
            return Ok((Vec::new(), self.zeroed_metrics()));
        }
        let n = items.len();
        let cap = cfg.channel_capacity.max(1);
        let workers = cfg.workers_per_stage.max(1);

        let inflight: Vec<Arc<Gauge>> = self
            .stages
            .iter()
            .map(|s| registry.gauge(&format!("executor.{}.{}.inflight", self.name, s.name)))
            .collect();
        let accs: Vec<StageAcc> = (0..nstages).map(|_| StageAcc::new()).collect();
        let incident: Mutex<Option<Incident>> = Mutex::new(None);
        let error_before = AtomicUsize::new(usize::MAX);
        let shared = ExecShared {
            stages: &self.stages,
            accs: &accs,
            incident: &incident,
            error_before: &error_before,
            epoch: Stopwatch::start(),
            queue_depth: registry.gauge("executor.queue_depth"),
            stall: registry.histogram("executor.stall_ns"),
            shortcircuits: registry.counter("executor.shortcircuits"),
            inflight: &inflight,
            cancel,
        };

        // Channel k feeds stage k; channel `nstages` is the output.
        // Every producer that can skip ahead holds senders for all its
        // downstream channels, so channel k disconnects exactly when
        // the feeder and all workers of stages < k have finished.
        let mut chans_tx: Vec<Sender<Msg<T>>> = Vec::with_capacity(nstages + 1);
        let mut chans_rx: Vec<Receiver<Msg<T>>> = Vec::with_capacity(nstages + 1);
        for _ in 0..=nstages {
            let (tx, rx) = bounded(cap);
            chans_tx.push(tx);
            chans_rx.push(rx);
        }
        // Capture-and-attach: workers report into the caller's registry
        // and parent under the streaming span (same handoff as
        // `prefetch_map`).
        let context = TraceContext::current();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let shared = &shared;
            let context = &context;
            {
                let txs = chans_tx.clone();
                scope.spawn(move || {
                    let _attached = context.as_ref().map(TraceContext::attach);
                    shared.feed(items, txs);
                });
            }
            for s in 0..nstages {
                for _ in 0..workers {
                    let rx = chans_rx[s].clone();
                    let txs = chans_tx[s + 1..].to_vec();
                    scope.spawn(move || {
                        let _attached = context.as_ref().map(TraceContext::attach);
                        shared.work(s, rx, txs);
                    });
                }
            }
            // Drop the construction-time handles: from here on, sender
            // counts reflect only live producers, so disconnection
            // cascades down the chain as each tier finishes.
            let Some(out_rx) = chans_rx.pop() else {
                return;
            };
            drop(chans_rx);
            drop(chans_tx);
            // Live progress signal: unlike the per-stage counters
            // published after the batch completes, this counter ticks
            // as each item clears the whole chain, so the monitor
            // sampler can compute items/s and ETA mid-run.
            let completed = registry.counter("executor.items_completed");
            while let Ok(msg) = out_rx.recv() {
                shared.queue_depth.add(-1);
                completed.incr();
                if let Some(slot) = slots.get_mut(msg.idx) {
                    *slot = Some(msg.item);
                }
            }
        });

        if let Some(inc) = incident.into_inner() {
            match inc {
                Incident::Panic { payload, .. } => resume_unwind(payload),
                Incident::Error { stage, message, .. } => {
                    return Err(CoreError::Stage { stage, message })
                }
            }
        }
        // A cancelled batch drains to here without an incident but with
        // missing slots; surface the typed cancellation rather than the
        // "item lost" invariant error (checked first, since both hold).
        if cancel.is_cancelled() {
            return Err(CoreError::Stage {
                stage: format!("{}.executor", self.name),
                message: "batch cancelled".to_string(),
            });
        }
        let mut outputs = Vec::with_capacity(n);
        for slot in slots {
            match slot {
                Some(item) => outputs.push(item),
                // Unreachable unless a worker died without recording an
                // incident; surface it rather than returning a short
                // batch.
                None => {
                    return Err(CoreError::Stage {
                        stage: format!("{}.executor", self.name),
                        message: "item lost in streaming executor".to_string(),
                    })
                }
            }
        }

        let mut merged = self.zeroed_metrics();
        for (si, m) in merged.iter_mut().enumerate() {
            let acc = &accs[si];
            let records = acc.records.load(Ordering::Relaxed);
            let bytes = acc.bytes.load(Ordering::Relaxed);
            let start = acc.start_min.load(Ordering::Relaxed);
            let end = acc.end_max.load(Ordering::Relaxed);
            let wall_ns = if start == u64::MAX {
                0
            } else {
                end.saturating_sub(start)
            };
            m.throughput = Throughput {
                records,
                bytes,
                elapsed: Duration::from_nanos(wall_ns),
            };
            let base = format!("pipeline.{}.{}", self.name, m.name);
            registry.counter(&format!("{base}.records")).add(records);
            registry.counter(&format!("{base}.bytes")).add(bytes);
            registry.histogram(&format!("{base}.ns")).record(wall_ns);
            let per_item = registry.histogram(&format!("{base}.item_ns"));
            for &ns in acc.item_ns.lock().iter() {
                per_item.record(ns);
            }
            span.add_bytes(bytes);
        }
        Ok((outputs, merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readiness::ProcessingStage as S;
    use drai_telemetry::{Registry, TraceContext};

    fn chain3() -> Pipeline<u64> {
        Pipeline::builder("exec")
            .stage("a", S::Ingest, |x, c| {
                c.records = 1;
                Ok(x + 1)
            })
            .stage("b", S::Transform, |x, c| {
                c.records = 1;
                c.bytes = 8;
                Ok(x * 2)
            })
            .stage("c", S::Shard, |x, c| {
                c.records = 1;
                Ok(x + 3)
            })
            .build()
    }

    fn in_registry<R>(f: impl FnOnce() -> R) -> (R, drai_telemetry::Snapshot) {
        let reg = Registry::new();
        let out = TraceContext::root(&reg).scope(f);
        (out, reg.snapshot())
    }

    #[test]
    fn streaming_matches_run_batch_outputs_and_counts() {
        let p = chain3();
        let items: Vec<u64> = (0..100).collect();
        let (plain, plain_m) = p.run_batch(items.clone()).unwrap();
        let ((streamed, stream_m), snap) = in_registry(|| {
            p.run_batch_streaming(items, &ExecutorConfig::default())
                .unwrap()
        });
        assert_eq!(streamed, plain);
        for (a, b) in plain_m.iter().zip(&stream_m) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.throughput.records, b.throughput.records);
            assert_eq!(a.throughput.bytes, b.throughput.bytes);
        }
        assert_eq!(snap.counters["pipeline.exec.b.records"], 100);
        assert_eq!(snap.counters["pipeline.exec.b.bytes"], 800);
        assert_eq!(snap.histograms["pipeline.exec.b.ns"].count, 1);
        assert_eq!(snap.histograms["pipeline.exec.b.item_ns"].count, 100);
        assert_eq!(snap.spans_named("pipeline.exec.run_streaming").len(), 1);
        // The live progress counter ticked once per item.
        assert_eq!(snap.counters["executor.items_completed"], 100);
    }

    #[test]
    fn health_spec_scales_saturation_to_config() {
        let cfg = ExecutorConfig {
            channel_capacity: 4,
            workers_per_stage: 2,
        };
        let spec = executor_health_spec(&cfg, 3);
        let rules = spec.rules();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "queue_saturated");
        assert_eq!(rules[0].metric, "executor.queue_depth");
        // 4 channels (3 stages + output) × capacity 4.
        assert_eq!(rules[0].cond, Condition::GaugeAbove(16));
        assert_eq!(rules[1].name, "no_progress");
        assert_eq!(rules[1].metric, "executor.items_completed");
        assert_eq!(rules[1].cond, Condition::StallFor(8));
    }

    #[test]
    fn empty_batch_returns_zeroed_metrics() {
        let p = chain3();
        let (outputs, metrics) = p
            .run_batch_streaming(Vec::new(), &ExecutorConfig::default())
            .unwrap();
        assert!(outputs.is_empty());
        assert_eq!(metrics.len(), 3);
        for m in &metrics {
            assert_eq!(m.throughput.records, 0);
        }
    }

    #[test]
    fn stageless_pipeline_passes_items_through() {
        let p: Pipeline<u32> = Pipeline::builder("noop").build();
        let (outputs, metrics) = p
            .run_batch_streaming(vec![1, 2, 3], &ExecutorConfig::default())
            .unwrap();
        assert_eq!(outputs, vec![1, 2, 3]);
        assert!(metrics.is_empty());
    }

    #[test]
    fn queue_depth_high_water_is_bounded_by_capacity_not_batch() {
        let p = chain3();
        let cfg = ExecutorConfig {
            channel_capacity: 2,
            workers_per_stage: 2,
        };
        let items: Vec<u64> = (0..256).collect();
        let ((), snap) = in_registry(|| {
            p.run_batch_streaming(items, &cfg).unwrap();
        });
        let high_water = snap.gauges["executor.queue_depth"].max;
        // 4 channels × capacity 2, plus one transient per producer
        // between recv and gauge decrement — far below the batch size.
        let bound = (4 * cfg.channel_capacity + 3 * cfg.workers_per_stage + 1) as i64;
        assert!(
            high_water <= bound,
            "queue depth {high_water} exceeds bound {bound}"
        );
        assert!(high_water >= 1, "gauge never moved");
    }

    #[test]
    fn lowest_index_error_wins_deterministically() {
        let p: Pipeline<u64> = Pipeline::builder("exec-err")
            .stage("maybe", S::Transform, |x, _| {
                if x == 6 || x == 11 || x == 17 {
                    Err(format!("item {x} failed"))
                } else {
                    Ok(x)
                }
            })
            .build();
        for _ in 0..10 {
            match p.run_batch_streaming((0..32).collect(), &ExecutorConfig::default()) {
                Err(CoreError::Stage { stage, message }) => {
                    assert_eq!(stage, "maybe");
                    assert_eq!(message, "item 6 failed");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn failed_batch_publishes_no_merged_metrics() {
        let p: Pipeline<u64> = Pipeline::builder("exec-fail")
            .stage("pass", S::Ingest, |x, c| {
                c.records = 1;
                Ok(x)
            })
            .stage("maybe", S::Transform, |x, _| {
                if x == 3 {
                    Err("nope".to_string())
                } else {
                    Ok(x)
                }
            })
            .build();
        let (result, snap) =
            in_registry(|| p.run_batch_streaming((0..16).collect(), &ExecutorConfig::default()));
        assert!(result.is_err());
        assert!(!snap
            .counters
            .contains_key("pipeline.exec-fail.pass.records"));
        assert!(!snap
            .histograms
            .contains_key("pipeline.exec-fail.pass.item_ns"));
        assert_eq!(
            snap.spans_named("pipeline.exec-fail.run_streaming").len(),
            1
        );
    }

    #[test]
    fn fast_path_hits_short_circuit_channel_hops() {
        let p: Pipeline<u64> = Pipeline::builder("exec-fast")
            .stage("first", S::Ingest, |x, c| {
                c.records = 1;
                Ok(x)
            })
            .stage_with_fast_path(
                "memo",
                S::Transform,
                |x, c| {
                    if x % 2 == 0 {
                        c.records = 1;
                        FastPath::Hit(x + 100)
                    } else {
                        FastPath::Miss(x)
                    }
                },
                |x, c| {
                    c.records = 1;
                    Ok(x + 100)
                },
            )
            .build();
        let ((outputs, metrics), snap) = in_registry(|| {
            p.run_batch_streaming((0..10).collect(), &ExecutorConfig::default())
                .unwrap()
        });
        assert_eq!(outputs, (100..110).collect::<Vec<u64>>());
        // Every item is accounted to the memo stage whether it hit or
        // missed.
        assert_eq!(metrics[1].throughput.records, 10);
        assert_eq!(snap.counters["executor.shortcircuits"], 5);
    }

    #[test]
    fn streaming_overlaps_stages_across_items() {
        // With a single worker per stage and a 3-stage chain, pipelined
        // execution still yields correct ordered output under load.
        let p = chain3();
        let cfg = ExecutorConfig {
            channel_capacity: 1,
            workers_per_stage: 1,
        };
        let (outputs, _) = p.run_batch_streaming((0..64).collect(), &cfg).unwrap();
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(*out, (i as u64 + 1) * 2 + 3);
        }
    }

    /// Two-stage pipeline whose memo stage hits its fast path on
    /// multiples of 3; `slow_calls` counts channel-hop executions of
    /// the slow closure.
    fn memo_pipeline(slow_calls: Arc<AtomicU64>) -> Pipeline<u64> {
        Pipeline::builder("exec-degen")
            .stage("first", S::Ingest, |x, c| {
                c.records = 1;
                Ok(x)
            })
            .stage_with_fast_path(
                "memo",
                S::Transform,
                |x, c| {
                    if x % 3 == 0 {
                        c.records = 1;
                        FastPath::Hit(x + 100)
                    } else {
                        FastPath::Miss(x)
                    }
                },
                move |x, c| {
                    slow_calls.fetch_add(1, Ordering::SeqCst);
                    c.records = 1;
                    Ok(x + 100)
                },
            )
            .build()
    }

    #[test]
    fn fast_path_accounting_agrees_with_run_batch_under_degenerate_configs() {
        let items: Vec<u64> = (0..30).collect();
        let hits = items.iter().filter(|x| *x % 3 == 0).count() as u64;

        // Baseline: run_batch probes the same fast paths (no channels,
        // so no shortcircuit counter) — pin its slow-call count.
        let batch_slow = Arc::new(AtomicU64::new(0));
        let (batch_out, batch_m) = memo_pipeline(batch_slow.clone())
            .run_batch(items.clone())
            .unwrap();
        assert_eq!(batch_slow.load(Ordering::SeqCst), 30 - hits);

        for cfg in [
            ExecutorConfig {
                channel_capacity: 1,
                workers_per_stage: 1,
            },
            ExecutorConfig {
                channel_capacity: 1,
                workers_per_stage: 4,
            },
            ExecutorConfig {
                channel_capacity: 16,
                workers_per_stage: 1,
            },
            ExecutorConfig::default(),
        ] {
            let slow = Arc::new(AtomicU64::new(0));
            let p = memo_pipeline(slow.clone());
            let ((outputs, metrics), snap) =
                in_registry(|| p.run_batch_streaming(items.clone(), &cfg).unwrap());
            assert_eq!(outputs, batch_out, "outputs diverge under {cfg:?}");
            // Channel hops into the memo stage = slow-path executions;
            // together with shortcircuits they cover every item exactly
            // once, and both agree with run_batch.
            assert_eq!(
                slow.load(Ordering::SeqCst),
                batch_slow.load(Ordering::SeqCst),
                "slow-path hop count diverges under {cfg:?}"
            );
            assert_eq!(snap.counters["executor.shortcircuits"], hits);
            assert_eq!(
                slow.load(Ordering::SeqCst) + snap.counters["executor.shortcircuits"],
                30
            );
            assert_eq!(metrics[1].throughput.records, batch_m[1].throughput.records);
        }
    }

    #[test]
    fn degenerate_empty_batch_has_no_shortcircuits() {
        let slow = Arc::new(AtomicU64::new(0));
        let p = memo_pipeline(slow.clone());
        let cfg = ExecutorConfig {
            channel_capacity: 1,
            workers_per_stage: 1,
        };
        let ((outputs, metrics), snap) =
            in_registry(|| p.run_batch_streaming(Vec::new(), &cfg).unwrap());
        assert!(outputs.is_empty());
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].throughput.records, 0);
        assert_eq!(slow.load(Ordering::SeqCst), 0);
        assert!(!snap.counters.contains_key("executor.shortcircuits"));
        assert!(!snap.counters.contains_key("executor.items_completed"));
    }

    #[test]
    fn prefired_cancel_token_yields_typed_cancellation() {
        let p = chain3();
        let token = CancelToken::new();
        token.cancel();
        match p.run_batch_streaming_cancellable(
            (0..16).collect(),
            &ExecutorConfig::default(),
            &token,
        ) {
            Err(CoreError::Stage { stage, message }) => {
                assert_eq!(stage, "exec.executor");
                assert_eq!(message, "batch cancelled");
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn mid_run_cancellation_drains_without_deadlock_or_metrics() {
        let token = CancelToken::new();
        let trigger = token.clone();
        let p: Pipeline<u64> = Pipeline::builder("exec-cancel")
            .stage("work", S::Transform, move |x, c| {
                if x == 5 {
                    trigger.cancel();
                }
                c.records = 1;
                Ok(x)
            })
            .build();
        let cfg = ExecutorConfig {
            channel_capacity: 1,
            workers_per_stage: 1,
        };
        let (result, snap) =
            in_registry(|| p.run_batch_streaming_cancellable((0..256).collect(), &cfg, &token));
        match result {
            Err(CoreError::Stage { stage, message }) => {
                assert_eq!(stage, "exec-cancel.executor");
                assert_eq!(message, "batch cancelled");
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        // Cancelled batches publish no merged per-stage metrics, like
        // any other failed batch.
        assert!(!snap
            .counters
            .contains_key("pipeline.exec-cancel.work.records"));
    }

    #[test]
    fn stage_error_beats_concurrent_cancellation() {
        let token = CancelToken::new();
        let trigger = token.clone();
        let p: Pipeline<u64> = Pipeline::builder("exec-race")
            .stage("work", S::Transform, move |x, _| {
                if x == 3 {
                    trigger.cancel();
                    Err("item 3 failed".to_string())
                } else {
                    Ok(x)
                }
            })
            .build();
        match p.run_batch_streaming_cancellable(
            (0..32).collect(),
            &ExecutorConfig::default(),
            &token,
        ) {
            Err(CoreError::Stage { stage, message }) => {
                assert_eq!(stage, "work");
                assert_eq!(message, "item 3 failed");
            }
            other => panic!("expected the stage error, got {other:?}"),
        }
    }
}
