//! # drai-core
//!
//! The paper's primary contribution — the two-dimensional Data Readiness
//! for AI (DRAI) framework — made executable:
//!
//! * [`readiness`] — the five **Data Readiness Levels** (raw → fully
//!   AI-ready), the five **Data Processing Stages** (ingest → shard), and
//!   the [`readiness::MaturityMatrix`] that reproduces the paper's Table 2
//!   including its N/A cells.
//! * [`dataset`] — [`dataset::DatasetManifest`]: the evidence record a
//!   dataset carries about what preparation it has undergone (modality,
//!   schema, quality, per-stage capability flags).
//! * [`assess`] — [`assess::ReadinessAssessor`]: derives a dataset's
//!   readiness level per processing stage from its manifest, per the
//!   criteria of Table 2. Readiness is *assessed from evidence*, not
//!   declared — the operational teeth the paper calls for.
//! * [`quality`] — data-quality reporting (missing fraction, imbalance,
//!   outliers) feeding the assessor.
//! * [`pipeline`] — a typed stage-graph execution engine with per-stage
//!   metrics, rayon batch execution, and the iterative
//!   prepare→evaluate→refine loop of Figure 1.
//! * [`metrics`] — throughput/latency accounting shared with the bench
//!   harness.

#![forbid(unsafe_code)]

pub mod assess;
pub mod card;
pub mod dataset;
pub mod executor;
pub mod metrics;
pub mod pipeline;
pub mod quality;
pub mod readiness;
pub mod templates;

pub use assess::{Assessment, ReadinessAssessor};
pub use dataset::{DatasetManifest, Modality, VariableSpec};
pub use executor::{CancelToken, ExecutorConfig, StreamingBatchExt};
pub use pipeline::{FastPath, Pipeline, PipelineBuilder, PipelineRun, StageMetrics};
pub use readiness::{MaturityMatrix, ProcessingStage, ReadinessLevel};
pub use templates::DomainTemplate;

/// Errors from the core framework.
#[derive(Debug)]
pub enum CoreError {
    /// A pipeline stage failed.
    Stage {
        /// Stage name.
        stage: String,
        /// Failure description.
        message: String,
    },
    /// Manifest evidence is inconsistent.
    InvalidManifest(String),
    /// Propagated I/O failure.
    Io(drai_io::IoError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Stage { stage, message } => write!(f, "stage {stage:?} failed: {message}"),
            CoreError::InvalidManifest(msg) => write!(f, "invalid manifest: {msg}"),
            CoreError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<drai_io::IoError> for CoreError {
    fn from(e: drai_io::IoError) -> Self {
        CoreError::Io(e)
    }
}
