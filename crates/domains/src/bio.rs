//! Bio/health archetype: `encode → anonymize → fuse → secure-shard`
//! (Table 1 row 3; §3.3; Enformer/C-HER-style multimodal clinical +
//! genomic preprocessing under PHI constraints).
//!
//! Raw data is synthesized as (a) a clinical CSV with direct identifiers
//! (name, MRN, SSN-like field), quasi-identifiers (age, zip), visit dates
//! and lab values with missing entries, and (b) per-patient DNA sequences
//! in FASTA. The pipeline:
//!
//! 1. **ingest** — parse CSV + FASTA, join on patient id, PHI-scan the
//!    free-text field as the intake audit;
//! 2. **anonymize** — hash identifiers (salted), generalize age/zip,
//!    shift dates per patient, verify k-anonymity (suppressing rare
//!    quasi-identifier tuples if needed);
//! 3. **encode+fuse** — impute lab values, z-score them, one-hot the DNA
//!    tiles, fuse into per-patient records;
//! 4. **secure-shard** — write an `h5lite` container per split and
//!    encrypt it with ChaCha20 before it touches storage; verify the
//!    stored bytes scan clean of identifiers.

use crate::{DomainError, DomainRun};
use drai_core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai_core::pipeline::{Pipeline, StageCounters};
use drai_core::readiness::ProcessingStage as S;
use drai_formats::csv::{parse_csv, write_csv, CsvTable};
use drai_formats::fasta::{parse_fasta, write_fasta, FastaRecord};
use drai_formats::h5lite::{AttrValue, H5File};
use drai_io::crypto::{chacha20_xor, derive_key, key_id, Nonce};
use drai_io::sink::StorageSink;
use drai_provenance::{Artifact, Ledger};
use drai_tensor::Tensor;
use drai_transform::anonymize::{
    date_shift_days, generalize_age, generalize_zip, hash_identifier, k_anonymity,
    scan_for_identifiers, shift_dates, suppress_to_k,
};
use drai_transform::encode::Alphabet;
use drai_transform::impute::{impute, Strategy};
use drai_transform::normalize::{Method, Normalizer};
use drai_transform::split::{assign, Fractions, Split};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Lab-value columns in the synthetic EHR.
pub const LAB_COLUMNS: [&str; 4] = ["glucose", "creatinine", "hemoglobin", "sodium"];

/// Generator + pipeline configuration.
#[derive(Debug, Clone)]
pub struct BioConfig {
    /// Number of synthetic patients.
    pub patients: usize,
    /// DNA tile length per patient (Enformer uses 196,608; tests use small).
    pub tile_len: usize,
    /// Fraction of missing lab values.
    pub missing_fraction: f64,
    /// k for k-anonymity over (age band, zip3).
    pub k: usize,
    /// Operator secret for key derivation (never stored).
    pub secret: String,
    /// RNG seed.
    pub seed: u64,
    /// Split fractions (keyed by patient pseudonym).
    pub fractions: Fractions,
}

impl Default for BioConfig {
    fn default() -> Self {
        BioConfig {
            patients: 64,
            tile_len: 256,
            missing_fraction: 0.08,
            k: 2,
            secret: "demo-enclave-secret".into(),
            seed: 8_439,
            fractions: Fractions::standard(),
        }
    }
}

/// Generate raw clinical CSV + FASTA into `sink` under `raw/`.
pub fn generate_raw(cfg: &BioConfig, sink: &dyn StorageSink) -> Result<(), DomainError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let first_names = [
        "Jane", "John", "Ada", "Alan", "Grace", "Linus", "Mary", "Omar",
    ];
    let last_names = [
        "Doe", "Smith", "Lovelace", "Turing", "Hopper", "Chen", "Patel", "Kim",
    ];
    let mut rows = Vec::with_capacity(cfg.patients);
    for p in 0..cfg.patients {
        let name = format!(
            "{} {}",
            first_names[rng.gen_range(0..first_names.len())],
            last_names[rng.gen_range(0..last_names.len())]
        );
        let mrn = format!("{:07}", 1_000_000 + p);
        let age = rng.gen_range(18..95);
        let zip = format!("{:05}", 37_800 + rng.gen_range(0..40));
        let visit_day = 19_000 + rng.gen_range(0..1000); // days since epoch
        let mut fields = vec![
            format!("patient-{p:04}"),
            name,
            mrn,
            age.to_string(),
            zip,
            visit_day.to_string(),
        ];
        for (li, _) in LAB_COLUMNS.iter().enumerate() {
            if rng.gen::<f64>() < cfg.missing_fraction {
                fields.push(String::new());
            } else {
                let base = [95.0, 1.0, 14.0, 140.0][li];
                let spread = [20.0, 0.3, 2.0, 4.0][li];
                fields.push(format!(
                    "{:.2}",
                    base + spread * (rng.gen::<f64>() - 0.5) * 2.0
                ));
            }
        }
        rows.push(fields);
    }
    let mut header = vec![
        "patient_id".to_string(),
        "name".to_string(),
        "mrn".to_string(),
        "age".to_string(),
        "zip".to_string(),
        "visit_day".to_string(),
    ];
    header.extend(LAB_COLUMNS.iter().map(|s| s.to_string()));
    let table = CsvTable { header, rows };
    sink.write_file("raw/ehr.csv", write_csv(&table).as_bytes())?;

    // Per-patient DNA tiles.
    let bases = [b'A', b'C', b'G', b'T'];
    let records: Vec<FastaRecord> = (0..cfg.patients)
        .map(|p| {
            let seq: String = (0..cfg.tile_len)
                .map(|_| bases[rng.gen_range(0..4)] as char)
                .collect();
            FastaRecord {
                header: format!("patient-{p:04} synthetic tile"),
                sequence: seq,
            }
        })
        .collect();
    sink.write_file("raw/sequences.fasta", write_fasta(&records, 70).as_bytes())?;
    Ok(())
}

/// One patient mid-pipeline.
#[derive(Debug, Clone)]
pub struct PatientRecord {
    /// Original patient key (dropped at anonymization).
    pub patient_id: String,
    /// Pseudonym (present after anonymization).
    pub pseudonym: String,
    /// Generalized age band.
    pub age_band: String,
    /// Generalized zip.
    pub zip3: String,
    /// Visit day (shifted after anonymization).
    pub visit_day: i64,
    /// Lab values (NaN = missing until imputation).
    pub labs: Vec<f64>,
    /// Raw DNA tile.
    pub sequence: String,
}

/// Artifact between bio pipeline stages.
pub struct BioData {
    /// Patient records.
    pub patients: Vec<PatientRecord>,
    /// Number suppressed by the k-anonymity gate.
    pub suppressed: usize,
    /// Fused tensors after encode+fuse: per patient (labs z-scored,
    /// one-hot tile) — kept flat for the shard stage.
    pub fused: Vec<(String, Vec<f32>, Tensor<f32>)>,
    /// PHI scanner findings at intake (should be > 0 on raw data).
    pub intake_phi_findings: usize,
}

/// Parse raw blobs into the pipeline input.
pub fn ingest(cfg: &BioConfig, sink: &dyn StorageSink) -> Result<BioData, DomainError> {
    let csv_bytes = sink.read_file("raw/ehr.csv")?;
    let csv_text = String::from_utf8_lossy(&csv_bytes);
    let table = parse_csv(&csv_text)?;
    let fasta_bytes = sink.read_file("raw/sequences.fasta")?;
    let fasta = parse_fasta(&String::from_utf8_lossy(&fasta_bytes))?;

    let mut intake_phi_findings = 0;
    let ids = table
        .column("patient_id")
        .ok_or_else(|| DomainError::Config("ehr.csv missing patient_id".into()))?;
    let names = table.column("name").unwrap_or_default();
    let ages = table
        .numeric_column("age")
        .ok_or_else(|| DomainError::Config("ehr.csv missing age".into()))?;
    let zips = table.column("zip").unwrap_or_default();
    let days = table
        .numeric_column("visit_day")
        .ok_or_else(|| DomainError::Config("ehr.csv missing visit_day".into()))?;
    let labs: Vec<Vec<f64>> = LAB_COLUMNS
        .iter()
        .map(|col| {
            table
                .numeric_column(col)
                .ok_or_else(|| DomainError::Config(format!("ehr.csv missing {col}")))
        })
        .collect::<Result<_, _>>()?;

    let mut patients = Vec::with_capacity(ids.len());
    for (i, id) in ids.iter().enumerate() {
        // Intake audit: direct identifiers present in raw rows.
        intake_phi_findings += scan_for_identifiers(&format!(
            "{} MRN {}",
            names.get(i).copied().unwrap_or(""),
            table.rows[i][2]
        ))
        .len();
        let seq = fasta
            .iter()
            .find(|r| r.id() == *id)
            .map(|r| r.sequence.clone())
            .unwrap_or_default();
        let _ = cfg;
        patients.push(PatientRecord {
            patient_id: id.to_string(),
            pseudonym: String::new(),
            age_band: ages[i].to_string(), // raw age until anonymization
            zip3: zips.get(i).copied().unwrap_or("").to_string(),
            visit_day: days[i] as i64,
            labs: labs.iter().map(|col| col[i]).collect(),
            sequence: seq,
        });
    }
    Ok(BioData {
        patients,
        suppressed: 0,
        fused: vec![],
        intake_phi_findings,
    })
}

/// Build the bio pipeline (stages 2–4; ingest is [`ingest`]).
pub fn build_pipeline(
    cfg: &BioConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<BioData> {
    let cfg_anon = cfg.clone();
    let cfg_fuse = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_anon = ledger.clone();
    let ledger_shard = ledger;

    Pipeline::builder("bio")
        .stage(
            "audit",
            S::Ingest,
            move |data: BioData, c: &mut StageCounters| {
                c.records = data.patients.len() as u64;
                Ok(data)
            },
        )
        .stage("anonymize", S::Transform, move |mut data: BioData, c| {
            let salt = format!("{}::anon", cfg_anon.secret);
            for p in &mut data.patients {
                p.pseudonym = hash_identifier(&salt, &p.patient_id);
                let age: f64 = p.age_band.parse().map_err(|_| "bad age".to_string())?;
                p.age_band = generalize_age(age as u32, 10);
                p.zip3 = generalize_zip(&p.zip3);
                let shift = date_shift_days(&salt, &p.patient_id, 180);
                let mut days = [p.visit_day];
                shift_dates(&mut days, shift);
                p.visit_day = days[0];
                p.patient_id = String::new(); // direct identifier dropped
            }
            // k-anonymity over (age band, zip3); suppress rare tuples.
            let mut quasi: Vec<Vec<String>> = data
                .patients
                .iter()
                .map(|p| vec![p.age_band.clone(), p.zip3.clone()])
                .collect();
            let report = k_anonymity(&quasi, cfg_anon.k).map_err(|e| format!("{e}"))?;
            let mut suppressed = 0;
            if !report.satisfies(cfg_anon.k) {
                suppressed = suppress_to_k(&mut quasi, cfg_anon.k).map_err(|e| format!("{e}"))?;
                for (p, q) in data.patients.iter_mut().zip(&quasi) {
                    p.age_band = q[0].clone();
                    p.zip3 = q[1].clone();
                }
            }
            data.suppressed = suppressed;
            ledger_anon.record(
                "anonymize",
                [
                    ("k".to_string(), cfg_anon.k.to_string()),
                    ("suppressed".to_string(), suppressed.to_string()),
                ],
                vec![],
                vec![],
            );
            c.records = data.patients.len() as u64;
            Ok(data)
        })
        .stage("encode+fuse", S::Structure, move |mut data: BioData, c| {
            // Impute labs column-wise, then z-score.
            let n = data.patients.len();
            let ncols = LAB_COLUMNS.len();
            for col in 0..ncols {
                let mut values: Vec<f64> = data.patients.iter().map(|p| p.labs[col]).collect();
                impute(&mut values, Strategy::Median).map_err(|e| format!("{e}"))?;
                let norm = Normalizer::fit(Method::ZScore, &values).map_err(|e| format!("{e}"))?;
                for (p, v) in data.patients.iter_mut().zip(&values) {
                    p.labs[col] = norm.apply(*v);
                }
            }
            // One-hot tiles + fuse.
            let dna = Alphabet::dna();
            let mut fused = Vec::with_capacity(n);
            let mut bytes = 0u64;
            for p in &data.patients {
                let labs: Vec<f32> = p.labs.iter().map(|&x| x as f32).collect();
                let onehot = dna.one_hot(&p.sequence);
                let _ = cfg_fuse.tile_len;
                bytes += (labs.len() * 4 + onehot.len() * 4) as u64;
                fused.push((p.pseudonym.clone(), labs, onehot));
            }
            data.fused = fused;
            c.records = n as u64;
            c.bytes = bytes;
            Ok(data)
        })
        .stage("secure-shard", S::Shard, move |data: BioData, c| {
            // One h5lite container per split, ChaCha20-encrypted at rest.
            let key = derive_key(&cfg_shard.secret, "bio-shards");
            let mut containers: [H5File; 3] = [H5File::new(), H5File::new(), H5File::new()];
            let mut counts = [0usize; 3];
            for (pseudonym, labs, onehot) in &data.fused {
                let split = assign(pseudonym, cfg_shard.seed, cfg_shard.fractions)
                    .expect("validated fractions");
                let idx = match split {
                    Split::Train => 0,
                    Split::Validation => 1,
                    Split::Test => 2,
                };
                let f = &mut containers[idx];
                let base = format!("/patients/{pseudonym}");
                let labs_t =
                    Tensor::from_vec(labs.clone(), &[labs.len()]).map_err(|e| format!("{e}"))?;
                f.put_tensor(&format!("{base}/labs"), &labs_t, labs.len().max(1))
                    .map_err(|e| format!("{e}"))?;
                f.put_tensor(&format!("{base}/onehot"), onehot, 64)
                    .map_err(|e| format!("{e}"))?;
                f.set_attr(
                    &format!("{base}/labs"),
                    "columns",
                    AttrValue::Text(LAB_COLUMNS.join(",")),
                )
                .map_err(|e| format!("{e}"))?;
                counts[idx] += 1;
            }
            let mut total = 0u64;
            for (idx, split) in [Split::Train, Split::Validation, Split::Test]
                .iter()
                .enumerate()
            {
                if counts[idx] == 0 {
                    continue;
                }
                let mut bytes = containers[idx].to_bytes();
                // Nonce: split index + record count (unique per blob within
                // this dataset-key context).
                let mut nonce: Nonce = [0; 12];
                nonce[0] = idx as u8;
                nonce[4..12].copy_from_slice(&(counts[idx] as u64).to_le_bytes());
                chacha20_xor(&key, &nonce, 0, &mut bytes);
                let name = format!("bio/{}.h5lite.enc", split.name());
                sink.write_file(&name, &bytes).map_err(|e| format!("{e}"))?;
                total += bytes.len() as u64;
                ledger_shard.record(
                    "secure-shard",
                    [
                        ("split".to_string(), split.name().to_string()),
                        ("cipher".to_string(), "chacha20".to_string()),
                        ("key_id".to_string(), key_id(&key)),
                    ],
                    vec![],
                    vec![Artifact::new(&name, &bytes)],
                );
            }
            c.records = data.fused.len() as u64;
            c.bytes = total;
            Ok(data)
        })
        .build()
}

/// Decrypt and open one secure shard (the consumer side).
pub fn open_secure_shard(
    cfg: &BioConfig,
    sink: &dyn StorageSink,
    split: Split,
    record_count: usize,
) -> Result<H5File, DomainError> {
    let key = derive_key(&cfg.secret, "bio-shards");
    let idx = match split {
        Split::Train => 0u8,
        Split::Validation => 1,
        Split::Test => 2,
    };
    let mut nonce: Nonce = [0; 12];
    nonce[0] = idx;
    nonce[4..12].copy_from_slice(&(record_count as u64).to_le_bytes());
    let mut bytes = sink.read_file(&format!("bio/{}.h5lite.enc", split.name()))?;
    chacha20_xor(&key, &nonce, 0, &mut bytes);
    Ok(H5File::from_bytes(&bytes)?)
}

/// Run the complete bio archetype.
pub fn run(cfg: &BioConfig, sink: Arc<dyn StorageSink>) -> Result<DomainRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.bio.run");
    let _in_run = run_span.enter();
    generate_raw(cfg, sink.as_ref())?;
    let ledger = Arc::new(Ledger::new());
    let input = ingest(cfg, sink.as_ref())?;
    let intake_findings = input.intake_phi_findings;
    let pipeline = build_pipeline(cfg, sink.clone(), ledger.clone());
    let run = pipeline.run(input)?;

    let mut manifest = DatasetManifest::raw(
        "c-her-synth",
        "bio",
        Modality::Sequence,
        run.output.fused.len() as u64,
    );
    manifest.schema = vec![
        VariableSpec {
            name: "labs".into(),
            dtype: drai_tensor::DType::F32,
            unit: "1".into(),
            shape: vec![LAB_COLUMNS.len()],
        },
        VariableSpec {
            name: "onehot".into(),
            dtype: drai_tensor::DType::F32,
            unit: "1".into(),
            shape: vec![cfg.tile_len, 4],
        },
    ];
    manifest.standard_format = true;
    manifest.ingest_validated = true;
    manifest.metadata_enriched = true;
    manifest.high_throughput_ingest = true;
    manifest.ingest_automated = true;
    manifest.aligned_initial = true;
    manifest.aligned_standardized = true;
    manifest.alignment_automated = true;
    manifest.normalized_initial = true;
    manifest.normalized_final = true;
    manifest.transform_audited = true;
    manifest.requires_anonymization = true;
    manifest.anonymized = true;
    manifest.label_coverage = 1.0;
    manifest.features_extracted = true;
    manifest.features_validated = true;
    manifest.split_assigned = true;
    manifest.sharded = true;

    let _ = intake_findings;
    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("bio/") && n.ends_with(".enc"))
        .collect();

    run_span.add_items(manifest.records);
    Ok(DomainRun {
        manifest,
        stages: run.stages,
        ledger,
        shard_files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_core::{ReadinessAssessor, ReadinessLevel};
    use drai_io::sink::MemSink;

    fn small_cfg() -> BioConfig {
        BioConfig {
            patients: 24,
            tile_len: 64,
            missing_fraction: 0.15,
            k: 2,
            seed: 99,
            ..BioConfig::default()
        }
    }

    #[test]
    fn raw_data_contains_phi() {
        let sink = MemSink::new();
        generate_raw(&small_cfg(), &sink).unwrap();
        let data = ingest(&small_cfg(), &sink).unwrap();
        assert!(
            data.intake_phi_findings > 0,
            "raw EHR should trip the PHI scanner"
        );
        assert_eq!(data.patients.len(), 24);
        assert!(data
            .patients
            .iter()
            .any(|p| p.labs.iter().any(|v| v.is_nan())));
        assert!(data.patients.iter().all(|p| p.sequence.len() == 64));
    }

    #[test]
    fn end_to_end_secure_and_ready() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        let run = run(&cfg, sink.clone()).unwrap();
        let assessment = ReadinessAssessor::new().assess(&run.manifest).unwrap();
        assert_eq!(assessment.overall, ReadinessLevel::FullyAiReady);
        assert!(run.manifest.requires_anonymization && run.manifest.anonymized);
        assert!(!run.shard_files.is_empty());

        // Encrypted blobs must not be parseable h5lite and must not leak
        // names.
        for name in &run.shard_files {
            let enc = sink.read_file(name).unwrap();
            assert!(
                H5File::from_bytes(&enc).is_err(),
                "{name} stored unencrypted!"
            );
            let text = String::from_utf8_lossy(&enc);
            assert!(!text.contains("patient-00"), "{name} leaks patient ids");
        }
    }

    #[test]
    fn secure_shard_round_trip() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        generate_raw(&cfg, sink.as_ref()).unwrap();
        let input = ingest(&cfg, sink.as_ref()).unwrap();
        let pipeline = build_pipeline(&cfg, sink.clone(), Arc::new(Ledger::new()));
        let out = pipeline.run(input).unwrap();

        // Count train records to rebuild the nonce.
        let train_count = out
            .output
            .fused
            .iter()
            .filter(|(p, _, _)| assign(p, cfg.seed, cfg.fractions).unwrap() == Split::Train)
            .count();
        let f = open_secure_shard(&cfg, sink.as_ref(), Split::Train, train_count).unwrap();
        let patients = f.children("/patients");
        assert_eq!(patients.len(), train_count);
        // Each patient has labs + onehot of the right shapes.
        let first = patients[0];
        let labs: Tensor<f32> = f.tensor(&format!("{first}/labs")).unwrap();
        assert_eq!(labs.shape(), &[LAB_COLUMNS.len()]);
        let onehot: Tensor<f32> = f.tensor(&format!("{first}/onehot")).unwrap();
        assert_eq!(onehot.shape(), &[64, 4]);
        // Wrong secret fails to decrypt to valid h5lite.
        let wrong = BioConfig {
            secret: "wrong".into(),
            ..cfg.clone()
        };
        assert!(open_secure_shard(&wrong, sink.as_ref(), Split::Train, train_count).is_err());
    }

    #[test]
    fn anonymization_removes_identifiers_and_enforces_k() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        generate_raw(&cfg, sink.as_ref()).unwrap();
        let input = ingest(&cfg, sink.as_ref()).unwrap();
        let pipeline = build_pipeline(&cfg, sink, Arc::new(Ledger::new()));
        let out = pipeline.run(input).unwrap();
        let patients = &out.output.patients;
        for p in patients {
            assert!(p.patient_id.is_empty(), "direct id survived");
            assert_eq!(p.pseudonym.len(), 32);
            assert!(
                p.age_band.contains('-') || p.age_band == "90+" || p.age_band == "*",
                "age band {:?}",
                p.age_band
            );
            assert!(p.zip3.ends_with("**") || p.zip3 == "*");
        }
        // Surviving quasi-identifiers satisfy k.
        let quasi: Vec<Vec<String>> = patients
            .iter()
            .filter(|p| p.age_band != "*")
            .map(|p| vec![p.age_band.clone(), p.zip3.clone()])
            .collect();
        let report = k_anonymity(&quasi, cfg.k).unwrap();
        assert!(report.satisfies(cfg.k), "{report:?}");
        // Labs imputed and normalized: no NaN.
        assert!(out
            .output
            .fused
            .iter()
            .all(|(_, labs, _)| labs.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn interval_preservation_across_patients() {
        // Same patient's dates shift by one constant; check via two visits
        // encoded as separate runs of the shift helper.
        let salt = "s::anon";
        let shift = date_shift_days(salt, "patient-0001", 180);
        let mut days = [100i64, 160, 400];
        shift_dates(&mut days, shift);
        assert_eq!(days[1] - days[0], 60);
        assert_eq!(days[2] - days[1], 240);
    }
}
