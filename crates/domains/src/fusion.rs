//! Fusion archetype: `extract → align → normalize → shard`
//! (Table 1 row 2; §3.2; the DIII-D disruption-prediction pattern).
//!
//! Raw data is a synthetic MDSplus-like **shot store**: per-shot trees of
//! multirate diagnostic signals (plasma current, coil voltages, density,
//! temperature) with realistic pathologies — independent clocks, channel
//! drop-outs, noise bursts, and a disruption event in a configurable
//! fraction of shots (signals collapse after t_disrupt). The pipeline:
//!
//! 1. **extract** — pull channels from the shot store, drop dead channels;
//! 2. **align** — resample every channel onto a common clock and slice
//!    into fixed windows (windows crossing gaps are dropped);
//! 3. **normalize** — per-channel robust scaling (sensor glitches make
//!    plain z-scores fragile) + derivative features;
//! 4. **shard** — windows become `tf.train.Example`s in TFRecord shards,
//!    split by *shot* key so no shot straddles splits.

use crate::{DomainError, DomainRun};
use drai_core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai_core::pipeline::{Pipeline, StageCounters};
use drai_core::readiness::ProcessingStage as S;
use drai_formats::example::Example;
use drai_formats::tfrecord;
use drai_io::shard::{ShardSpec, ShardWriter};
use drai_io::sink::StorageSink;
use drai_provenance::{Artifact, Ledger};
use drai_transform::align::{align_channels, window, Channel, Clock};
use drai_transform::features::derivative;
use drai_transform::normalize::{Method, Normalizer};
use drai_transform::split::{assign, Fractions, Split};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// Diagnostic channels in the synthetic shot store.
pub const CHANNELS: [(&str, f64, &str); 4] = [
    // (name, sample rate Hz, unit)
    ("ip", 10_000.0, "MA"),    // plasma current
    ("vloop", 5_000.0, "1"),   // loop voltage (arb)
    ("ne", 1_000.0, "1"),      // line-averaged density (arb)
    ("te_core", 250.0, "keV"), // core temperature
];

/// Generator + pipeline configuration.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Number of shots to synthesize.
    pub shots: usize,
    /// Shot duration in seconds.
    pub shot_seconds: f64,
    /// Fraction of shots that disrupt.
    pub disruption_fraction: f64,
    /// Probability a channel is dead in a given shot (sparse data).
    pub channel_dropout: f64,
    /// Common clock rate for alignment (Hz).
    pub clock_hz: f64,
    /// Window length in ticks.
    pub window_len: usize,
    /// Window stride in ticks.
    pub window_stride: usize,
    /// RNG seed.
    pub seed: u64,
    /// Target shard payload bytes.
    pub shard_bytes: usize,
    /// Split fractions (keyed by shot).
    pub fractions: Fractions,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            shots: 32,
            shot_seconds: 2.0,
            disruption_fraction: 0.3,
            channel_dropout: 0.1,
            clock_hz: 1_000.0,
            window_len: 64,
            window_stride: 32,
            seed: 176_042,
            shard_bytes: 4 << 20,
            fractions: Fractions::standard(),
        }
    }
}

/// One synthesized shot.
#[derive(Debug, Clone)]
pub struct Shot {
    /// Shot number (MDSplus-style id).
    pub id: u64,
    /// Live channels (dead ones absent — the sparse-data pathology).
    pub channels: Vec<Channel>,
    /// Disruption time in seconds, if the shot disrupted.
    pub t_disrupt: Option<f64>,
}

/// The MDSplus-like shot store: generates and serves shots.
pub struct ShotStore {
    shots: Vec<Shot>,
}

impl ShotStore {
    /// Synthesize a store.
    pub fn generate(cfg: &FusionConfig) -> ShotStore {
        let shots = (0..cfg.shots)
            .map(|s| {
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
                let id = 170_000 + s as u64;
                let disrupts = rng.gen::<f64>() < cfg.disruption_fraction;
                // Disruptions occur after ramp-up (≥ 0.3 s when the shot is
                // long enough, else past 40% of the shot) and before the
                // programmed end.
                let t_lo = 0.3f64.min(cfg.shot_seconds * 0.4);
                let t_hi = cfg.shot_seconds * 0.95;
                let t_disrupt = if disrupts && t_hi > t_lo {
                    Some(rng.gen_range(t_lo..t_hi))
                } else {
                    None
                };
                let mut channels = Vec::new();
                for (name, rate, _unit) in CHANNELS {
                    if rng.gen::<f64>() < cfg.channel_dropout {
                        continue; // dead channel this shot
                    }
                    let n = (cfg.shot_seconds * rate) as usize;
                    // Each channel's clock starts with a small random skew.
                    let skew = rng.gen_range(0.0..0.5 / rate);
                    let times: Vec<f64> = (0..n).map(|i| skew + i as f64 / rate).collect();
                    let values: Vec<f64> = times
                        .iter()
                        .map(|&t| {
                            let ramp = (t / 0.3).min(1.0); // current ramp-up
                            let base = match name {
                                "ip" => 1.2 * ramp,
                                "vloop" => 1.5 - ramp,
                                "ne" => 3.0 * ramp + 0.4 * (t * 7.0).sin(),
                                _ => 2.5 * ramp + 0.3 * (t * 3.0).cos(),
                            };
                            let mut v = base + 0.05 * (rng.gen::<f64>() - 0.5);
                            if let Some(td) = t_disrupt {
                                if t >= td {
                                    // Collapse with a fast decay after the
                                    // disruption.
                                    v *= (-(t - td) / 0.01).exp();
                                }
                            }
                            v
                        })
                        .collect();
                    channels.push(Channel {
                        name: name.to_string(),
                        times,
                        values,
                    });
                }
                Shot {
                    id,
                    channels,
                    t_disrupt,
                }
            })
            .collect();
        ShotStore { shots }
    }

    /// All shot ids.
    pub fn shot_ids(&self) -> Vec<u64> {
        self.shots.iter().map(|s| s.id).collect()
    }

    /// Fetch a shot by id.
    pub fn get(&self, id: u64) -> Option<&Shot> {
        self.shots.iter().find(|s| s.id == id)
    }

    /// All shots.
    pub fn shots(&self) -> &[Shot] {
        &self.shots
    }
}

/// One training window after alignment and normalization.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Originating shot.
    pub shot_id: u64,
    /// Flattened `[window_len, nfeatures]` values (channels + their
    /// derivatives).
    pub features: Vec<f32>,
    /// 1 when the window's shot disrupts within `horizon` after the
    /// window end (the DIII-D disruption-prediction label).
    pub label: i64,
}

/// Artifact flowing between fusion pipeline stages.
pub struct FusionData {
    shots: Vec<Shot>,
    /// Aligned per-shot matrices: (shot_id, t_disrupt, matrix, ntime).
    aligned: Vec<(u64, Option<f64>, Vec<f64>, usize)>,
    /// Final windows.
    pub windows: Vec<WindowSample>,
    /// Fitted per-channel normalizers.
    pub normalizers: Vec<Normalizer>,
}

/// Disruption-label horizon in seconds: windows ending within this span
/// before t_disrupt are positive.
pub const LABEL_HORIZON_S: f64 = 0.25;

/// Build the fusion pipeline.
pub fn build_pipeline(
    cfg: &FusionConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<FusionData> {
    let cfg_align = cfg.clone();
    let cfg_norm = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_shard = ledger.clone();
    let ledger_norm = ledger;

    Pipeline::builder("fusion")
        .stage(
            "extract",
            S::Ingest,
            move |mut data: FusionData, c: &mut StageCounters| {
                // Drop shots with fewer than 2 live channels (cannot align a
                // useful feature matrix from one signal).
                let before = data.shots.len();
                data.shots.retain(|s| s.channels.len() >= 2);
                let samples: usize = data
                    .shots
                    .iter()
                    .flat_map(|s| s.channels.iter().map(|ch| ch.values.len()))
                    .sum();
                c.records = data.shots.len() as u64;
                c.bytes = (samples * 16) as u64;
                let _ = before;
                Ok(data)
            },
        )
        .stage("align", S::Preprocess, move |mut data: FusionData, c| {
            let aligned: Result<Vec<_>, String> = data
                .shots
                .par_iter()
                .map(|shot| {
                    let t_end = shot
                        .channels
                        .iter()
                        .filter_map(|ch| ch.times.last().copied())
                        .fold(f64::INFINITY, f64::min);
                    let t_start = shot
                        .channels
                        .iter()
                        .filter_map(|ch| ch.times.first().copied())
                        .fold(f64::NEG_INFINITY, f64::max);
                    let clock = Clock::covering(t_start, t_end, cfg_align.clock_hz)
                        .map_err(|e| format!("shot {}: {e}", shot.id))?;
                    let (matrix, _names) = align_channels(&shot.channels, &clock)
                        .map_err(|e| format!("shot {}: {e}", shot.id))?;
                    Ok((shot.id, shot.t_disrupt, matrix, clock.len))
                })
                .collect();
            data.aligned = aligned?;
            c.records = data.aligned.len() as u64;
            c.bytes = data
                .aligned
                .iter()
                .map(|(_, _, m, _)| (m.len() * 8) as u64)
                .sum();
            Ok(data)
        })
        .stage("normalize", S::Transform, move |mut data: FusionData, c| {
            // Fit per-channel robust normalizers over all shots, using
            // each shot's channel count (they vary with dropout) — align
            // produced matrices with ncols = live channels, so normalize
            // per *named* channel would need the names; for robustness we
            // re-window per shot and fit on each column independently.
            let mut windows = Vec::new();
            for (shot_id, t_disrupt, matrix, ntime) in &data.aligned {
                let nch = if *ntime == 0 { 0 } else { matrix.len() / ntime };
                if nch == 0 {
                    continue;
                }
                // Per-shot, per-channel robust normalization.
                let mut matrix = matrix.clone();
                let mut normalizers = Vec::with_capacity(nch);
                for ch in 0..nch {
                    let col: Vec<f64> = matrix.iter().skip(ch).step_by(nch).copied().collect();
                    let n = Normalizer::fit(Method::Robust, &col)
                        .map_err(|e| format!("shot {shot_id}: {e}"))?;
                    for (i, v) in matrix.iter_mut().enumerate() {
                        if i % nch == ch {
                            *v = n.apply(*v);
                        }
                    }
                    normalizers.push(n);
                }
                if data.normalizers.is_empty() {
                    data.normalizers = normalizers;
                }
                // Derivative features per channel, appended as extra
                // columns (the DIII-D "derivative-based features").
                let dt = 1.0 / cfg_norm.clock_hz;
                let mut with_derivs = Vec::with_capacity(matrix.len() * 2);
                let mut deriv_cols = Vec::with_capacity(nch);
                for ch in 0..nch {
                    let col: Vec<f64> = matrix.iter().skip(ch).step_by(nch).copied().collect();
                    deriv_cols.push(derivative(&col, dt).map_err(|e| format!("{e}"))?);
                }
                for t in 0..*ntime {
                    for ch in 0..nch {
                        with_derivs.push(matrix[t * nch + ch]);
                    }
                    for dcol in deriv_cols.iter() {
                        with_derivs.push(dcol[t]);
                    }
                }
                let nfeat = nch * 2;
                let wins = window(
                    &with_derivs,
                    nfeat,
                    cfg_norm.window_len,
                    cfg_norm.window_stride,
                    true,
                )
                .map_err(|e| format!("{e}"))?;
                for (wi, w) in wins.into_iter().enumerate() {
                    // Window end time on the common clock.
                    let end_tick = wi * cfg_norm.window_stride + cfg_norm.window_len;
                    let t_end = end_tick as f64 / cfg_norm.clock_hz;
                    let label = match t_disrupt {
                        Some(td) => {
                            if t_end > *td {
                                continue; // post-disruption data is unusable
                            }
                            (*td - t_end <= LABEL_HORIZON_S) as i64
                        }
                        None => 0,
                    };
                    windows.push(WindowSample {
                        shot_id: *shot_id,
                        features: w.into_iter().map(|x| x as f32).collect(),
                        label,
                    });
                }
            }
            ledger_norm.record(
                "normalize+window",
                [
                    ("method".to_string(), "robust+derivative".to_string()),
                    ("windows".to_string(), windows.len().to_string()),
                ],
                vec![],
                vec![],
            );
            c.records = windows.len() as u64;
            c.bytes = windows.iter().map(|w| (w.features.len() * 4) as u64).sum();
            data.windows = windows;
            Ok(data)
        })
        .stage("shard", S::Shard, move |data: FusionData, c| {
            // Encode windows as tf.train.Examples, split by shot key.
            let mut split_records: [Vec<Vec<u8>>; 3] = [vec![], vec![], vec![]];
            let encoded: Vec<(Split, Vec<u8>)> = data
                .windows
                .par_iter()
                .map(|w| {
                    let ex = Example::new()
                        .with_floats("features", w.features.clone())
                        .with_ints("label", vec![w.label])
                        .with_ints("shot_id", vec![w.shot_id as i64]);
                    let mut framed = Vec::new();
                    tfrecord::write_record(&mut framed, &ex.encode());
                    let split = assign(
                        &format!("shot-{}", w.shot_id),
                        cfg_shard.seed,
                        cfg_shard.fractions,
                    )
                    .expect("validated fractions");
                    (split, framed)
                })
                .collect();
            for (split, rec) in encoded {
                let idx = match split {
                    Split::Train => 0,
                    Split::Validation => 1,
                    Split::Test => 2,
                };
                split_records[idx].push(rec);
            }
            let mut total = 0u64;
            for (idx, split) in [Split::Train, Split::Validation, Split::Test]
                .iter()
                .enumerate()
            {
                if split_records[idx].is_empty() {
                    continue;
                }
                let spec =
                    ShardSpec::new(format!("fusion/{}", split.name()), cfg_shard.shard_bytes);
                let manifest = ShardWriter::new(spec, sink.as_ref())
                    .write_all(&split_records[idx])
                    .map_err(|e| format!("{e}"))?;
                total += manifest.payload_bytes;
                for shard in &manifest.shards {
                    let content = sink.read_file(&shard.name).map_err(|e| format!("{e}"))?;
                    ledger_shard.record(
                        "shard",
                        [
                            ("split".to_string(), split.name().to_string()),
                            ("format".to_string(), "tfrecord".to_string()),
                        ],
                        vec![],
                        vec![Artifact::new(&shard.name, &content)],
                    );
                }
            }
            c.records = data.windows.len() as u64;
            c.bytes = total;
            Ok(data)
        })
        .build()
}

/// Semi-supervised labeling for partially labeled shot archives — the
/// Table 1 "limited labels" challenge. Real archives often have
/// disruption times for only a fraction of shots; this routine seeds
/// labels from the shots that have them and pseudo-labels the rest by
/// nearest-centroid distance in a summary-feature space (mean |dI/dt|
/// over the final windows), using the iterative confidence-gated scheme
/// of §2.1.
///
/// Returns `(labels, report)` where `labels[i]` corresponds to
/// `windows[i]`.
pub fn pseudo_label_windows(
    windows: &[WindowSample],
    known_fraction: f64,
    confidence_gate: f64,
) -> Result<
    (
        Vec<drai_transform::label::Label>,
        drai_transform::label::PseudoLabelReport,
    ),
    DomainError,
> {
    use drai_transform::label::{pseudo_label, Label};
    if windows.is_empty() {
        return Err(DomainError::Config("no windows to label".into()));
    }
    // Summary feature per window: RMS of the derivative half of the
    // feature vector (disruption precursors have violent derivatives).
    let summaries: Vec<f64> = windows
        .iter()
        .map(|w| {
            let half = w.features.len() / 2;
            let d = &w.features[half..];
            (d.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / d.len().max(1) as f64).sqrt()
        })
        .collect();

    // Keep ground truth only for a deterministic subset of shots.
    let mut labels: Vec<Label> = windows
        .iter()
        .map(|w| {
            let keep = drai_transform::split::assign(
                &format!("label-{}", w.shot_id),
                7,
                drai_transform::split::Fractions {
                    train: known_fraction,
                    validation: 0.0,
                    test: 1.0 - known_fraction,
                },
            )
            .map(|s| s == drai_transform::split::Split::Train)
            .unwrap_or(false);
            if keep {
                Label::Known(w.label)
            } else {
                Label::Unknown
            }
        })
        .collect();

    if !labels.iter().any(|l| l.is_known()) {
        return Err(DomainError::Config(
            "known_fraction left no seed labels".into(),
        ));
    }

    let report = pseudo_label(&mut labels, confidence_gate, 20, |i, current| {
        // Class centroids over currently labeled windows.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for (j, l) in current.iter().enumerate() {
            if let Some(c) = l.class() {
                let c = (c as usize).min(1);
                sums[c] += summaries[j];
                counts[c] += 1;
            }
        }
        if counts[0] == 0 || counts[1] == 0 {
            // One-class world: assign that class with moderate confidence.
            let class = if counts[0] > 0 { 0 } else { 1 };
            return Some((class as i64, 0.6));
        }
        let c0 = sums[0] / counts[0] as f64;
        let c1 = sums[1] / counts[1] as f64;
        let (d0, d1) = ((summaries[i] - c0).abs(), (summaries[i] - c1).abs());
        let (class, near, far) = if d0 <= d1 { (0, d0, d1) } else { (1, d1, d0) };
        // Confidence from margin: 0.5 (ambiguous) → 1.0 (clear).
        let conf = if far > 0.0 {
            0.5 + 0.5 * (1.0 - near / far)
        } else {
            0.5
        };
        Some((class, conf))
    })
    .map_err(DomainError::Transform)?;

    Ok((labels, report))
}

/// Run the complete fusion archetype.
pub fn run(cfg: &FusionConfig, sink: Arc<dyn StorageSink>) -> Result<DomainRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.fusion.run");
    let _in_run = run_span.enter();
    let store = ShotStore::generate(cfg);
    let ledger = Arc::new(Ledger::new());
    let pipeline = build_pipeline(cfg, sink.clone(), ledger.clone());
    let input = FusionData {
        shots: store.shots().to_vec(),
        aligned: vec![],
        windows: vec![],
        normalizers: vec![],
    };
    let run = pipeline.run(input)?;

    let labeled = run.output.windows.len() as u64;
    let mut manifest =
        DatasetManifest::raw("diii-d-synth", "fusion", Modality::TimeSeries, labeled);
    manifest.schema = CHANNELS
        .iter()
        .map(|(name, _, unit)| VariableSpec {
            name: (*name).to_string(),
            dtype: drai_tensor::DType::F32,
            unit: (*unit).to_string(),
            shape: vec![cfg.window_len],
        })
        .collect();
    manifest.standard_format = true;
    manifest.ingest_validated = true;
    manifest.metadata_enriched = true;
    manifest.high_throughput_ingest = true;
    manifest.ingest_automated = true;
    manifest.aligned_initial = true;
    manifest.aligned_standardized = true;
    manifest.alignment_automated = true;
    manifest.normalized_initial = true;
    manifest.normalized_final = true;
    manifest.transform_audited = true;
    manifest.label_coverage = 1.0; // every surviving window carries a label
    manifest.features_extracted = true;
    manifest.features_validated = true;
    manifest.split_assigned = true;
    manifest.sharded = true;

    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("fusion/") && n.ends_with(".shard"))
        .collect();

    run_span.add_items(manifest.records);
    Ok(DomainRun {
        manifest,
        stages: run.stages,
        ledger,
        shard_files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_core::{ReadinessAssessor, ReadinessLevel};
    use drai_io::shard::ShardReader;
    use drai_io::sink::MemSink;

    fn small_cfg() -> FusionConfig {
        FusionConfig {
            shots: 12,
            shot_seconds: 1.0,
            disruption_fraction: 0.4,
            channel_dropout: 0.15,
            clock_hz: 500.0,
            window_len: 32,
            window_stride: 16,
            seed: 42,
            shard_bytes: 256 * 1024,
            ..FusionConfig::default()
        }
    }

    #[test]
    fn shot_store_has_pathologies() {
        let cfg = FusionConfig {
            shots: 60,
            ..small_cfg()
        };
        let store = ShotStore::generate(&cfg);
        assert_eq!(store.shots().len(), 60);
        let disrupted = store
            .shots()
            .iter()
            .filter(|s| s.t_disrupt.is_some())
            .count();
        assert!(disrupted > 10 && disrupted < 40, "disrupted {disrupted}");
        let dead_channels: usize = store
            .shots()
            .iter()
            .map(|s| CHANNELS.len() - s.channels.len())
            .sum();
        assert!(dead_channels > 0, "dropout never fired");
        // Multirate: channels differ in length.
        let shot = store
            .shots()
            .iter()
            .find(|s| s.channels.len() >= 3)
            .unwrap();
        let lens: Vec<usize> = shot.channels.iter().map(|c| c.values.len()).collect();
        assert!(lens.windows(2).any(|w| w[0] != w[1]), "{lens:?}");
        assert!(store.get(170_000).is_some());
        assert!(store.get(999).is_none());
        assert_eq!(store.shot_ids().len(), 60);
    }

    #[test]
    fn end_to_end_produces_tfrecords() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        let run = run(&cfg, sink.clone()).unwrap();
        assert_eq!(
            run.stages.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![S::Ingest, S::Preprocess, S::Transform, S::Shard]
        );
        let assessment = ReadinessAssessor::new().assess(&run.manifest).unwrap();
        assert_eq!(assessment.overall, ReadinessLevel::FullyAiReady);
        assert!(!run.shard_files.is_empty());

        // Decode a shard: every record is a TFRecord-framed Example with
        // the right feature width.
        let reader = ShardReader::open("fusion/train", sink.as_ref()).unwrap();
        let records = reader.read_all().unwrap();
        assert!(!records.is_empty());
        let frames = tfrecord::read_records(&records[0]).unwrap();
        let ex = Example::decode(&frames[0]).unwrap();
        let feats = ex.floats("features").unwrap();
        assert_eq!(feats.len() % cfg.window_len, 0);
        let label = ex.ints("label").unwrap()[0];
        assert!(label == 0 || label == 1);
        assert!(ex.ints("shot_id").unwrap()[0] >= 170_000);
    }

    #[test]
    fn shot_level_split_integrity() {
        let cfg = FusionConfig {
            shots: 30,
            ..small_cfg()
        };
        let sink = Arc::new(MemSink::new());
        run(&cfg, sink.clone()).unwrap();
        // Gather shot ids per split; intersection must be empty.
        let mut split_shots: Vec<std::collections::BTreeSet<i64>> = vec![Default::default(); 3];
        for (idx, split) in ["train", "val", "test"].iter().enumerate() {
            let prefix = format!("fusion/{split}");
            if let Ok(reader) = ShardReader::open(&prefix, sink.as_ref()) {
                for records in
                    (0..reader.manifest().shards.len()).map(|i| reader.read_shard(i).unwrap())
                {
                    for rec in records {
                        for frame in tfrecord::read_records(&rec).unwrap() {
                            let ex = Example::decode(&frame).unwrap();
                            split_shots[idx].insert(ex.ints("shot_id").unwrap()[0]);
                        }
                    }
                }
            }
        }
        for a in 0..3 {
            for b in a + 1..3 {
                assert!(
                    split_shots[a].is_disjoint(&split_shots[b]),
                    "shots leak between splits {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn pseudo_labeling_recovers_coverage() {
        let cfg = FusionConfig {
            shots: 40,
            disruption_fraction: 0.5,
            ..small_cfg()
        };
        let store = ShotStore::generate(&cfg);
        let pipeline = build_pipeline(&cfg, Arc::new(MemSink::new()), Arc::new(Ledger::new()));
        let out = pipeline
            .run(FusionData {
                shots: store.shots().to_vec(),
                aligned: vec![],
                windows: vec![],
                normalizers: vec![],
            })
            .unwrap();
        let windows = &out.output.windows;
        assert!(windows.len() > 20, "need enough windows: {}", windows.len());

        // Only ~40% of shots keep their ground truth.
        let (labels, report) = pseudo_label_windows(windows, 0.4, 0.55).unwrap();
        let initial_known = labels.iter().filter(|l| l.is_known()).count();
        assert!(initial_known < windows.len(), "everything stayed known");
        assert!(
            report.final_coverage > 0.9,
            "pseudo-labeling stalled at {:.0}%",
            report.final_coverage * 100.0
        );
        // Ground-truth labels never overwritten.
        for (l, w) in labels.iter().zip(windows) {
            if l.is_known() {
                assert_eq!(l.class(), Some(w.label));
            }
        }
        // Errors surfaced for degenerate configs.
        assert!(pseudo_label_windows(&[], 0.5, 0.5).is_err());
        assert!(pseudo_label_windows(windows, 0.0, 2.0).is_err());
    }

    #[test]
    fn disruption_labels_present_and_causal() {
        let cfg = FusionConfig {
            shots: 40,
            disruption_fraction: 0.8,
            ..small_cfg()
        };
        let store = ShotStore::generate(&cfg);
        let sink = Arc::new(MemSink::new());
        let ledger = Arc::new(Ledger::new());
        let pipeline = build_pipeline(&cfg, sink, ledger);
        let out = pipeline
            .run(FusionData {
                shots: store.shots().to_vec(),
                aligned: vec![],
                windows: vec![],
                normalizers: vec![],
            })
            .unwrap();
        let windows = &out.output.windows;
        assert!(!windows.is_empty());
        let positives = windows.iter().filter(|w| w.label == 1).count();
        assert!(positives > 0, "no positive disruption windows generated");
        // No window from a disrupted shot extends past its disruption.
        for w in windows {
            let shot = store.get(w.shot_id).unwrap();
            if shot.t_disrupt.is_some() {
                // Post-disruption windows were skipped; feature values of
                // kept windows are finite.
                assert!(w.features.iter().all(|v| v.is_finite()));
            }
        }
    }
}
