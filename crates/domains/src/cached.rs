//! Cached variants of the domain pipelines: the same stage bodies as
//! [`crate::climate`] / [`crate::materials`], but the expensive middle
//! stages run through [`drai_cache::StageCache`] so a re-run over
//! unchanged inputs replays memoized results instead of recomputing
//! (the "incremental reprocessing" need of §4 — pipelines are rerun
//! every time normalization choices or grid targets change).
//!
//! The [`drai_cache::CacheBytes`] impls here are the canonical binary
//! encodings of the inter-stage artifacts. They are exact (f64/f32 bits
//! round-trip via [`ByteWriter`]/[`ByteReader`]), so a cached stage
//! output is byte-identical to a fresh one — asserted by the coherence
//! tests and required for stable provenance digests.

use crate::climate::{self, ClimateConfig, ClimateData};
use crate::materials::{self, GraphSample, MaterialsConfig, MaterialsData};
use drai_cache::bytes::{ByteReader, ByteWriter};
use drai_cache::{config_fingerprint, CacheBytes, CachedPipelineExt, StageCache};
use drai_core::pipeline::Pipeline;
use drai_core::readiness::ProcessingStage as S;
use drai_formats::xyz::{Atom, Frame};
use drai_io::sink::StorageSink;
use drai_provenance::Ledger;
use drai_tensor::{LatLonGrid, Tensor};
use drai_transform::normalize::{Method, Normalizer};
use std::collections::BTreeMap;
use std::sync::Arc;

fn method_tag(m: Method) -> u8 {
    match m {
        Method::ZScore => 0,
        Method::MinMax => 1,
        Method::Robust => 2,
    }
}

fn method_from_tag(tag: u8) -> Result<Method, String> {
    match tag {
        0 => Ok(Method::ZScore),
        1 => Ok(Method::MinMax),
        2 => Ok(Method::Robust),
        t => Err(format!("unknown normalizer method tag {t}")),
    }
}

impl CacheBytes for ClimateData {
    fn to_cache_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            self.fields.iter().map(|f| f.len() * 8 + 8).sum::<usize>() + 64,
        );
        w.put_u64(self.grid.nlat() as u64);
        w.put_u64(self.grid.nlon() as u64);
        w.put_u64(self.timesteps as u64);
        w.put_u64(self.fields.len() as u64);
        for f in &self.fields {
            w.put_f64_slice(f);
        }
        w.put_u64(self.normalizers.len() as u64);
        for n in &self.normalizers {
            w.put_u8(method_tag(n.method()));
            w.put_f64(n.offset);
            w.put_f64(n.scale);
        }
        w.finish()
    }

    fn from_cache_bytes(data: &[u8]) -> Result<ClimateData, String> {
        let mut r = ByteReader::new(data);
        let nlat = r.u64()? as usize;
        let nlon = r.u64()? as usize;
        let timesteps = r.u64()? as usize;
        let nfields = r.u64()? as usize;
        let mut fields = Vec::with_capacity(nfields.min(1024));
        for _ in 0..nfields {
            fields.push(r.f64_vec()?);
        }
        let nnorm = r.u64()? as usize;
        let mut normalizers = Vec::with_capacity(nnorm.min(1024));
        for _ in 0..nnorm {
            let method = method_from_tag(r.u8()?)?;
            let offset = r.f64()?;
            let scale = r.f64()?;
            normalizers.push(Normalizer::from_parts(method, offset, scale));
        }
        r.expect_end()?;
        Ok(ClimateData {
            fields,
            grid: LatLonGrid::global(nlat, nlon),
            timesteps,
            normalizers,
        })
    }
}

fn put_tensor_f32(w: &mut ByteWriter, t: &Tensor<f32>) {
    w.put_u64(t.shape().len() as u64);
    for &d in t.shape() {
        w.put_u64(d as u64);
    }
    w.put_bytes(&t.to_le_bytes());
}

fn put_tensor_i64(w: &mut ByteWriter, t: &Tensor<i64>) {
    w.put_u64(t.shape().len() as u64);
    for &d in t.shape() {
        w.put_u64(d as u64);
    }
    w.put_bytes(&t.to_le_bytes());
}

fn tensor_shape(r: &mut ByteReader) -> Result<Vec<usize>, String> {
    let rank = r.u64()? as usize;
    if rank > 16 {
        return Err(format!("implausible tensor rank {rank}"));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u64()? as usize);
    }
    Ok(shape)
}

fn read_tensor_f32(r: &mut ByteReader) -> Result<Tensor<f32>, String> {
    let shape = tensor_shape(r)?;
    let raw = r.bytes()?;
    if raw.len() % 4 != 0 {
        return Err(format!("f32 tensor payload of {} bytes", raw.len()));
    }
    let vals: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Tensor::from_vec(vals, &shape).map_err(|e| format!("{e}"))
}

fn read_tensor_i64(r: &mut ByteReader) -> Result<Tensor<i64>, String> {
    let shape = tensor_shape(r)?;
    let raw = r.bytes()?;
    if raw.len() % 8 != 0 {
        return Err(format!("i64 tensor payload of {} bytes", raw.len()));
    }
    let vals: Vec<i64> = raw
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Tensor::from_vec(vals, &shape).map_err(|e| format!("{e}"))
}

impl CacheBytes for MaterialsData {
    fn to_cache_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.frames.len() as u64);
        for frame in &self.frames {
            w.put_u64(frame.atoms.len() as u64);
            for atom in &frame.atoms {
                w.put_str(&atom.element);
                for &p in &atom.position {
                    w.put_f64(p);
                }
                match atom.force {
                    Some(f) => {
                        w.put_u8(1);
                        for &x in &f {
                            w.put_f64(x);
                        }
                    }
                    None => w.put_u8(0),
                }
            }
            w.put_u64(frame.properties.len() as u64);
            for (k, v) in &frame.properties {
                w.put_str(k);
                w.put_str(v);
            }
        }
        w.put_f64(self.energy_stats.0);
        w.put_f64(self.energy_stats.1);
        w.put_u64(self.graphs.len() as u64);
        for g in &self.graphs {
            w.put_u64(g.structure_id as u64);
            put_tensor_f32(&mut w, &g.node_features);
            put_tensor_i64(&mut w, &g.edges);
            put_tensor_f32(&mut w, &g.edge_lengths);
            w.put_f64(g.energy_per_atom);
            put_tensor_f32(&mut w, &g.forces);
        }
        w.finish()
    }

    fn from_cache_bytes(data: &[u8]) -> Result<MaterialsData, String> {
        let mut r = ByteReader::new(data);
        let nframes = r.u64()? as usize;
        let mut frames = Vec::with_capacity(nframes.min(4096));
        for _ in 0..nframes {
            let natoms = r.u64()? as usize;
            let mut atoms = Vec::with_capacity(natoms.min(65_536));
            for _ in 0..natoms {
                let element = r.str()?.to_string();
                let position = [r.f64()?, r.f64()?, r.f64()?];
                let force = match r.u8()? {
                    0 => None,
                    1 => Some([r.f64()?, r.f64()?, r.f64()?]),
                    t => return Err(format!("bad force flag {t}")),
                };
                atoms.push(Atom {
                    element,
                    position,
                    force,
                });
            }
            let nprops = r.u64()? as usize;
            let mut properties = BTreeMap::new();
            for _ in 0..nprops {
                let k = r.str()?.to_string();
                let v = r.str()?.to_string();
                properties.insert(k, v);
            }
            frames.push(Frame { atoms, properties });
        }
        let energy_stats = (r.f64()?, r.f64()?);
        let ngraphs = r.u64()? as usize;
        let mut graphs = Vec::with_capacity(ngraphs.min(4096));
        for _ in 0..ngraphs {
            let structure_id = r.u64()? as usize;
            let node_features = read_tensor_f32(&mut r)?;
            let edges = read_tensor_i64(&mut r)?;
            let edge_lengths = read_tensor_f32(&mut r)?;
            let energy_per_atom = r.f64()?;
            let forces = read_tensor_f32(&mut r)?;
            graphs.push(GraphSample {
                structure_id,
                node_features,
                edges,
                edge_lengths,
                energy_per_atom,
                forces,
            });
        }
        r.expect_end()?;
        Ok(MaterialsData {
            frames,
            energy_stats,
            graphs,
        })
    }
}

/// Fingerprint of every `ClimateConfig` input that affects the regrid
/// stage's output.
pub fn climate_regrid_fingerprint(cfg: &ClimateConfig) -> Vec<u8> {
    config_fingerprint([(
        "dst_grid",
        format!("{}x{}", cfg.dst_grid.nlat(), cfg.dst_grid.nlon()),
    )])
}

/// Fingerprint of the climate normalize stage configuration.
pub fn climate_normalize_fingerprint(_cfg: &ClimateConfig) -> Vec<u8> {
    config_fingerprint([("method", "zscore".to_string())])
}

/// Fingerprint of every `ClimateConfig` input that affects sharding.
pub fn climate_shard_fingerprint(cfg: &ClimateConfig) -> Vec<u8> {
    config_fingerprint([
        ("shard_bytes", format!("{}", cfg.shard_bytes)),
        ("seed", format!("{}", cfg.seed)),
        (
            "fractions",
            format!(
                "{}/{}/{}",
                cfg.fractions.train, cfg.fractions.validation, cfg.fractions.test
            ),
        ),
    ])
}

/// Build the climate pipeline with the regrid, normalize and shard
/// stages running through `cache`.
///
/// The shard stage's hit path additionally verifies that the shard
/// blobs it originally wrote still exist in `sink` — a cache entry
/// whose external artifacts were deleted is rejected and recomputed,
/// not trusted.
pub fn build_cached_climate_pipeline(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
    cache: Arc<StageCache>,
) -> Pipeline<ClimateData> {
    let cfg_regrid = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_regrid = ledger.clone();
    let ledger_norm = ledger.clone();
    let ledger_shard = ledger;
    let sink_check = sink.clone();
    let sink_shard = sink;

    Pipeline::builder("climate")
        .stage("validate", S::Ingest, climate::validate_stage)
        .cached_stage(
            "regrid",
            S::Preprocess,
            cache.clone(),
            climate_regrid_fingerprint(cfg),
            move |data: ClimateData, c| climate::regrid_stage(&cfg_regrid, &ledger_regrid, data, c),
        )
        .cached_stage(
            "normalize",
            S::Transform,
            cache.clone(),
            climate_normalize_fingerprint(cfg),
            move |data: ClimateData, c| climate::normalize_stage(&ledger_norm, data, c),
        )
        .cached_stage_with_check(
            "shard",
            S::Shard,
            cache,
            climate_shard_fingerprint(cfg),
            move |_data: &ClimateData| {
                sink_check
                    .list()
                    .map(|names| {
                        names
                            .iter()
                            .any(|n| n.starts_with("climate/") && n.ends_with(".shard"))
                    })
                    .unwrap_or(false)
            },
            move |data: ClimateData, c| {
                climate::shard_stage(
                    &cfg_shard,
                    sink_shard.as_ref(),
                    &ledger_shard,
                    "climate",
                    data,
                    c,
                )
            },
        )
        .build()
}

/// A batch member flowing through a cached batch pipeline: the member
/// id plus the inter-stage artifact. (A newtype rather than a tuple —
/// tuples are foreign types, so `CacheBytes` cannot be implemented for
/// them here.)
#[derive(Clone)]
pub struct Member<T>(pub usize, pub T);

/// A batch member is cached as its member id followed by the inner
/// artifact's canonical bytes, so each member keys its own cache
/// entries (identical fields under different member ids never collide).
impl<T: CacheBytes> CacheBytes for Member<T> {
    fn to_cache_bytes(&self) -> Vec<u8> {
        let inner = self.1.to_cache_bytes();
        let mut w = ByteWriter::with_capacity(inner.len() + 16);
        w.put_u64(self.0 as u64);
        w.put_bytes(&inner);
        w.finish()
    }

    fn from_cache_bytes(data: &[u8]) -> Result<Member<T>, String> {
        let mut r = ByteReader::new(data);
        let member = r.u64()? as usize;
        let inner = r.bytes()?.to_vec();
        r.expect_end()?;
        Ok(Member(member, T::from_cache_bytes(&inner)?))
    }
}

/// Build the climate batch pipeline (`(member, data)` items, per-member
/// shard prefixes) with the regrid, normalize and shard stages running
/// through `cache`. Under the streaming executor a warm cache turns
/// each cached stage's probe into a fast-path hit that skips the
/// stage's channel hop entirely.
pub fn build_cached_climate_batch_pipeline(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
    cache: Arc<StageCache>,
) -> Pipeline<Member<ClimateData>> {
    let cfg_regrid = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_regrid = ledger.clone();
    let ledger_norm = ledger.clone();
    let ledger_shard = ledger;
    let sink_check = sink.clone();
    let sink_shard = sink;

    Pipeline::builder("climate-batch")
        .stage(
            "validate",
            S::Ingest,
            |Member(m, data): Member<ClimateData>, c| {
                climate::validate_stage(data, c).map(|data| Member(m, data))
            },
        )
        .cached_stage(
            "regrid",
            S::Preprocess,
            cache.clone(),
            climate_regrid_fingerprint(cfg),
            move |Member(m, data), c| {
                climate::regrid_stage(&cfg_regrid, &ledger_regrid, data, c)
                    .map(|data| Member(m, data))
            },
        )
        .cached_stage(
            "normalize",
            S::Transform,
            cache.clone(),
            climate_normalize_fingerprint(cfg),
            move |Member(m, data), c| {
                climate::normalize_stage(&ledger_norm, data, c).map(|data| Member(m, data))
            },
        )
        .cached_stage_with_check(
            "shard",
            S::Shard,
            cache,
            climate_shard_fingerprint(cfg),
            move |Member(m, _data): &Member<ClimateData>| {
                let prefix = format!("climate/m{m}/");
                sink_check
                    .list()
                    .map(|names| {
                        names
                            .iter()
                            .any(|n| n.starts_with(&prefix) && n.ends_with(".shard"))
                    })
                    .unwrap_or(false)
            },
            move |Member(m, data), c| {
                climate::shard_stage(
                    &cfg_shard,
                    sink_shard.as_ref(),
                    &ledger_shard,
                    &format!("climate/m{m}"),
                    data,
                    c,
                )
                .map(|data| Member(m, data))
            },
        )
        .build()
}

/// Fingerprint of the materials normalize stage configuration.
pub fn materials_normalize_fingerprint(_cfg: &MaterialsConfig) -> Vec<u8> {
    config_fingerprint([("target", "energy_per_atom".to_string())])
}

/// Fingerprint of every `MaterialsConfig` input that affects encoding.
pub fn materials_encode_fingerprint(cfg: &MaterialsConfig) -> Vec<u8> {
    config_fingerprint([("cutoff", format!("{:.12e}", cfg.cutoff))])
}

/// Build the materials pipeline with the normalize and encode stages
/// running through `cache`. The shard stage stays uncached: its output
/// is the external BP/JSONL blobs, which must be (re)written every run.
pub fn build_cached_materials_pipeline(
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
    cache: Arc<StageCache>,
) -> Pipeline<MaterialsData> {
    let cfg_encode = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_shard = ledger.clone();
    let ledger_norm = ledger;

    Pipeline::builder("materials")
        .stage("parse", S::Ingest, materials::parse_stage)
        .cached_stage(
            "normalize",
            S::Transform,
            cache.clone(),
            materials_normalize_fingerprint(cfg),
            move |data: MaterialsData, c| materials::normalize_stage(&ledger_norm, data, c),
        )
        .cached_stage(
            "encode",
            S::Structure,
            cache,
            materials_encode_fingerprint(cfg),
            move |data: MaterialsData, c| materials::encode_stage(&cfg_encode, data, c),
        )
        .stage("shard", S::Shard, move |data: MaterialsData, c| {
            materials::shard_stage(
                &cfg_shard,
                sink.as_ref(),
                &ledger_shard,
                "materials",
                data,
                c,
            )
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_cache::clock::LogicalClock;
    use drai_formats::netcdf::NcFile;
    use drai_formats::xyz::parse_xyz;
    use drai_io::checksum::content_hash128;
    use drai_io::sink::MemSink;
    use drai_telemetry::{Registry, TraceContext};

    fn climate_cfg() -> ClimateConfig {
        ClimateConfig {
            src_grid: LatLonGrid::global(12, 24),
            dst_grid: LatLonGrid::global(8, 16),
            timesteps: 6,
            seed: 7,
            shard_bytes: 64 * 1024,
            ..ClimateConfig::default()
        }
    }

    fn materials_cfg() -> MaterialsConfig {
        MaterialsConfig {
            structures: 6,
            cell_atoms: 2,
            seed: 11,
            ..MaterialsConfig::default()
        }
    }

    fn test_cache(sink: &Arc<MemSink>) -> Arc<StageCache> {
        Arc::new(
            StageCache::new(sink.clone() as Arc<dyn StorageSink>, 64 << 20)
                .with_clock(Arc::new(LogicalClock::new())),
        )
    }

    fn climate_input(cfg: &ClimateConfig) -> ClimateData {
        let raw_sink = MemSink::new();
        let names = climate::generate_raw(cfg, &raw_sink).expect("generate");
        let fields = names
            .iter()
            .enumerate()
            .map(|(vi, name)| {
                let bytes = raw_sink.read_file(name).expect("read raw");
                let nc = NcFile::from_bytes(&bytes).expect("parse nc");
                nc.var(climate::VARIABLES[vi].0)
                    .expect("variable present")
                    .data
                    .to_f64_vec()
            })
            .collect();
        ClimateData {
            fields,
            grid: cfg.src_grid.clone(),
            timesteps: cfg.timesteps,
            normalizers: vec![],
        }
    }

    fn materials_input(cfg: &MaterialsConfig) -> MaterialsData {
        let raw_sink = MemSink::new();
        materials::generate_raw(cfg, &raw_sink).expect("generate");
        let raw = raw_sink.read_file("raw/structures.xyz").expect("read raw");
        let frames = parse_xyz(&String::from_utf8_lossy(&raw)).expect("parse xyz");
        MaterialsData {
            frames,
            energy_stats: (0.0, 1.0),
            graphs: vec![],
        }
    }

    #[test]
    fn climate_data_round_trips_exactly() {
        let cfg = climate_cfg();
        let mut data = climate_input(&cfg);
        data.normalizers = vec![
            Normalizer::from_parts(Method::ZScore, 1.5, 2.0),
            Normalizer::from_parts(Method::Robust, -0.25, 4.0),
        ];
        let bytes = data.to_cache_bytes();
        let back = ClimateData::from_cache_bytes(&bytes).expect("decode");
        assert_eq!(back.to_cache_bytes(), bytes);
        assert_eq!(back.fields, data.fields);
        assert_eq!(back.grid.shape(), data.grid.shape());
        assert_eq!(back.normalizers, data.normalizers);
    }

    #[test]
    fn materials_data_round_trips_exactly() {
        let cfg = materials_cfg();
        let data = materials_input(&cfg);
        let bytes = data.to_cache_bytes();
        let back = MaterialsData::from_cache_bytes(&bytes).expect("decode");
        assert_eq!(back.to_cache_bytes(), bytes);
        assert_eq!(back.frames.len(), data.frames.len());
        assert_eq!(
            back.frames[0].atoms[0].position,
            data.frames[0].atoms[0].position
        );
    }

    #[test]
    fn cached_climate_pipeline_matches_plain_and_hits_warm() {
        let reg = Registry::new();
        let ((), snapshot) = run_in_registry(&reg, || {
            let cfg = climate_cfg();
            let input = climate_input(&cfg);

            // Plain pipeline → reference output digest.
            let plain_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
            let plain_ledger = Arc::new(Ledger::new());
            let plain = climate::build_pipeline(&cfg, plain_sink.clone(), plain_ledger.clone());
            let plain_out = plain.run(input.clone()).expect("plain run").output;
            let plain_digest = content_hash128(&plain_out.to_cache_bytes());

            // Cached pipeline, cold then warm, against a fresh sink each
            // run (the cache sink is separate and persists).
            let cache_sink = Arc::new(MemSink::new());
            let cache = test_cache(&cache_sink);
            for pass in 0..2 {
                let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
                let ledger = Arc::new(Ledger::new());
                let p = build_cached_climate_pipeline(&cfg, sink.clone(), ledger, cache.clone());
                let out = p.run(input.clone()).expect("cached run").output;
                assert_eq!(
                    content_hash128(&out.to_cache_bytes()),
                    plain_digest,
                    "pass {pass}: cached output differs from plain"
                );
                // Each pass gets a fresh output sink, so the shard hit's
                // external check fails and the stage recomputes — shard
                // blobs must appear in every pass's own sink.
                let blobs = sink.list().expect("list");
                assert!(
                    blobs
                        .iter()
                        .any(|n| n.starts_with("climate/") && n.ends_with(".shard")),
                    "pass {pass}: shard stage must write to its own sink"
                );
            }
        });
        let hits = snapshot.counters.get("cache.hits").copied().unwrap_or(0);
        // Warm pass: regrid, normalize and shard all decode as hits
        // (the shard hit is then rejected by the external check above).
        assert_eq!(hits, 3, "counters: {:?}", snapshot.counters);
        assert_eq!(
            snapshot.counters.get("cache.misses").copied().unwrap_or(0),
            3,
            "cold pass misses all three cached stages"
        );
    }

    #[test]
    fn cached_climate_shard_hit_accepted_when_blobs_exist() {
        let cfg = climate_cfg();
        let input = climate_input(&cfg);
        let cache_sink = Arc::new(MemSink::new());
        let cache = test_cache(&cache_sink);
        // One shared output sink: warm pass sees the cold pass's shards.
        let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let cold_reg = Registry::new();
        run_in_registry(&cold_reg, || {
            let ledger = Arc::new(Ledger::new());
            let p = build_cached_climate_pipeline(&cfg, sink.clone(), ledger, cache.clone());
            p.run(input.clone()).expect("cold run");
        });
        let warm_reg = Registry::new();
        let ((), snapshot) = run_in_registry(&warm_reg, || {
            let ledger = Arc::new(Ledger::new());
            let p = build_cached_climate_pipeline(&cfg, sink.clone(), ledger, cache.clone());
            p.run(input.clone()).expect("warm run");
        });
        assert_eq!(
            snapshot.counters.get("cache.hits").copied().unwrap_or(0),
            3,
            "all three cached stages hit on warm pass: {:?}",
            snapshot.counters
        );
        // Accepted shard hit ⇒ the warm pass never writes to the output
        // sink (only cache reads happen, no cache or shard writes).
        assert_eq!(
            snapshot
                .counters
                .get("io.sink.files_written")
                .copied()
                .unwrap_or(0),
            0,
            "warm pass must be read-only: {:?}",
            snapshot.counters
        );
    }

    #[test]
    fn cached_materials_pipeline_matches_plain_and_hits_warm() {
        let reg = Registry::new();
        let ((), snapshot) = run_in_registry(&reg, || {
            let cfg = materials_cfg();

            let plain_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
            let plain_ledger = Arc::new(Ledger::new());
            let plain = materials::build_pipeline(&cfg, plain_sink.clone(), plain_ledger.clone());
            let plain_out = plain.run(materials_input(&cfg)).expect("plain run").output;
            let plain_digest = content_hash128(&plain_out.to_cache_bytes());

            let cache_sink = Arc::new(MemSink::new());
            let cache = test_cache(&cache_sink);
            for pass in 0..2 {
                let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
                let ledger = Arc::new(Ledger::new());
                let p = build_cached_materials_pipeline(&cfg, sink.clone(), ledger, cache.clone());
                let out = p.run(materials_input(&cfg)).expect("cached run").output;
                assert_eq!(
                    content_hash128(&out.to_cache_bytes()),
                    plain_digest,
                    "pass {pass}: cached output differs from plain"
                );
            }
        });
        assert_eq!(
            snapshot.counters.get("cache.hits").copied().unwrap_or(0),
            2,
            "normalize + encode hit on warm pass: {:?}",
            snapshot.counters
        );
    }

    #[test]
    fn config_change_invalidates_climate_regrid() {
        let cfg_a = climate_cfg();
        let cfg_b = ClimateConfig {
            dst_grid: LatLonGrid::global(6, 12),
            ..climate_cfg()
        };
        let fp_a = climate_regrid_fingerprint(&cfg_a);
        let fp_b = climate_regrid_fingerprint(&cfg_b);
        assert_ne!(fp_a, fp_b);
    }

    fn run_in_registry<R>(reg: &Registry, f: impl FnOnce() -> R) -> (R, drai_telemetry::Snapshot) {
        let ctx = TraceContext::root(reg);
        let r = ctx.scope(f);
        (r, reg.snapshot())
    }

    #[test]
    fn member_tagged_climate_data_round_trips_exactly() {
        let cfg = climate_cfg();
        let data = Member(7, climate_input(&cfg));
        let bytes = data.to_cache_bytes();
        let back = Member::<ClimateData>::from_cache_bytes(&bytes).expect("decode");
        assert_eq!(back.0, 7);
        assert_eq!(back.to_cache_bytes(), bytes);
        assert_eq!(back.1.fields, data.1.fields);
        // Tagging changes the encoding, so identical fields under a
        // different member id key different cache entries.
        assert_ne!(Member(8, climate_input(&cfg)).to_cache_bytes(), bytes);
    }

    #[test]
    fn cached_batch_pipeline_warm_streaming_short_circuits_channel_hops() {
        use drai_core::executor::{ExecutorConfig, StreamingBatchExt};

        let cfg = climate_cfg();
        let members = 3usize;
        let items = |n: usize| -> Vec<Member<ClimateData>> {
            (0..n)
                .map(|m| Member(m, climate::member_input(&cfg, m)))
                .collect()
        };
        let cache_sink = Arc::new(MemSink::new());
        let cache = test_cache(&cache_sink);
        // One shared output sink so the warm pass's shard hits pass the
        // external blob check.
        let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let exec = ExecutorConfig::default();

        let cold_reg = Registry::new();
        let ((), cold) = run_in_registry(&cold_reg, || {
            let p = build_cached_climate_batch_pipeline(
                &cfg,
                sink.clone(),
                Arc::new(Ledger::new()),
                cache.clone(),
            );
            p.run_batch_streaming(items(members), &exec).expect("cold");
        });
        assert_eq!(
            cold.counters.get("cache.misses").copied().unwrap_or(0),
            3 * members as u64,
            "cold pass misses all three cached stages per member: {:?}",
            cold.counters
        );

        let warm_reg = Registry::new();
        let ((), warm) = run_in_registry(&warm_reg, || {
            let p = build_cached_climate_batch_pipeline(
                &cfg,
                sink.clone(),
                Arc::new(Ledger::new()),
                cache.clone(),
            );
            p.run_batch_streaming(items(members), &exec).expect("warm");
        });
        assert_eq!(
            warm.counters.get("cache.hits").copied().unwrap_or(0),
            3 * members as u64,
            "warm pass hits all three cached stages per member: {:?}",
            warm.counters
        );
        // Every warm hit fires on the sending side of a channel, so the
        // executor skips that stage's channel hop entirely.
        assert_eq!(
            warm.counters
                .get("executor.shortcircuits")
                .copied()
                .unwrap_or(0),
            3 * members as u64,
            "each warm hit skips its channel hop: {:?}",
            warm.counters
        );
    }
}
