//! # drai-domains
//!
//! The four archetype workflows of Table 1, end-to-end: synthetic raw-data
//! generators standing in for the gated sources (DESIGN.md substitution
//! table) plus the full preprocessing pipeline for each domain, built on
//! the framework (`drai-core`), kernels (`drai-transform`), formats
//! (`drai-formats`) and shard engine (`drai-io`).
//!
//! | Module | Table 1 row | Pattern |
//! |---|---|---|
//! | [`climate`] | CMIP6 / ERA5 (ORBIT, ClimaX) | `download → regrid → normalize → shard` (NetCDF → NPZ) |
//! | [`fusion`] | DIII-D ML / IPS-Fastran | `extract → align → normalize → shard` (shot store → TFRecord) |
//! | [`bio`] | TwoFold / C-HER / Enformer | `encode → anonymize → fuse → secure-shard` (CSV+FASTA → encrypted h5lite) |
//! | [`materials`] | OMat24 / AFLOW (HydraGNN) | `parse → normalize → encode → shard` (XYZ → BP + JSONL) |
//!
//! Every pipeline returns a [`DomainRun`]: the output dataset manifest
//! (with evidence flags set by the stages that actually ran), per-stage
//! metrics, and the provenance ledger — so the readiness assessor can
//! grade the result and the Table 2 bench can measure each cell.

#![forbid(unsafe_code)]

pub mod bio;
pub mod cached;
pub mod climate;
pub mod fusion;
pub mod materials;

use drai_core::pipeline::StageMetrics;
use drai_core::DatasetManifest;
use drai_provenance::Ledger;
use std::sync::Arc;

/// Common result of running a domain pipeline.
pub struct DomainRun {
    /// Evidence-bearing manifest for the produced dataset.
    pub manifest: DatasetManifest,
    /// Per-stage timing/volume.
    pub stages: Vec<StageMetrics>,
    /// Provenance of every transformation (shared with the pipeline's
    /// stage closures, hence the `Arc`).
    pub ledger: Arc<Ledger>,
    /// Names of shard blobs written (across splits).
    pub shard_files: Vec<String>,
}

/// Common result of running a domain batch through the streaming
/// bounded-memory executor ([`climate::run_streaming_batch`],
/// [`materials::run_streaming_batch`]): one pipeline, many ensemble
/// members, merged per-stage metrics.
pub struct DomainBatchRun {
    /// Number of batch members processed.
    pub members: usize,
    /// Per-stage timing/volume merged across the batch.
    pub stages: Vec<StageMetrics>,
    /// Provenance of every transformation across all members.
    pub ledger: Arc<Ledger>,
    /// Names of shard blobs written (across members and splits).
    pub shard_files: Vec<String>,
}

/// Errors from domain pipelines.
#[derive(Debug)]
pub enum DomainError {
    /// Core framework failure.
    Core(drai_core::CoreError),
    /// Format encode/decode failure.
    Format(drai_formats::FormatError),
    /// I/O failure.
    Io(drai_io::IoError),
    /// Kernel failure.
    Transform(drai_transform::TransformError),
    /// Generator/parameter problem.
    Config(String),
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Core(e) => write!(f, "{e}"),
            DomainError::Format(e) => write!(f, "{e}"),
            DomainError::Io(e) => write!(f, "{e}"),
            DomainError::Transform(e) => write!(f, "{e}"),
            DomainError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<drai_core::CoreError> for DomainError {
    fn from(e: drai_core::CoreError) -> Self {
        DomainError::Core(e)
    }
}
impl From<drai_formats::FormatError> for DomainError {
    fn from(e: drai_formats::FormatError) -> Self {
        DomainError::Format(e)
    }
}
impl From<drai_io::IoError> for DomainError {
    fn from(e: drai_io::IoError) -> Self {
        DomainError::Io(e)
    }
}
impl From<drai_transform::TransformError> for DomainError {
    fn from(e: drai_transform::TransformError) -> Self {
        DomainError::Transform(e)
    }
}
