//! # drai-domains
//!
//! The four archetype workflows of Table 1, end-to-end: synthetic raw-data
//! generators standing in for the gated sources (DESIGN.md substitution
//! table) plus the full preprocessing pipeline for each domain, built on
//! the framework (`drai-core`), kernels (`drai-transform`), formats
//! (`drai-formats`) and shard engine (`drai-io`).
//!
//! | Module | Table 1 row | Pattern |
//! |---|---|---|
//! | [`climate`] | CMIP6 / ERA5 (ORBIT, ClimaX) | `download → regrid → normalize → shard` (NetCDF → NPZ) |
//! | [`fusion`] | DIII-D ML / IPS-Fastran | `extract → align → normalize → shard` (shot store → TFRecord) |
//! | [`bio`] | TwoFold / C-HER / Enformer | `encode → anonymize → fuse → secure-shard` (CSV+FASTA → encrypted h5lite) |
//! | [`materials`] | OMat24 / AFLOW (HydraGNN) | `parse → normalize → encode → shard` (XYZ → BP + JSONL) |
//!
//! Every pipeline returns a [`DomainRun`]: the output dataset manifest
//! (with evidence flags set by the stages that actually ran), per-stage
//! metrics, and the provenance ledger — so the readiness assessor can
//! grade the result and the Table 2 bench can measure each cell.

#![forbid(unsafe_code)]

pub mod bio;
pub mod cached;
pub mod climate;
pub mod fusion;
pub mod materials;
pub mod service;

use drai_core::pipeline::StageMetrics;
use drai_core::DatasetManifest;
use drai_provenance::Ledger;
use drai_telemetry::monitor::{
    HealthSpec, MonitorReport, ProgressTarget, Sampler, SamplerConfig, WallMonitorClock,
};
use drai_telemetry::Registry;
use std::sync::Arc;
use std::time::Duration;

/// Live-monitoring knobs for the `run_streaming_batch_monitored`
/// entry points ([`climate::run_streaming_batch_monitored`],
/// [`materials::run_streaming_batch_monitored`]).
#[derive(Debug, Clone)]
pub struct MonitorOptions {
    /// Background sampling interval.
    pub interval: Duration,
    /// Ring-buffer capacity per metric series.
    pub capacity: usize,
    /// Emit live progress lines (`items/s`, ETA) to stderr.
    pub progress: bool,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            interval: Duration::from_millis(5),
            capacity: 1024,
            progress: false,
        }
    }
}

/// Run `f` under a background monitor sampler on the current registry:
/// series are sampled every `opts.interval`, `spec` health rules are
/// evaluated per sample, progress is read from the executor's live
/// `executor.items_completed` counter against `total_items`, and the
/// final report (including the closing sample) is returned next to
/// `f`'s output.
pub(crate) fn monitored_run<T>(
    label: &'static str,
    total_items: u64,
    opts: &MonitorOptions,
    spec: HealthSpec,
    f: impl FnOnce() -> Result<T, DomainError>,
) -> Result<(T, MonitorReport), DomainError> {
    let registry = Registry::current();
    let sampler_cfg = SamplerConfig {
        capacity: opts.capacity,
        progress: Some(ProgressTarget {
            counter: "executor.items_completed".to_string(),
            total: total_items,
        }),
    };
    let mut sampler = Sampler::new(
        &registry,
        Arc::new(WallMonitorClock::new()),
        sampler_cfg,
        spec,
    );
    if opts.progress {
        sampler = sampler.with_observer(move |tick| {
            if let Some(p) = tick.progress {
                eprintln!("[{label}] {}", p.render());
            }
        });
    }
    let handle = sampler.start(opts.interval);
    let out = f();
    let report = handle.stop();
    out.map(|v| (v, report))
}

/// Common result of running a domain pipeline.
pub struct DomainRun {
    /// Evidence-bearing manifest for the produced dataset.
    pub manifest: DatasetManifest,
    /// Per-stage timing/volume.
    pub stages: Vec<StageMetrics>,
    /// Provenance of every transformation (shared with the pipeline's
    /// stage closures, hence the `Arc`).
    pub ledger: Arc<Ledger>,
    /// Names of shard blobs written (across splits).
    pub shard_files: Vec<String>,
}

/// Common result of running a domain batch through the streaming
/// bounded-memory executor ([`climate::run_streaming_batch`],
/// [`materials::run_streaming_batch`]): one pipeline, many ensemble
/// members, merged per-stage metrics.
pub struct DomainBatchRun {
    /// Number of batch members processed.
    pub members: usize,
    /// Per-stage timing/volume merged across the batch.
    pub stages: Vec<StageMetrics>,
    /// Provenance of every transformation across all members.
    pub ledger: Arc<Ledger>,
    /// Names of shard blobs written (across members and splits).
    pub shard_files: Vec<String>,
}

/// Errors from domain pipelines.
#[derive(Debug)]
pub enum DomainError {
    /// Core framework failure.
    Core(drai_core::CoreError),
    /// Format encode/decode failure.
    Format(drai_formats::FormatError),
    /// I/O failure.
    Io(drai_io::IoError),
    /// Kernel failure.
    Transform(drai_transform::TransformError),
    /// Generator/parameter problem.
    Config(String),
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Core(e) => write!(f, "{e}"),
            DomainError::Format(e) => write!(f, "{e}"),
            DomainError::Io(e) => write!(f, "{e}"),
            DomainError::Transform(e) => write!(f, "{e}"),
            DomainError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<drai_core::CoreError> for DomainError {
    fn from(e: drai_core::CoreError) -> Self {
        DomainError::Core(e)
    }
}
impl From<drai_formats::FormatError> for DomainError {
    fn from(e: drai_formats::FormatError) -> Self {
        DomainError::Format(e)
    }
}
impl From<drai_io::IoError> for DomainError {
    fn from(e: drai_io::IoError) -> Self {
        DomainError::Io(e)
    }
}
impl From<drai_transform::TransformError> for DomainError {
    fn from(e: drai_transform::TransformError) -> Self {
        DomainError::Transform(e)
    }
}
