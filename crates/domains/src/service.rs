//! Running the four archetypes as multi-tenant service jobs.
//!
//! The paper's "shared facility" framing: preprocessing runs as a
//! service many groups submit to, not a library one caller drives.
//! These helpers wrap each archetype in a `drai_sched::JobSpec` — the
//! cost estimate is the archetype's natural work unit (ensemble
//! members, shots, patients, structures), the closure drives the
//! streaming executor with the scheduler's `ExecutorConfig`, and
//! batch archetypes thread the job's `CancelToken` into
//! `run_batch_streaming_cancellable` so load shedding and handle
//! cancellation drain cooperatively.
//!
//! [`estimate_climate_batch_cost`] shows the cache-aware admission
//! path: members whose regrid entry already exists in the
//! [`StageCache`] (an O(1) [`StageCache::contains`] probe, no payload
//! read) are expected to fast-path through the chain, so they count a
//! fraction of a cold member toward quotas and the in-flight gate.

use crate::bio::{self, BioConfig};
use crate::cached::{self, Member};
use crate::climate::{self, ClimateConfig};
use crate::fusion::{self, FusionConfig};
use crate::materials::{self, MaterialsConfig};
use drai_cache::{CacheBytes, CacheKey, StageCache};
use drai_core::StreamingBatchExt;
use drai_io::sink::StorageSink;
use drai_provenance::Ledger;
use drai_sched::{JobHandle, JobOutput, JobSpec, Rejected, Scheduler};
use std::sync::Arc;

/// Submit a climate ensemble (`members` member-seeded inputs through
/// the streaming `validate → regrid → normalize → shard` chain) as a
/// job for `tenant`. Cost = `members`.
pub fn submit_climate_batch(
    sched: &Scheduler,
    tenant: &str,
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
) -> Result<JobHandle, Rejected> {
    let cfg = cfg.clone();
    let spec = JobSpec::new(tenant, "climate_batch", members as u64, move |ctx| {
        let ledger = Arc::new(Ledger::new());
        let pipeline = climate::build_batch_pipeline(&cfg, sink, ledger);
        let items: Vec<(usize, climate::ClimateData)> = (0..members)
            .map(|m| (m, climate::member_input(&cfg, m)))
            .collect();
        pipeline
            .run_batch_streaming_cancellable(items, &ctx.exec, &ctx.cancel)
            .map_err(|e| e.to_string())?;
        Ok(JobOutput {
            items: members as u64,
            detail: format!("climate ensemble: {members} members sharded"),
        })
    });
    sched.submit(spec)
}

/// Submit a materials batch (`members` member-seeded structure sets
/// through `parse → normalize → encode → shard`) as a job for
/// `tenant`. Cost = `members`.
pub fn submit_materials_batch(
    sched: &Scheduler,
    tenant: &str,
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
) -> Result<JobHandle, Rejected> {
    let cfg = cfg.clone();
    let spec = JobSpec::new(tenant, "materials_batch", members as u64, move |ctx| {
        let ledger = Arc::new(Ledger::new());
        let pipeline = materials::build_batch_pipeline(&cfg, sink, ledger);
        let mut items = Vec::with_capacity(members);
        for m in 0..members {
            items.push((
                m,
                materials::member_input(&cfg, m).map_err(|e| e.to_string())?,
            ));
        }
        pipeline
            .run_batch_streaming_cancellable(items, &ctx.exec, &ctx.cancel)
            .map_err(|e| e.to_string())?;
        Ok(JobOutput {
            items: members as u64,
            detail: format!("materials batch: {members} members encoded"),
        })
    });
    sched.submit(spec)
}

/// Submit one fusion shot-store extraction (`extract → align →
/// normalize → shard`) as a job for `tenant`. Cost = shots. The run is
/// monolithic, so cancellation is honoured at the dispatch boundary
/// (a job cancelled while queued never starts).
pub fn submit_fusion_run(
    sched: &Scheduler,
    tenant: &str,
    cfg: &FusionConfig,
    sink: Arc<dyn StorageSink>,
) -> Result<JobHandle, Rejected> {
    let cfg = cfg.clone();
    let cost = cfg.shots as u64;
    let spec = JobSpec::new(tenant, "fusion_run", cost, move |ctx| {
        if ctx.cancel.is_cancelled() {
            return Err("cancelled before start".to_string());
        }
        let run = fusion::run(&cfg, sink).map_err(|e| e.to_string())?;
        Ok(JobOutput {
            items: run.manifest.records,
            detail: format!("fusion: {} shots windowed", cfg.shots),
        })
    });
    sched.submit(spec)
}

/// Submit one bio/health cohort (`encode → anonymize → fuse →
/// secure-shard`) as a job for `tenant`. Cost = patients. Monolithic
/// run; cancellation is honoured at the dispatch boundary.
pub fn submit_bio_run(
    sched: &Scheduler,
    tenant: &str,
    cfg: &BioConfig,
    sink: Arc<dyn StorageSink>,
) -> Result<JobHandle, Rejected> {
    let cfg = cfg.clone();
    let cost = cfg.patients as u64;
    let spec = JobSpec::new(tenant, "bio_run", cost, move |ctx| {
        if ctx.cancel.is_cancelled() {
            return Err("cancelled before start".to_string());
        }
        let run = bio::run(&cfg, sink).map_err(|e| e.to_string())?;
        Ok(JobOutput {
            items: run.manifest.records,
            detail: format!("bio: {} patients fused", cfg.patients),
        })
    });
    sched.submit(spec)
}

/// Cache-aware cost estimate for a cached climate batch: a cold member
/// costs 1, a member whose regrid entry is already present (checked
/// with the O(1) [`StageCache::contains`] metadata probe against the
/// exact key `cached_stage` will compute) is expected to fast-path and
/// costs nothing. Clamped to ≥ 1 so a fully warm batch still passes
/// admission as one cost unit. Returns `(estimated_cost, warm_members)`.
pub fn estimate_climate_batch_cost(
    cfg: &ClimateConfig,
    cache: &StageCache,
    members: usize,
) -> (u64, usize) {
    let fp = cached::climate_regrid_fingerprint(cfg);
    let mut warm = 0usize;
    for m in 0..members {
        // validate passes the member input through unchanged, so the
        // regrid stage's cache key is computable without running the
        // pipeline.
        let input = Member(m, climate::member_input(cfg, m)).to_cache_bytes();
        if cache.contains(&CacheKey::compute("regrid", &input, &fp)) {
            warm += 1;
        }
    }
    (((members - warm) as u64).max(1), warm)
}

/// [`submit_climate_batch`] through the cached climate batch pipeline:
/// the cost estimate shrinks by the members whose regrid entries are
/// already warm (see [`estimate_climate_batch_cost`]), so a replayed
/// ensemble consumes almost none of the tenant's quota.
pub fn submit_climate_batch_cached(
    sched: &Scheduler,
    tenant: &str,
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    cache: Arc<StageCache>,
    members: usize,
) -> Result<JobHandle, Rejected> {
    let (cost, _warm) = estimate_climate_batch_cost(cfg, &cache, members);
    let cfg = cfg.clone();
    let spec = JobSpec::new(tenant, "climate_batch_cached", cost, move |ctx| {
        let ledger = Arc::new(Ledger::new());
        let pipeline = cached::build_cached_climate_batch_pipeline(&cfg, sink, ledger, cache);
        let items: Vec<Member<climate::ClimateData>> = (0..members)
            .map(|m| Member(m, climate::member_input(&cfg, m)))
            .collect();
        pipeline
            .run_batch_streaming_cancellable(items, &ctx.exec, &ctx.cancel)
            .map_err(|e| e.to_string())?;
        Ok(JobOutput {
            items: members as u64,
            detail: format!("cached climate ensemble: {members} members"),
        })
    });
    sched.submit(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_io::sink::MemSink;
    use drai_sched::{JobOutcome, SchedulerConfig, TenantConfig};
    use drai_telemetry::monitor::ManualClock;
    use drai_telemetry::{Registry, TraceContext};

    fn small_climate() -> ClimateConfig {
        ClimateConfig {
            timesteps: 2,
            shard_bytes: 1 << 16,
            ..ClimateConfig::default()
        }
    }

    fn sched() -> Arc<Scheduler> {
        Arc::new(Scheduler::with_clock(
            SchedulerConfig::default(),
            Arc::new(ManualClock::new()),
        ))
    }

    #[test]
    fn all_four_archetypes_run_as_jobs() {
        let reg = Registry::new();
        TraceContext::root(&reg).scope(|| {
            let s = sched();
            let climate_h = submit_climate_batch(
                &s,
                "climate_lab",
                &small_climate(),
                Arc::new(MemSink::new()),
                2,
            )
            .unwrap();
            let materials_h = submit_materials_batch(
                &s,
                "matsci",
                &MaterialsConfig {
                    structures: 4,
                    cell_atoms: 2,
                    ..MaterialsConfig::default()
                },
                Arc::new(MemSink::new()),
                2,
            )
            .unwrap();
            let fusion_h = submit_fusion_run(
                &s,
                "tokamak",
                &FusionConfig {
                    shots: 2,
                    shot_seconds: 0.05,
                    window_len: 16,
                    window_stride: 16,
                    ..FusionConfig::default()
                },
                Arc::new(MemSink::new()),
            )
            .unwrap();
            let bio_h = submit_bio_run(
                &s,
                "clinic",
                &BioConfig {
                    patients: 4,
                    tile_len: 32,
                    k: 2,
                    ..BioConfig::default()
                },
                Arc::new(MemSink::new()),
            )
            .unwrap();
            let transcript = s.run_until_idle();
            assert_eq!(transcript.len(), 4);
            for h in [climate_h, materials_h, fusion_h, bio_h] {
                match h.wait() {
                    JobOutcome::Completed(out) => assert!(out.items > 0),
                    other => panic!("job did not complete: {other:?}"),
                }
            }
        });
    }

    #[test]
    fn warm_cache_shrinks_climate_cost_estimate() {
        let reg = Registry::new();
        TraceContext::root(&reg).scope(|| {
            let cfg = small_climate();
            let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
            let cache = Arc::new(StageCache::new(Arc::new(MemSink::new()), 1 << 22));
            let members = 3;

            let (cold_cost, warm0) = estimate_climate_batch_cost(&cfg, &cache, members);
            assert_eq!((cold_cost, warm0), (members as u64, 0));

            // Populate the cache by running the cached batch once.
            let s = sched();
            let h =
                submit_climate_batch_cached(&s, "lab", &cfg, sink.clone(), cache.clone(), members)
                    .unwrap();
            s.run_until_idle();
            assert!(matches!(h.wait(), JobOutcome::Completed(_)));

            // Every member's regrid entry is now warm: the estimate
            // collapses to the 1-unit floor.
            let (warm_cost, warm) = estimate_climate_batch_cost(&cfg, &cache, members);
            assert_eq!(warm, members);
            assert_eq!(warm_cost, 1);
        });
    }

    #[test]
    fn cached_cost_respects_quota_where_cold_would_reject() {
        let reg = Registry::new();
        TraceContext::root(&reg).scope(|| {
            let cfg = small_climate();
            let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
            let cache = Arc::new(StageCache::new(Arc::new(MemSink::new()), 1 << 22));
            let members = 3;

            // Warm the cache first.
            let s0 = sched();
            submit_climate_batch_cached(&s0, "lab", &cfg, sink.clone(), cache.clone(), members)
                .unwrap();
            s0.run_until_idle();

            // A quota of 2 cost units rejects the cold submission (cost
            // 3) but admits the warm one (cost 1).
            let s = sched();
            s.register_tenant(TenantConfig::new("lab").cost_quota(2));
            let cold = submit_climate_batch(&s, "lab", &cfg, sink.clone(), members);
            assert!(matches!(cold, Err(Rejected::QuotaExceeded { .. })));
            let warm = submit_climate_batch_cached(&s, "lab", &cfg, sink, cache, members);
            assert!(warm.is_ok());
            s.run_until_idle();
        });
    }
}
