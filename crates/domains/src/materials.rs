//! Materials archetype: `parse → normalize → encode → shard`
//! (Table 1 row 4; §3.4; the OMat24/AFLOW → HydraGNN pattern).
//!
//! Raw data is synthesized as relaxed-crystal-like structures: a randomly
//! chosen cubic lattice of a random composition with thermal jitter, an
//! energy from a simple pair-potential surrogate, and per-atom forces —
//! written as extended-XYZ text (exactly what DFT pipelines emit). The
//! pipeline:
//!
//! 1. **parse** — read multi-frame XYZ, validate atom counts/energies;
//! 2. **normalize** — shift energies per atom, wrap positions into the
//!    cell, normalize descriptor statistics;
//! 3. **encode** — cutoff-radius neighbor graphs via a cell-list search
//!    (O(N) rather than O(N²), the HPC-relevant detail), species one-hot
//!    node features, distance edge features;
//! 4. **shard** — each graph becomes a BP process group; a JSONL sidecar
//!    carries per-sample metadata, split by structure key.

use crate::{DomainBatchRun, DomainError, DomainRun, MonitorOptions};
use drai_core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai_core::executor::{executor_health_spec, ExecutorConfig, StreamingBatchExt};
use drai_core::pipeline::{Pipeline, StageCounters};
use drai_core::readiness::ProcessingStage as S;
use drai_formats::bp::{BpVar, BpWriter, ProcessGroup};
use drai_formats::xyz::{parse_xyz, write_xyz, Atom, Frame};
use drai_io::json::Json;
use drai_io::sink::{MemSink, StorageSink};
use drai_provenance::{Artifact, Ledger};
use drai_telemetry::monitor::MonitorReport;
use drai_tensor::stats::Welford;
use drai_tensor::Tensor;
use drai_transform::split::{assign, Fractions, Split};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// Species used by the synthetic generator (with imbalanced abundances —
/// Table 1's "class imbalance" challenge).
pub const SPECIES: [(&str, f64); 5] = [
    ("Si", 0.4),
    ("O", 0.3),
    ("Al", 0.15),
    ("Fe", 0.1),
    ("Ti", 0.05),
];

/// Generator + pipeline configuration.
#[derive(Debug, Clone)]
pub struct MaterialsConfig {
    /// Number of structures.
    pub structures: usize,
    /// Atoms per edge of the cubic supercell (total = n³).
    pub cell_atoms: usize,
    /// Lattice constant (Å).
    pub lattice: f64,
    /// Thermal jitter amplitude (Å).
    pub jitter: f64,
    /// Neighbor cutoff radius (Å).
    pub cutoff: f64,
    /// RNG seed.
    pub seed: u64,
    /// Split fractions (keyed by structure).
    pub fractions: Fractions,
}

impl Default for MaterialsConfig {
    fn default() -> Self {
        MaterialsConfig {
            structures: 48,
            cell_atoms: 3,
            lattice: 2.7,
            jitter: 0.12,
            cutoff: 3.2,
            seed: 24_601,
            fractions: Fractions::standard(),
        }
    }
}

fn pick_species(rng: &mut SmallRng) -> &'static str {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (name, p) in SPECIES {
        acc += p;
        if u < acc {
            return name;
        }
    }
    SPECIES[SPECIES.len() - 1].0
}

/// Generate raw multi-frame XYZ into `sink` as `raw/structures.xyz`.
pub fn generate_raw(cfg: &MaterialsConfig, sink: &dyn StorageSink) -> Result<(), DomainError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.cell_atoms;
    let mut frames = Vec::with_capacity(cfg.structures);
    for _ in 0..cfg.structures {
        let mut atoms = Vec::with_capacity(n * n * n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let jit = |rng: &mut SmallRng| (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter;
                    atoms.push(Atom {
                        element: pick_species(&mut rng).to_string(),
                        position: [
                            i as f64 * cfg.lattice + jit(&mut rng),
                            j as f64 * cfg.lattice + jit(&mut rng),
                            k as f64 * cfg.lattice + jit(&mut rng),
                        ],
                        force: None,
                    });
                }
            }
        }
        // Pair-potential surrogate: E = Σ_pairs 4ε[(σ/r)^12 − (σ/r)^6]
        // within the cutoff; forces from the analytic gradient.
        let (sigma, eps) = (cfg.lattice * 0.85, 0.8);
        let mut energy = 0.0;
        let mut forces = vec![[0.0f64; 3]; atoms.len()];
        for a in 0..atoms.len() {
            for b in a + 1..atoms.len() {
                let d: Vec<f64> = (0..3)
                    .map(|c| atoms[a].position[c] - atoms[b].position[c])
                    .collect();
                let r2 = d.iter().map(|x| x * x).sum::<f64>();
                let r = r2.sqrt();
                if r > cfg.cutoff * 1.5 || r < 1e-6 {
                    continue;
                }
                let sr6 = (sigma / r).powi(6);
                energy += 4.0 * eps * (sr6 * sr6 - sr6);
                let fmag = 24.0 * eps * (2.0 * sr6 * sr6 - sr6) / r2;
                for c in 0..3 {
                    forces[a][c] += fmag * d[c];
                    forces[b][c] -= fmag * d[c];
                }
            }
        }
        for (atom, force) in atoms.iter_mut().zip(&forces) {
            atom.force = Some(*force);
        }
        let mut properties = std::collections::BTreeMap::new();
        properties.insert("energy".to_string(), format!("{energy:.6}"));
        properties.insert(
            "lattice".to_string(),
            format!("{0:.4} 0 0 0 {0:.4} 0 0 0 {0:.4}", cfg.lattice * n as f64),
        );
        frames.push(Frame { atoms, properties });
    }
    sink.write_file("raw/structures.xyz", write_xyz(&frames).as_bytes())?;
    Ok(())
}

/// An encoded graph sample.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Structure index (split key).
    pub structure_id: usize,
    /// `[natoms, nspecies]` one-hot node features.
    pub node_features: Tensor<f32>,
    /// `[nedges, 2]` source/target indices.
    pub edges: Tensor<i64>,
    /// `[nedges]` distances.
    pub edge_lengths: Tensor<f32>,
    /// Per-atom energy target (normalized).
    pub energy_per_atom: f64,
    /// `[natoms, 3]` force targets.
    pub forces: Tensor<f32>,
}

/// Artifact between materials pipeline stages.
pub struct MaterialsData {
    /// Parsed frames.
    pub frames: Vec<Frame>,
    /// Energy normalization (mean, std) over per-atom energies.
    pub energy_stats: (f64, f64),
    /// Encoded graphs.
    pub graphs: Vec<GraphSample>,
}

/// Cell-list neighbor search: all pairs within `cutoff`, O(N) for bounded
/// density.
pub fn neighbor_pairs(positions: &[[f64; 3]], cutoff: f64) -> Vec<(usize, usize, f64)> {
    if positions.is_empty() {
        return Vec::new();
    }
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in positions {
        for c in 0..3 {
            lo[c] = lo[c].min(p[c]);
            hi[c] = hi[c].max(p[c]);
        }
    }
    let cell = cutoff.max(1e-9);
    let dims: Vec<usize> = (0..3)
        .map(|c| (((hi[c] - lo[c]) / cell).floor() as usize + 1).max(1))
        .collect();
    let index_of = |p: &[f64; 3]| -> usize {
        let mut idx = 0;
        for c in 0..3 {
            let k = (((p[c] - lo[c]) / cell) as usize).min(dims[c] - 1);
            idx = idx * dims[c] + k;
        }
        idx
    };
    let ncells: usize = dims.iter().product();
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncells];
    for (i, p) in positions.iter().enumerate() {
        cells[index_of(p)].push(i);
    }
    let cell_coord = |mut idx: usize| -> [isize; 3] {
        let mut out = [0isize; 3];
        for c in (0..3).rev() {
            out[c] = (idx % dims[c]) as isize;
            idx /= dims[c];
        }
        out
    };
    let mut pairs = Vec::new();
    let c2 = cutoff * cutoff;
    for ci in 0..ncells {
        if cells[ci].is_empty() {
            continue;
        }
        let coord = cell_coord(ci);
        // Visit self + forward half of the 27-neighborhood to avoid
        // double-counting cells.
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let ncoord = [coord[0] + dx, coord[1] + dy, coord[2] + dz];
                    if ncoord
                        .iter()
                        .zip(&dims)
                        .any(|(&x, &d)| x < 0 || x >= d as isize)
                    {
                        continue;
                    }
                    let nidx = (ncoord[0] as usize * dims[1] + ncoord[1] as usize) * dims[2]
                        + ncoord[2] as usize;
                    if nidx < ci {
                        continue;
                    }
                    for &a in &cells[ci] {
                        for &b in &cells[nidx] {
                            if nidx == ci && b <= a {
                                continue;
                            }
                            let d2: f64 = (0..3)
                                .map(|c| {
                                    let d = positions[a][c] - positions[b][c];
                                    d * d
                                })
                                .sum();
                            if d2 <= c2 {
                                pairs.push((a, b, d2.sqrt()));
                            }
                        }
                    }
                }
            }
        }
    }
    pairs
}

/// Stage body: validate parsed frames (atom counts, energies present).
/// Shared by the plain and cached (`crate::cached`) builders.
pub(crate) fn parse_stage(
    data: MaterialsData,
    c: &mut StageCounters,
) -> Result<MaterialsData, String> {
    for (i, f) in data.frames.iter().enumerate() {
        if f.atoms.is_empty() {
            return Err(format!("frame {i}: no atoms"));
        }
        if f.energy().is_none() {
            return Err(format!("frame {i}: missing energy"));
        }
    }
    c.records = data.frames.len() as u64;
    c.bytes = data
        .frames
        .iter()
        .map(|f| (f.atoms.len() * 48) as u64)
        .sum();
    Ok(data)
}

/// Stage body: per-atom energy statistics (parallel Welford merge).
pub(crate) fn normalize_stage(
    ledger: &Ledger,
    mut data: MaterialsData,
    c: &mut StageCounters,
) -> Result<MaterialsData, String> {
    let w = data
        .frames
        .par_iter()
        .map(|f| {
            let mut w = Welford::new();
            w.push(f.energy().expect("validated") / f.atoms.len() as f64);
            w
        })
        .reduce(Welford::new, |a, b| a.merge(&b));
    let std = if w.std() < f64::EPSILON { 1.0 } else { w.std() };
    data.energy_stats = (w.mean(), std);
    ledger.record(
        "normalize",
        [
            ("target".to_string(), "energy_per_atom".to_string()),
            ("mean".to_string(), format!("{:.6}", w.mean())),
            ("std".to_string(), format!("{std:.6}")),
        ],
        vec![],
        vec![],
    );
    c.records = data.frames.len() as u64;
    Ok(data)
}

/// Stage body: cutoff-radius neighbor graphs (cell-list search), species
/// one-hot node features, distance edge features.
pub(crate) fn encode_stage(
    cfg: &MaterialsConfig,
    mut data: MaterialsData,
    c: &mut StageCounters,
) -> Result<MaterialsData, String> {
    let species_index = |el: &str| SPECIES.iter().position(|(s, _)| *s == el);
    let (e_mean, e_std) = data.energy_stats;
    let graphs: Result<Vec<GraphSample>, String> = data
        .frames
        .par_iter()
        .enumerate()
        .map(|(si, frame)| {
            let n = frame.atoms.len();
            let positions: Vec<[f64; 3]> = frame.atoms.iter().map(|a| a.position).collect();
            let pairs = neighbor_pairs(&positions, cfg.cutoff);
            // Node features: species one-hot.
            let mut nf = vec![0.0f32; n * SPECIES.len()];
            for (i, atom) in frame.atoms.iter().enumerate() {
                let k = species_index(&atom.element)
                    .ok_or_else(|| format!("unknown species {}", atom.element))?;
                nf[i * SPECIES.len() + k] = 1.0;
            }
            // Bidirectional edges.
            let mut edges = Vec::with_capacity(pairs.len() * 4);
            let mut lens = Vec::with_capacity(pairs.len() * 2);
            for &(a, b, r) in &pairs {
                edges.push(a as i64);
                edges.push(b as i64);
                lens.push(r as f32);
                edges.push(b as i64);
                edges.push(a as i64);
                lens.push(r as f32);
            }
            let forces: Vec<f32> = frame
                .atoms
                .iter()
                .flat_map(|a| a.force.unwrap_or([0.0; 3]))
                .map(|x| x as f32)
                .collect();
            let nedges = lens.len();
            Ok(GraphSample {
                structure_id: si,
                node_features: Tensor::from_vec(nf, &[n, SPECIES.len()])
                    .map_err(|e| format!("{e}"))?,
                edges: Tensor::from_vec(edges, &[nedges, 2]).map_err(|e| format!("{e}"))?,
                edge_lengths: Tensor::from_vec(lens, &[nedges]).map_err(|e| format!("{e}"))?,
                energy_per_atom: (frame.energy().expect("validated") / n as f64 - e_mean) / e_std,
                forces: Tensor::from_vec(forces, &[n, 3]).map_err(|e| format!("{e}"))?,
            })
        })
        .collect();
    data.graphs = graphs?;
    c.records = data.graphs.len() as u64;
    c.bytes = data
        .graphs
        .iter()
        .map(|g| {
            ((g.node_features.len() + g.edge_lengths.len() + g.forces.len()) * 4
                + g.edges.len() * 8) as u64
        })
        .sum();
    Ok(data)
}

/// Stage body: BP writer per split + a JSONL sidecar of sample metadata.
pub(crate) fn shard_stage(
    cfg: &MaterialsConfig,
    sink: &dyn StorageSink,
    ledger: &Ledger,
    prefix: &str,
    data: MaterialsData,
    c: &mut StageCounters,
) -> Result<MaterialsData, String> {
    let mut writers = [BpWriter::new(), BpWriter::new(), BpWriter::new()];
    let mut sidecars = [String::new(), String::new(), String::new()];
    let mut counts = [0usize; 3];
    for g in &data.graphs {
        let split = assign(
            &format!("structure-{}", g.structure_id),
            cfg.seed,
            cfg.fractions,
        )
        .expect("validated fractions");
        let idx = match split {
            Split::Train => 0,
            Split::Validation => 1,
            Split::Test => 2,
        };
        let mut energy = Tensor::<f64>::zeros(&[1]);
        energy.set(&[0], g.energy_per_atom).expect("index 0");
        writers[idx].append(&ProcessGroup {
            name: format!("structure-{}", g.structure_id),
            step: g.structure_id as u64,
            vars: vec![
                BpVar::from_tensor("node_features", &g.node_features),
                BpVar::from_tensor("edges", &g.edges),
                BpVar::from_tensor("edge_lengths", &g.edge_lengths),
                BpVar::from_tensor("energy_per_atom", &energy),
                BpVar::from_tensor("forces", &g.forces),
            ],
        });
        sidecars[idx].push_str(
            &Json::obj([
                ("structure", Json::from(g.structure_id)),
                ("atoms", Json::from(g.node_features.shape()[0])),
                ("edges", Json::from(g.edge_lengths.len())),
                ("energy_per_atom", Json::from(g.energy_per_atom)),
            ])
            .to_string_compact(),
        );
        sidecars[idx].push('\n');
        counts[idx] += 1;
    }
    let mut total = 0u64;
    for (idx, split) in [Split::Train, Split::Validation, Split::Test]
        .iter()
        .enumerate()
    {
        if counts[idx] == 0 {
            continue;
        }
        let writer = std::mem::take(&mut writers[idx]);
        // take() leaves a default BpWriter (no magic); only the
        // original, which has magic + groups, is finished here.
        let bytes = writer.finish();
        let name = format!("{prefix}/{}.bp", split.name());
        sink.write_file(&name, &bytes).map_err(|e| format!("{e}"))?;
        sink.write_file(
            &format!("{prefix}/{}.jsonl", split.name()),
            sidecars[idx].as_bytes(),
        )
        .map_err(|e| format!("{e}"))?;
        total += bytes.len() as u64;
        ledger.record(
            "shard",
            [
                ("split".to_string(), split.name().to_string()),
                ("format".to_string(), "bp+jsonl".to_string()),
            ],
            vec![],
            vec![Artifact::new(&name, &bytes)],
        );
    }
    c.records = data.graphs.len() as u64;
    c.bytes = total;
    Ok(data)
}

/// Build the materials pipeline.
pub fn build_pipeline(
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<MaterialsData> {
    let cfg_encode = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_shard = ledger.clone();
    let ledger_norm = ledger;

    Pipeline::builder("materials")
        .stage("parse", S::Ingest, parse_stage)
        .stage("normalize", S::Transform, move |data: MaterialsData, c| {
            normalize_stage(&ledger_norm, data, c)
        })
        .stage("encode", S::Structure, move |data: MaterialsData, c| {
            encode_stage(&cfg_encode, data, c)
        })
        .stage("shard", S::Shard, move |data: MaterialsData, c| {
            shard_stage(
                &cfg_shard,
                sink.as_ref(),
                &ledger_shard,
                "materials",
                data,
                c,
            )
        })
        .build()
}

/// One batch member's parsed input: generate and parse a member-seeded
/// raw XYZ in a staging [`MemSink`], the raw material for
/// [`run_streaming_batch`].
pub fn member_input(cfg: &MaterialsConfig, member: usize) -> Result<MaterialsData, DomainError> {
    let member_cfg = MaterialsConfig {
        seed: cfg.seed.wrapping_add(member as u64),
        ..cfg.clone()
    };
    let staging = MemSink::new();
    generate_raw(&member_cfg, &staging)?;
    let raw = staging.read_file("raw/structures.xyz")?;
    let frames = parse_xyz(&String::from_utf8_lossy(&raw))?;
    Ok(MaterialsData {
        frames,
        energy_stats: (0.0, 1.0),
        graphs: vec![],
    })
}

/// Build the materials pipeline over `(member, data)` items for batch
/// execution: same stage bodies as [`build_pipeline`], with each
/// member's BP + JSONL shards written under `materials/m<member>/`.
pub fn build_batch_pipeline(
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<(usize, MaterialsData)> {
    let cfg_encode = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_shard = ledger.clone();
    let ledger_norm = ledger;

    Pipeline::builder("materials-batch")
        .stage(
            "parse",
            S::Ingest,
            |(m, data): (usize, MaterialsData), c| parse_stage(data, c).map(|data| (m, data)),
        )
        .stage("normalize", S::Transform, move |(m, data), c| {
            normalize_stage(&ledger_norm, data, c).map(|data| (m, data))
        })
        .stage("encode", S::Structure, move |(m, data), c| {
            encode_stage(&cfg_encode, data, c).map(|data| (m, data))
        })
        .stage("shard", S::Shard, move |(m, data), c| {
            shard_stage(
                &cfg_shard,
                sink.as_ref(),
                &ledger_shard,
                &format!("materials/m{m}"),
                data,
                c,
            )
            .map(|data| (m, data))
        })
        .build()
}

/// Run a batch of materials datasets through the streaming
/// bounded-memory executor: `members` member-seeded structure sets flow
/// through the pipelined stage chain concurrently, each sharding under
/// its own `materials/m<member>/` prefix.
pub fn run_streaming_batch(
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
    exec: &ExecutorConfig,
) -> Result<DomainBatchRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.materials.run_batch");
    let _in_run = run_span.enter();
    let ledger = Arc::new(Ledger::new());
    let pipeline = build_batch_pipeline(cfg, sink.clone(), ledger.clone());
    let mut items = Vec::with_capacity(members);
    for m in 0..members {
        items.push((m, member_input(cfg, m)?));
    }
    let (_outputs, stages) = pipeline.run_batch_streaming(items, exec)?;
    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("materials/") && n.ends_with(".bp"))
        .collect();
    run_span.add_items(members as u64);
    Ok(DomainBatchRun {
        members,
        stages,
        ledger,
        shard_files,
    })
}

/// [`run_streaming_batch`] under a live monitor — same contract as
/// [`crate::climate::run_streaming_batch_monitored`]: executor time
/// series sampled at `mon.interval`, default
/// [`executor_health_spec`] rules, optional live progress lines, and
/// the [`MonitorReport`] returned next to the batch result.
pub fn run_streaming_batch_monitored(
    cfg: &MaterialsConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
    exec: &ExecutorConfig,
    mon: &MonitorOptions,
) -> Result<(DomainBatchRun, MonitorReport), DomainError> {
    let spec = executor_health_spec(exec, 4);
    crate::monitored_run("materials-batch", members as u64, mon, spec, || {
        run_streaming_batch(cfg, sink, members, exec)
    })
}

/// Run the complete materials archetype.
pub fn run(cfg: &MaterialsConfig, sink: Arc<dyn StorageSink>) -> Result<DomainRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.materials.run");
    let _in_run = run_span.enter();
    generate_raw(cfg, sink.as_ref())?;
    let raw = sink.read_file("raw/structures.xyz")?;
    let ledger = Arc::new(Ledger::new());
    ledger.record(
        "ingest",
        [("file".to_string(), "raw/structures.xyz".to_string())],
        vec![Artifact::new("raw/structures.xyz", &raw)],
        vec![],
    );
    let frames = parse_xyz(&String::from_utf8_lossy(&raw))?;
    let pipeline = build_pipeline(cfg, sink.clone(), ledger.clone());
    let run = pipeline.run(MaterialsData {
        frames,
        energy_stats: (0.0, 1.0),
        graphs: vec![],
    })?;

    let mut manifest = DatasetManifest::raw(
        "omat-synth",
        "materials",
        Modality::Graph,
        run.output.graphs.len() as u64,
    );
    manifest.schema = vec![
        VariableSpec {
            name: "node_features".into(),
            dtype: drai_tensor::DType::F32,
            unit: "1".into(),
            shape: vec![SPECIES.len()],
        },
        VariableSpec {
            name: "energy_per_atom".into(),
            dtype: drai_tensor::DType::F64,
            unit: "eV".into(),
            shape: vec![],
        },
    ];
    manifest.standard_format = true;
    manifest.ingest_validated = true;
    manifest.metadata_enriched = true;
    manifest.high_throughput_ingest = true;
    manifest.ingest_automated = true;
    manifest.aligned_initial = true;
    manifest.aligned_standardized = true;
    manifest.alignment_automated = true;
    manifest.normalized_initial = true;
    manifest.normalized_final = true;
    manifest.transform_audited = true;
    manifest.label_coverage = 1.0; // every structure carries energy+forces
    manifest.features_extracted = true;
    manifest.features_validated = true;
    manifest.split_assigned = true;
    manifest.sharded = true;

    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("materials/") && n.ends_with(".bp"))
        .collect();

    run_span.add_items(manifest.records);
    Ok(DomainRun {
        manifest,
        stages: run.stages,
        ledger,
        shard_files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_core::{ReadinessAssessor, ReadinessLevel};
    use drai_formats::bp::BpReader;
    use drai_io::sink::MemSink;

    fn small_cfg() -> MaterialsConfig {
        MaterialsConfig {
            structures: 16,
            cell_atoms: 2,
            seed: 5,
            ..MaterialsConfig::default()
        }
    }

    #[test]
    fn neighbor_pairs_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(11);
        let positions: Vec<[f64; 3]> = (0..80)
            .map(|_| {
                [
                    rng.gen::<f64>() * 10.0,
                    rng.gen::<f64>() * 10.0,
                    rng.gen::<f64>() * 10.0,
                ]
            })
            .collect();
        let cutoff = 2.5;
        let mut fast: Vec<(usize, usize)> = neighbor_pairs(&positions, cutoff)
            .into_iter()
            .map(|(a, b, _)| (a.min(b), a.max(b)))
            .collect();
        fast.sort_unstable();
        let mut brute = Vec::new();
        for a in 0..positions.len() {
            for b in a + 1..positions.len() {
                let d2: f64 = (0..3)
                    .map(|c| (positions[a][c] - positions[b][c]).powi(2))
                    .sum();
                if d2 <= cutoff * cutoff {
                    brute.push((a, b));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(fast, brute);
    }

    #[test]
    fn neighbor_pairs_edge_cases() {
        assert!(neighbor_pairs(&[], 1.0).is_empty());
        assert!(neighbor_pairs(&[[0.0; 3]], 1.0).is_empty());
        let two = neighbor_pairs(&[[0.0; 3], [0.5, 0.0, 0.0]], 1.0);
        assert_eq!(two.len(), 1);
        assert!((two[0].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn raw_xyz_is_parseable_with_physics() {
        let sink = MemSink::new();
        generate_raw(&small_cfg(), &sink).unwrap();
        let frames = parse_xyz(&String::from_utf8_lossy(
            &sink.read_file("raw/structures.xyz").unwrap(),
        ))
        .unwrap();
        assert_eq!(frames.len(), 16);
        for f in &frames {
            assert_eq!(f.atoms.len(), 8);
            assert!(f.energy().is_some());
            assert!(f.atoms.iter().all(|a| a.force.is_some()));
            // Newton's third law: forces sum to ~zero.
            let mut sum = [0.0; 3];
            for a in &f.atoms {
                for (s, f) in sum.iter_mut().zip(a.force.unwrap()) {
                    *s += f;
                }
            }
            // Forces pass through %.8f text formatting, so allow
            // rounding at the 1e-6 level.
            for c in 0..3 {
                assert!(sum[c].abs() < 1e-6, "net force {sum:?}");
            }
        }
    }

    #[test]
    fn end_to_end_graphs_in_bp() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        let run = run(&cfg, sink.clone()).unwrap();
        assert_eq!(
            run.stages.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![S::Ingest, S::Transform, S::Structure, S::Shard]
        );
        let assessment = ReadinessAssessor::new().assess(&run.manifest).unwrap();
        assert_eq!(assessment.overall, ReadinessLevel::FullyAiReady);

        // Read back the train BP file.
        let bytes = sink.read_file("materials/train.bp").unwrap();
        let reader = BpReader::open(&bytes).unwrap();
        assert!(reader.group_count() > 0);
        let g = reader.read_group(0).unwrap();
        let nodes: Tensor<f32> = g.var("node_features").unwrap().to_tensor().unwrap();
        assert_eq!(nodes.shape()[1], SPECIES.len());
        // Each node one-hot row sums to 1.
        for lane in nodes.lanes() {
            let s: f32 = lane.as_slice().iter().sum();
            assert_eq!(s, 1.0);
        }
        let edges: Tensor<i64> = g.var("edges").unwrap().to_tensor().unwrap();
        let lens: Tensor<f32> = g.var("edge_lengths").unwrap().to_tensor().unwrap();
        assert_eq!(edges.shape()[0], lens.len());
        assert!(lens
            .as_slice()
            .iter()
            .all(|&r| r > 0.0 && r <= cfg.cutoff as f32 + 1e-6));
        // Sidecar JSONL parses.
        let sidecar = sink.read_file("materials/train.jsonl").unwrap();
        for line in String::from_utf8_lossy(&sidecar).lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn energy_normalization_standardizes() {
        let cfg = MaterialsConfig {
            structures: 32,
            ..small_cfg()
        };
        // The ledger records the fitted statistics...
        let sink = Arc::new(MemSink::new());
        let run = run(&cfg, sink).unwrap();
        assert!(run.ledger.to_jsonl().contains("energy_per_atom"));
        // ...and the normalized targets themselves standardize.
        let sink2 = Arc::new(MemSink::new());
        generate_raw(&cfg, sink2.as_ref()).unwrap();
        let frames = parse_xyz(&String::from_utf8_lossy(
            &sink2.read_file("raw/structures.xyz").unwrap(),
        ))
        .unwrap();
        let pipeline = build_pipeline(&cfg, sink2, Arc::new(Ledger::new()));
        let out = pipeline
            .run(MaterialsData {
                frames,
                energy_stats: (0.0, 1.0),
                graphs: vec![],
            })
            .unwrap();
        let mut w = Welford::new();
        for g in &out.output.graphs {
            w.push(g.energy_per_atom);
        }
        assert!(w.mean().abs() < 1e-9, "mean {}", w.mean());
        assert!((w.std() - 1.0).abs() < 1e-9, "std {}", w.std());
    }

    #[test]
    fn species_imbalance_reproduced() {
        let cfg = MaterialsConfig {
            structures: 64,
            cell_atoms: 3,
            ..small_cfg()
        };
        let sink = MemSink::new();
        generate_raw(&cfg, &sink).unwrap();
        let frames = parse_xyz(&String::from_utf8_lossy(
            &sink.read_file("raw/structures.xyz").unwrap(),
        ))
        .unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for f in &frames {
            for (el, n) in f.composition() {
                *counts.entry(el.to_string()).or_insert(0usize) += n;
            }
        }
        // Majority species dominates minority by roughly the configured
        // abundance ratio (0.4 vs 0.05 → ~8x).
        let si = counts["Si"] as f64;
        let ti = *counts.get("Ti").unwrap_or(&1) as f64;
        assert!(si / ti > 3.0, "Si/Ti = {}", si / ti);
    }

    #[test]
    fn streaming_batch_shards_each_member_under_its_own_prefix() {
        let cfg = small_cfg();
        let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let run = run_streaming_batch(&cfg, sink.clone(), 3, &ExecutorConfig::default()).unwrap();
        assert_eq!(run.members, 3);
        assert_eq!(run.stages.len(), 4, "parse/normalize/encode/shard");
        for m in 0..3 {
            let prefix = format!("materials/m{m}/");
            assert!(
                run.shard_files.iter().any(|n| n.starts_with(&prefix)),
                "no BP shards under {prefix}: {:?}",
                run.shard_files
            );
            // The sidecar rides along under the same member prefix.
            assert!(
                sink.list()
                    .unwrap()
                    .iter()
                    .any(|n| n.starts_with(&prefix) && n.ends_with(".jsonl")),
                "no JSONL sidecar under {prefix}"
            );
        }
        // Member seeds differ, so the raw structure sets differ.
        let a = member_input(&cfg, 0).unwrap();
        let b = member_input(&cfg, 1).unwrap();
        assert_ne!(a.frames[0].atoms[0].position, b.frames[0].atoms[0].position);
    }

    #[test]
    fn streaming_batch_monitored_records_executor_series() {
        use drai_telemetry::{Registry, TraceContext};
        let reg = Registry::new();
        let _scope = TraceContext::root(&reg).attach();
        let cfg = small_cfg();
        let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let mon = MonitorOptions {
            interval: std::time::Duration::from_millis(1),
            ..MonitorOptions::default()
        };
        let (run, report) =
            run_streaming_batch_monitored(&cfg, sink, 3, &ExecutorConfig::default(), &mon).unwrap();
        assert_eq!(run.members, 3);
        // The closing sample guarantees the executor series exist even
        // when the run beats the first interval.
        assert!(report.ticks >= 1);
        let done = report
            .series_named("executor.items_completed")
            .expect("live progress counter sampled");
        assert_eq!(done.latest().unwrap().value, 3.0);
        assert!(report.series_named("executor.queue_depth").is_some());
        // Artifact round-trips through the JSONL schema.
        let text = report.to_jsonl();
        let parsed = drai_telemetry::monitor::MonitorReport::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
    }
}
