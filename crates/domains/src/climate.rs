//! Climate archetype: `download → regrid → normalize → shard`
//! (Table 1 row 1; §3.1; the ClimaX preprocessing pattern).
//!
//! Raw data is synthesized as CMIP-like multivariate global fields with
//! realistic spatial correlation (spectral synthesis: red-noise spherical
//! harmonics proxy on the lat-lon grid plus a meridional climatology), and
//! written as genuine NetCDF-3 files. The pipeline then:
//!
//! 1. **ingest** — parse NetCDF, validate schema and units;
//! 2. **regrid** — bilinear (state variables) or conservative (flux
//!    variables) remap onto the target grid;
//! 3. **normalize** — per-variable z-score with statistics fitted across
//!    the whole record (reduced in parallel across timesteps);
//! 4. **shard** — split by timestep key, pack `[vars, lat, lon]` f32
//!    tensors into NPY members of NPZ (STORE ZIP) shards.

use crate::{DomainBatchRun, DomainError, DomainRun, MonitorOptions};
use drai_core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai_core::executor::{executor_health_spec, ExecutorConfig, StreamingBatchExt};
use drai_core::pipeline::{Pipeline, StageCounters};
use drai_core::readiness::ProcessingStage as S;
use drai_formats::netcdf::{NcAttr, NcDim, NcFile, NcValues, NcVar};
use drai_formats::npy::write_npy;
use drai_formats::zip::{write_zip, ZipEntry};
use drai_io::parallel::prefetch_map;
use drai_io::shard::{ShardSpec, ShardWriter};
use drai_io::sink::StorageSink;
use drai_provenance::{Artifact, Ledger};
use drai_telemetry::monitor::MonitorReport;
use drai_tensor::stats::Welford;
use drai_tensor::{LatLonGrid, Tensor};
use drai_transform::normalize::{Method, Normalizer};
use drai_transform::regrid;
use drai_transform::split::{assign, Fractions, Split};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Variables in the synthetic CMIP-like set (ORBIT/ClimaX-style subset).
pub const VARIABLES: [(&str, &str, bool); 4] = [
    // (name, unit, flux-like → conservative regridding)
    ("tas", "K", false),
    ("psl", "Pa", false),
    ("uas", "m", false), // wind component; unit simplified to its base
    ("pr", "1", true),   // precipitation-like flux, conservative
];

/// Generator + pipeline configuration.
#[derive(Debug, Clone)]
pub struct ClimateConfig {
    /// Source grid (e.g. 96×144 for a CMIP-like model grid).
    pub src_grid: LatLonGrid,
    /// Target training grid (e.g. 64×128, ClimaX's 5.625°-style grid).
    pub dst_grid: LatLonGrid,
    /// Number of timesteps to synthesize.
    pub timesteps: usize,
    /// RNG seed (recorded in provenance).
    pub seed: u64,
    /// Target shard payload size in bytes.
    pub shard_bytes: usize,
    /// Split fractions.
    pub fractions: Fractions,
}

impl Default for ClimateConfig {
    fn default() -> Self {
        ClimateConfig {
            src_grid: LatLonGrid::global(48, 96),
            dst_grid: LatLonGrid::global(32, 64),
            timesteps: 24,
            seed: 20_250_704,
            shard_bytes: 4 << 20,
            fractions: Fractions::standard(),
        }
    }
}

/// Synthesize one variable's field stack `[timesteps, nlat, nlon]`.
///
/// Structure = meridional climatology + travelling planetary-scale waves +
/// weather noise, so fields are spatially smooth (regridding has something
/// to preserve) and temporally coherent.
fn synth_variable(cfg: &ClimateConfig, var_index: usize, rng: &mut SmallRng) -> Vec<f64> {
    let (nlat, nlon) = (cfg.src_grid.nlat(), cfg.src_grid.nlon());
    let base = match var_index {
        0 => 288.0,     // tas ~ K
        1 => 101_325.0, // psl ~ Pa
        2 => 0.0,       // uas ~ m/s
        _ => 3.0e-5,    // pr ~ kg m-2 s-1 scale
    };
    let amp = match var_index {
        0 => 40.0,
        1 => 2_000.0,
        2 => 15.0,
        _ => 2.5e-5,
    };
    // Random wave phases per timestep-coherent mode.
    let phases: Vec<(f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.5..2.5),  // zonal wavenumber scale
                rng.gen_range(0.02..0.2), // phase speed
            )
        })
        .collect();
    let mut out = Vec::with_capacity(cfg.timesteps * nlat * nlon);
    for t in 0..cfg.timesteps {
        for i in 0..nlat {
            let lat = cfg.src_grid.lat_center(i).to_radians();
            // Meridional structure: warm equator / cold poles (or the
            // analogue for the variable).
            let climo = base + amp * 0.5 * lat.cos();
            for j in 0..nlon {
                let lon = cfg.src_grid.lon_center(j).to_radians();
                let mut v = climo;
                for (k, &(phase, wn, speed)) in phases.iter().enumerate() {
                    let kf = (k + 1) as f64;
                    v += amp * 0.1 / kf
                        * ((wn * kf * lon + phase - speed * t as f64 * kf).sin()
                            * (kf * lat).cos());
                }
                v += amp * 0.02 * (rng.gen::<f64>() - 0.5);
                // Flux-like variables are non-negative.
                if VARIABLES[var_index].2 {
                    v = v.max(0.0);
                }
                out.push(v);
            }
        }
    }
    out
}

/// Generate the raw NetCDF files (one per variable) into `sink` under
/// `raw/`. Returns the blob names. This is the "download" stand-in.
pub fn generate_raw(
    cfg: &ClimateConfig,
    sink: &dyn StorageSink,
) -> Result<Vec<String>, DomainError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let (nlat, nlon) = (cfg.src_grid.nlat(), cfg.src_grid.nlon());
    let mut names = Vec::new();
    for (vi, (name, unit, _)) in VARIABLES.iter().enumerate() {
        let values = synth_variable(cfg, vi, &mut rng);
        let file = NcFile {
            dims: vec![
                NcDim {
                    name: "time".into(),
                    size: cfg.timesteps,
                    is_record: true,
                },
                NcDim {
                    name: "lat".into(),
                    size: nlat,
                    is_record: false,
                },
                NcDim {
                    name: "lon".into(),
                    size: nlon,
                    is_record: false,
                },
            ],
            global_attrs: vec![NcAttr {
                name: "source".into(),
                values: NcValues::Char("drai synthetic CMIP-like generator".into()),
            }],
            vars: vec![
                NcVar {
                    name: "lat".into(),
                    dims: vec![1],
                    attrs: vec![],
                    data: NcValues::Double((0..nlat).map(|i| cfg.src_grid.lat_center(i)).collect()),
                },
                NcVar {
                    name: "lon".into(),
                    dims: vec![2],
                    attrs: vec![],
                    data: NcValues::Double((0..nlon).map(|j| cfg.src_grid.lon_center(j)).collect()),
                },
                NcVar {
                    name: (*name).into(),
                    dims: vec![0, 1, 2],
                    attrs: vec![NcAttr {
                        name: "units".into(),
                        values: NcValues::Char((*unit).into()),
                    }],
                    data: NcValues::Double(values),
                },
            ],
        };
        let blob = format!("raw/{name}.nc");
        sink.write_file(&blob, &file.to_bytes()?)?;
        names.push(blob);
    }
    Ok(names)
}

/// Generate the same raw fields as GRIB-style packed messages (the
/// paper's "encoded Gridded Binary" ingest path) under `raw-grib/`.
/// One file per variable, one message per timestep.
pub fn generate_raw_grib(
    cfg: &ClimateConfig,
    sink: &dyn StorageSink,
    packing: drai_formats::grib::Packing,
) -> Result<Vec<String>, DomainError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let (nlat, nlon) = (cfg.src_grid.nlat(), cfg.src_grid.nlon());
    let mut names = Vec::new();
    for (vi, (name, _unit, _)) in VARIABLES.iter().enumerate() {
        let values = synth_variable(cfg, vi, &mut rng);
        let mut stream = Vec::new();
        for t in 0..cfg.timesteps {
            let msg = drai_formats::grib::GribMessage {
                parameter: (*name).to_string(),
                nlat: nlat as u32,
                nlon: nlon as u32,
                time_hours: (t * 6) as u32,
                values: values[t * nlat * nlon..(t + 1) * nlat * nlon].to_vec(),
            };
            stream.extend(drai_formats::grib::encode_message(&msg, packing)?);
        }
        let blob = format!("raw-grib/{name}.grib");
        sink.write_file(&blob, &stream)?;
        names.push(blob);
    }
    Ok(names)
}

/// Ingest GRIB-packed raw files back into per-variable field stacks
/// (the unpack cost the climate ingest stage pays for encoded formats).
pub fn ingest_grib(
    cfg: &ClimateConfig,
    sink: &dyn StorageSink,
) -> Result<Vec<Vec<f64>>, DomainError> {
    let mut fields = Vec::with_capacity(VARIABLES.len());
    for (name, _unit, _) in VARIABLES.iter() {
        let bytes = sink.read_file(&format!("raw-grib/{name}.grib"))?;
        let messages = drai_formats::grib::decode_stream(&bytes)?;
        if messages.len() != cfg.timesteps {
            return Err(DomainError::Config(format!(
                "{name}: {} GRIB messages for {} timesteps",
                messages.len(),
                cfg.timesteps
            )));
        }
        let mut stack = Vec::with_capacity(cfg.timesteps * cfg.src_grid.ncells());
        for msg in messages {
            stack.extend(msg.values);
        }
        fields.push(stack);
    }
    Ok(fields)
}

/// The artifact that flows between climate pipeline stages.
#[derive(Clone)]
pub struct ClimateData {
    /// Per-variable field stacks, each `timesteps × nlat × nlon` (f64
    /// until normalization, then cast to f32 at structuring time).
    pub fields: Vec<Vec<f64>>,
    /// Grid the fields currently live on.
    pub grid: LatLonGrid,
    /// Timesteps.
    pub timesteps: usize,
    /// Fitted normalizers (after the normalize stage).
    pub normalizers: Vec<Normalizer>,
}

/// Stage body: schema/shape validation — every variable complete on the
/// grid. Shared by the plain and cached (`crate::cached`) builders.
pub(crate) fn validate_stage(
    data: ClimateData,
    c: &mut StageCounters,
) -> Result<ClimateData, String> {
    let expect = data.timesteps * data.grid.ncells();
    for (vi, f) in data.fields.iter().enumerate() {
        if f.len() != expect {
            return Err(format!(
                "variable {vi}: {} values, expected {expect}",
                f.len()
            ));
        }
    }
    c.records = data.timesteps as u64;
    c.bytes = (data.fields.len() * expect * 8) as u64;
    Ok(data)
}

/// Stage body: bilinear/conservative remap onto the target grid.
pub(crate) fn regrid_stage(
    cfg: &ClimateConfig,
    ledger: &Ledger,
    mut data: ClimateData,
    c: &mut StageCounters,
) -> Result<ClimateData, String> {
    let src = data.grid.clone();
    let dst = cfg.dst_grid.clone();
    let ncells_src = src.ncells();
    let regridded: Result<Vec<Vec<f64>>, String> = data
        .fields
        .par_iter()
        .enumerate()
        .map(|(vi, stack)| {
            let conservative = VARIABLES[vi].2;
            let mut out = Vec::with_capacity(data.timesteps * dst.ncells());
            for t in 0..data.timesteps {
                let field = &stack[t * ncells_src..(t + 1) * ncells_src];
                let r = if conservative {
                    regrid::conservative(&src, field, &dst)
                } else {
                    regrid::bilinear(&src, field, &dst)
                }
                .map_err(|e| format!("{e}"))?;
                out.extend(r);
            }
            Ok(out)
        })
        .collect();
    data.fields = regridded?;
    ledger.record(
        "regrid",
        [
            ("src".to_string(), format!("{}x{}", src.nlat(), src.nlon())),
            ("dst".to_string(), format!("{}x{}", dst.nlat(), dst.nlon())),
        ],
        vec![],
        vec![],
    );
    data.grid = dst;
    c.records = data.timesteps as u64;
    c.bytes = (data.fields.len() * data.timesteps * data.grid.ncells() * 8) as u64;
    Ok(data)
}

/// Stage body: per-variable z-score via parallel Welford reduction.
pub(crate) fn normalize_stage(
    ledger: &Ledger,
    mut data: ClimateData,
    c: &mut StageCounters,
) -> Result<ClimateData, String> {
    let normalizers: Result<Vec<Normalizer>, String> = data
        .fields
        .par_iter()
        .map(|stack| {
            let w = stack
                .par_chunks(64 * 1024)
                .map(|chunk| {
                    let mut w = Welford::new();
                    w.extend(chunk);
                    w
                })
                .reduce(Welford::new, |a, b| a.merge(&b));
            Normalizer::from_welford(Method::ZScore, &w).map_err(|e| format!("{e}"))
        })
        .collect();
    let normalizers = normalizers?;
    data.fields
        .par_iter_mut()
        .zip(normalizers.par_iter())
        .for_each(|(stack, n)| n.apply_slice(stack));
    for (vi, n) in normalizers.iter().enumerate() {
        ledger.record(
            "normalize",
            [
                ("variable".to_string(), VARIABLES[vi].0.to_string()),
                ("method".to_string(), "zscore".to_string()),
                ("mean".to_string(), format!("{:.6}", n.offset)),
                ("std".to_string(), format!("{:.6}", n.scale)),
            ],
            vec![],
            vec![],
        );
    }
    data.normalizers = normalizers;
    c.records = data.timesteps as u64;
    c.bytes = (data.fields.len() * data.timesteps * data.grid.ncells() * 8) as u64;
    Ok(data)
}

/// Stage body: split by timestep key and pack NPZ shards — one NPZ
/// record per timestep with `{var}.npy` members of `[lat,lon]` f32 (the
/// ClimaX layout).
pub(crate) fn shard_stage(
    cfg: &ClimateConfig,
    sink: &dyn StorageSink,
    ledger: &Ledger,
    prefix: &str,
    data: ClimateData,
    c: &mut StageCounters,
) -> Result<ClimateData, String> {
    let ncells = data.grid.ncells();
    let shape = data.grid.shape();
    let mut split_records: [Vec<Vec<u8>>; 3] = [vec![], vec![], vec![]];
    let records: Vec<(Split, Vec<u8>)> = (0..data.timesteps)
        .into_par_iter()
        .map(|t| {
            let entries: Vec<ZipEntry> = data
                .fields
                .iter()
                .enumerate()
                .map(|(vi, stack)| {
                    let field: Vec<f32> = stack[t * ncells..(t + 1) * ncells]
                        .iter()
                        .map(|&x| x as f32)
                        .collect();
                    let tensor =
                        Tensor::from_vec(field, &[shape[0], shape[1]]).expect("grid shape");
                    ZipEntry {
                        name: format!("{}.npy", VARIABLES[vi].0),
                        data: write_npy(&tensor),
                    }
                })
                .collect();
            let split =
                assign(&format!("t{t:06}"), cfg.seed, cfg.fractions).expect("validated fractions");
            (
                split,
                write_zip(&entries).expect("shards are far below the 4 GiB zip limit"),
            )
        })
        .collect();
    for (split, rec) in records {
        let idx = match split {
            Split::Train => 0,
            Split::Validation => 1,
            Split::Test => 2,
        };
        split_records[idx].push(rec);
    }
    let mut total_bytes = 0u64;
    for (idx, split) in [Split::Train, Split::Validation, Split::Test]
        .iter()
        .enumerate()
    {
        if split_records[idx].is_empty() {
            continue;
        }
        let spec = ShardSpec::new(format!("{prefix}/{}", split.name()), cfg.shard_bytes);
        let manifest = ShardWriter::new(spec, sink)
            .write_all(&split_records[idx])
            .map_err(|e| format!("{e}"))?;
        total_bytes += manifest.payload_bytes;
        for shard in &manifest.shards {
            let content = sink.read_file(&shard.name).map_err(|e| format!("{e}"))?;
            ledger.record(
                "shard",
                [
                    ("split".to_string(), split.name().to_string()),
                    ("format".to_string(), "npz".to_string()),
                ],
                vec![],
                vec![Artifact::new(&shard.name, &content)],
            );
        }
    }
    c.records = data.timesteps as u64;
    c.bytes = total_bytes;
    Ok(data)
}

/// Build the four-stage climate pipeline (stateless; shares the sink and
/// ledger through `Arc`s).
pub fn build_pipeline(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<ClimateData> {
    let cfg_regrid = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_regrid = ledger.clone();
    let ledger_norm = ledger.clone();
    let ledger_shard = ledger;
    let sink_shard = sink;

    Pipeline::builder("climate")
        .stage("validate", S::Ingest, validate_stage)
        .stage("regrid", S::Preprocess, move |data: ClimateData, c| {
            regrid_stage(&cfg_regrid, &ledger_regrid, data, c)
        })
        .stage("normalize", S::Transform, move |data: ClimateData, c| {
            normalize_stage(&ledger_norm, data, c)
        })
        .stage("shard", S::Shard, move |data: ClimateData, c| {
            shard_stage(
                &cfg_shard,
                sink_shard.as_ref(),
                &ledger_shard,
                "climate",
                data,
                c,
            )
        })
        .build()
}

/// One ensemble member's input fields, synthesized directly (no NetCDF
/// round trip) with the member index folded into the seed — the raw
/// material for [`run_streaming_batch`] and the streaming benches.
pub fn member_input(cfg: &ClimateConfig, member: usize) -> ClimateData {
    let member_cfg = ClimateConfig {
        seed: cfg.seed.wrapping_add(member as u64),
        ..cfg.clone()
    };
    let mut rng = SmallRng::seed_from_u64(member_cfg.seed);
    let fields = (0..VARIABLES.len())
        .map(|vi| synth_variable(&member_cfg, vi, &mut rng))
        .collect();
    ClimateData {
        fields,
        grid: cfg.src_grid.clone(),
        timesteps: cfg.timesteps,
        normalizers: vec![],
    }
}

/// Build the climate pipeline over `(member, data)` items, for batch
/// execution of a whole ensemble: the same stage bodies as
/// [`build_pipeline`], with each member's shards written under
/// `climate/m<member>/` so members never collide.
pub fn build_batch_pipeline(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
) -> Pipeline<(usize, ClimateData)> {
    batch_pipeline_with_lag(cfg, sink, ledger, None)
}

/// [`build_batch_pipeline`] with `delay` of artificial busy-work
/// injected into the named stage (`validate`, `regrid`, `normalize`,
/// or `shard`) on every item — a fault hook for exercising the monitor
/// diagnosis: the slowed stage must surface as the bottleneck.
pub fn build_batch_pipeline_slowed(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
    slow_stage: &str,
    delay: Duration,
) -> Pipeline<(usize, ClimateData)> {
    batch_pipeline_with_lag(cfg, sink, ledger, Some((slow_stage.to_string(), delay)))
}

fn batch_pipeline_with_lag(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    ledger: Arc<Ledger>,
    lag: Option<(String, Duration)>,
) -> Pipeline<(usize, ClimateData)> {
    let cfg_regrid = cfg.clone();
    let cfg_shard = cfg.clone();
    let ledger_regrid = ledger.clone();
    let ledger_norm = ledger.clone();
    let ledger_shard = ledger;
    let sink_shard = sink;
    let stage_lag = |stage: &str| -> Option<Duration> {
        lag.as_ref()
            .filter(|(name, _)| name == stage)
            .map(|(_, d)| *d)
    };
    let lag_validate = stage_lag("validate");
    let lag_regrid = stage_lag("regrid");
    let lag_normalize = stage_lag("normalize");
    let lag_shard = stage_lag("shard");

    Pipeline::builder("climate-batch")
        .stage(
            "validate",
            S::Ingest,
            move |(m, data): (usize, ClimateData), c| {
                if let Some(d) = lag_validate {
                    std::thread::sleep(d);
                }
                validate_stage(data, c).map(|data| (m, data))
            },
        )
        .stage("regrid", S::Preprocess, move |(m, data), c| {
            if let Some(d) = lag_regrid {
                std::thread::sleep(d);
            }
            regrid_stage(&cfg_regrid, &ledger_regrid, data, c).map(|data| (m, data))
        })
        .stage("normalize", S::Transform, move |(m, data), c| {
            if let Some(d) = lag_normalize {
                std::thread::sleep(d);
            }
            normalize_stage(&ledger_norm, data, c).map(|data| (m, data))
        })
        .stage("shard", S::Shard, move |(m, data), c| {
            if let Some(d) = lag_shard {
                std::thread::sleep(d);
            }
            shard_stage(
                &cfg_shard,
                sink_shard.as_ref(),
                &ledger_shard,
                &format!("climate/m{m}"),
                data,
                c,
            )
            .map(|data| (m, data))
        })
        .build()
}

/// Run a whole climate ensemble through the streaming bounded-memory
/// executor: `members` synthetic members (seeds `seed..seed+members`)
/// flow through the pipelined stage chain concurrently, each sharding
/// under its own `climate/m<member>/` prefix.
pub fn run_streaming_batch(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
    exec: &ExecutorConfig,
) -> Result<DomainBatchRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.climate.run_batch");
    let _in_run = run_span.enter();
    let ledger = Arc::new(Ledger::new());
    let pipeline = build_batch_pipeline(cfg, sink.clone(), ledger.clone());
    let items: Vec<(usize, ClimateData)> =
        (0..members).map(|m| (m, member_input(cfg, m))).collect();
    let (_outputs, stages) = pipeline.run_batch_streaming(items, exec)?;
    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("climate/") && n.ends_with(".shard"))
        .collect();
    run_span.add_items(members as u64);
    Ok(DomainBatchRun {
        members,
        stages,
        ledger,
        shard_files,
    })
}

/// [`run_streaming_batch`] under a live monitor: a background sampler
/// records executor time series at `mon.interval`, evaluates the
/// default [`executor_health_spec`] rules, optionally prints live
/// progress lines, and returns the [`MonitorReport`] (series, health
/// events, backpressure diagnosis) next to the batch result.
pub fn run_streaming_batch_monitored(
    cfg: &ClimateConfig,
    sink: Arc<dyn StorageSink>,
    members: usize,
    exec: &ExecutorConfig,
    mon: &MonitorOptions,
) -> Result<(DomainBatchRun, MonitorReport), DomainError> {
    let spec = executor_health_spec(exec, 4);
    crate::monitored_run("climate-batch", members as u64, mon, spec, || {
        run_streaming_batch(cfg, sink, members, exec)
    })
}

/// Run the complete climate archetype: generate raw NetCDF, execute the
/// pipeline, and return the graded manifest.
/// One prefetched raw variable: (blob name, raw bytes, decoded field).
type ParsedVar = Result<(String, Vec<u8>, Vec<f64>), DomainError>;

pub fn run(cfg: &ClimateConfig, sink: Arc<dyn StorageSink>) -> Result<DomainRun, DomainError> {
    let registry = drai_telemetry::Registry::current();
    let run_span = registry.span("domain.climate.run");
    let _in_run = run_span.enter();
    // "Download" (synthesize) + parse — the ingest half happens outside
    // the timed pipeline stages only as far as synthesis; parsing is the
    // ingest stage's work, done here so stage 1 receives parsed fields.
    let raw_names = generate_raw(cfg, sink.as_ref())?;
    let ledger = Arc::new(Ledger::new());
    // Read + parse the raw files through the prefetch pool: the
    // variables decode concurrently, and worker telemetry parents under
    // the ingest span via the captured trace context. Results come back
    // in input order, so the ledger sees ingests in the same order as
    // the sequential loop this replaces.
    let fields = {
        let ingest_span = registry.span("domain.climate.ingest");
        let _in_ingest = ingest_span.enter();
        let parse_sink = sink.clone();
        let parsed: Vec<ParsedVar> = prefetch_map(
            raw_names.iter().cloned().enumerate().collect(),
            2,
            2,
            move |(name_idx, blob): (usize, String)| {
                let bytes = parse_sink.read_file(&blob)?;
                let nc = NcFile::from_bytes(&bytes)?;
                let var = nc
                    .var(VARIABLES[name_idx].0)
                    .ok_or_else(|| DomainError::Config(format!("missing variable in {blob}")))?;
                Ok((blob, bytes, var.data.to_f64_vec()))
            },
        )
        .collect();
        let mut fields = Vec::with_capacity(parsed.len());
        for item in parsed {
            let (blob, bytes, data) = item?;
            ingest_span.add_bytes(bytes.len() as u64);
            ledger.record(
                "ingest",
                [("file".to_string(), blob.clone())],
                vec![Artifact::new(&blob, &bytes)],
                vec![],
            );
            fields.push(data);
        }
        ingest_span.add_items(fields.len() as u64);
        fields
    };

    let pipeline = build_pipeline(cfg, sink.clone(), ledger.clone());
    let input = ClimateData {
        fields,
        grid: cfg.src_grid.clone(),
        timesteps: cfg.timesteps,
        normalizers: vec![],
    };
    let run = pipeline.run(input)?;

    // Build the evidence manifest.
    let mut manifest = DatasetManifest::raw(
        "cmip-synth",
        "climate",
        Modality::Grid,
        cfg.timesteps as u64,
    );
    manifest.schema = VARIABLES
        .iter()
        .map(|(name, unit, _)| VariableSpec {
            name: (*name).to_string(),
            dtype: drai_tensor::DType::F32,
            unit: (*unit).to_string(),
            shape: vec![cfg.dst_grid.nlat(), cfg.dst_grid.nlon()],
        })
        .collect();
    manifest.standard_format = true;
    manifest.ingest_validated = true;
    manifest.metadata_enriched = true;
    manifest.high_throughput_ingest = true;
    manifest.ingest_automated = true;
    manifest.aligned_initial = true;
    manifest.aligned_standardized = true;
    manifest.alignment_automated = true;
    manifest.normalized_initial = true;
    manifest.normalized_final = true;
    manifest.transform_audited = true;
    manifest.label_coverage = 1.0; // self-supervised forecasting: next-step targets
    manifest.features_extracted = true;
    manifest.features_validated = true;
    manifest.split_assigned = true;
    manifest.sharded = true;

    let shard_files = sink
        .list()?
        .into_iter()
        .filter(|n| n.starts_with("climate/") && n.ends_with(".shard"))
        .collect();

    run_span.add_items(manifest.records);
    Ok(DomainRun {
        manifest,
        stages: run.stages,
        ledger,
        shard_files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_core::{ReadinessAssessor, ReadinessLevel};
    use drai_formats::npy::read_npy;
    use drai_formats::zip::read_zip;
    use drai_io::shard::ShardReader;
    use drai_io::sink::MemSink;

    fn small_cfg() -> ClimateConfig {
        ClimateConfig {
            src_grid: LatLonGrid::global(12, 24),
            dst_grid: LatLonGrid::global(8, 16),
            timesteps: 10,
            seed: 7,
            shard_bytes: 64 * 1024,
            ..ClimateConfig::default()
        }
    }

    #[test]
    fn raw_files_are_valid_netcdf() {
        let sink = MemSink::new();
        let names = generate_raw(&small_cfg(), &sink).unwrap();
        assert_eq!(names.len(), 4);
        for name in &names {
            let nc = NcFile::from_bytes(&sink.read_file(name).unwrap()).unwrap();
            assert_eq!(nc.num_records(), 10);
            assert!(nc.var("lat").is_some());
        }
    }

    #[test]
    fn end_to_end_produces_ai_ready_dataset() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        let run = run(&cfg, sink.clone()).unwrap();

        // Stage sequence covers the canonical pattern.
        let kinds: Vec<S> = run.stages.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![S::Ingest, S::Preprocess, S::Transform, S::Shard]
        );

        // The assessor grades the output fully AI-ready.
        let assessment = ReadinessAssessor::new().assess(&run.manifest).unwrap();
        assert_eq!(assessment.overall, ReadinessLevel::FullyAiReady);

        // Shards exist and the provenance ledger recorded the chain.
        assert!(!run.shard_files.is_empty());
        assert!(run.ledger.len() >= 4 + 1 + 4); // ingest×4, regrid, normalize×4, shards

        // Read a train shard back: NPZ members decode as [8,16] f32 with
        // ~zero mean after normalization.
        let reader = ShardReader::open("climate/train", sink.as_ref()).unwrap();
        let records = reader.read_all().unwrap();
        assert!(!records.is_empty());
        let entries = read_zip(&records[0]).unwrap();
        assert_eq!(entries.len(), 4);
        let tas = entries.iter().find(|e| e.name == "tas.npy").unwrap();
        let t = read_npy::<f32>(&tas.data).unwrap();
        assert_eq!(t.shape(), &[8, 16]);
        let mean = t.mean().unwrap();
        assert!(mean.abs() < 3.0, "normalized field mean {mean}");
    }

    #[test]
    fn normalization_statistics_zero_mean_unit_std() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        generate_raw(&cfg, sink.as_ref()).unwrap();
        let ledger = Arc::new(Ledger::new());
        let pipeline = build_pipeline(&cfg, sink.clone(), ledger);
        // Feed synthetic fields directly.
        let mut rng = SmallRng::seed_from_u64(1);
        let fields: Vec<Vec<f64>> = (0..4)
            .map(|vi| synth_variable(&cfg, vi, &mut rng))
            .collect();
        let out = pipeline
            .run(ClimateData {
                fields,
                grid: cfg.src_grid.clone(),
                timesteps: cfg.timesteps,
                normalizers: vec![],
            })
            .unwrap();
        for stack in &out.output.fields {
            let mut w = Welford::new();
            w.extend(stack);
            assert!(w.mean().abs() < 1e-9, "mean {}", w.mean());
            assert!((w.std() - 1.0).abs() < 1e-9, "std {}", w.std());
        }
        assert_eq!(out.output.normalizers.len(), 4);
    }

    #[test]
    fn validate_stage_rejects_short_fields() {
        let cfg = small_cfg();
        let sink = Arc::new(MemSink::new());
        let pipeline = build_pipeline(&cfg, sink, Arc::new(Ledger::new()));
        let bad = ClimateData {
            fields: vec![vec![0.0; 5]],
            grid: cfg.src_grid.clone(),
            timesteps: cfg.timesteps,
            normalizers: vec![],
        };
        assert!(pipeline.run(bad).is_err());
    }

    #[test]
    fn grib_ingest_matches_netcdf_within_packing_error() {
        let cfg = small_cfg();
        let sink = MemSink::new();
        // NetCDF path (exact doubles).
        generate_raw(&cfg, &sink).unwrap();
        // GRIB path (16-bit simple packing).
        let packing = drai_formats::grib::Packing { bits: 16 };
        generate_raw_grib(&cfg, &sink, packing).unwrap();
        let grib_fields = ingest_grib(&cfg, &sink).unwrap();
        for (vi, (name, _, _)) in VARIABLES.iter().enumerate() {
            let nc =
                NcFile::from_bytes(&sink.read_file(&format!("raw/{name}.nc")).unwrap()).unwrap();
            let exact = nc.var(name).unwrap().data.to_f64_vec();
            let packed = &grib_fields[vi];
            assert_eq!(exact.len(), packed.len());
            let span = exact.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - exact.iter().cloned().fold(f64::INFINITY, f64::min);
            let tol = drai_formats::grib::quantization_error(span, packing) * 2.0 + 1e-9;
            for (a, b) in exact.iter().zip(packed) {
                assert!((a - b).abs() <= tol, "{name}: {a} vs {b} (tol {tol})");
            }
        }
    }

    #[test]
    fn grib_packing_is_smaller_than_netcdf() {
        let cfg = small_cfg();
        let sink = MemSink::new();
        generate_raw(&cfg, &sink).unwrap();
        generate_raw_grib(&cfg, &sink, drai_formats::grib::Packing { bits: 16 }).unwrap();
        let nc_bytes: usize = VARIABLES
            .iter()
            .map(|(n, _, _)| sink.read_file(&format!("raw/{n}.nc")).unwrap().len())
            .sum();
        let grib_bytes: usize = VARIABLES
            .iter()
            .map(|(n, _, _)| sink.read_file(&format!("raw-grib/{n}.grib")).unwrap().len())
            .sum();
        // 16-bit packing vs 64-bit doubles: expect ~4x reduction.
        assert!(
            grib_bytes * 3 < nc_bytes,
            "grib {grib_bytes} vs netcdf {nc_bytes}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let s1 = MemSink::new();
        let s2 = MemSink::new();
        generate_raw(&cfg, &s1).unwrap();
        generate_raw(&cfg, &s2).unwrap();
        for name in s1.list().unwrap() {
            assert_eq!(
                s1.read_file(&name).unwrap(),
                s2.read_file(&name).unwrap(),
                "{name} differs between identical-seed runs"
            );
        }
    }

    #[test]
    fn streaming_batch_shards_each_member_under_its_own_prefix() {
        let cfg = small_cfg();
        let sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let run = run_streaming_batch(&cfg, sink, 3, &ExecutorConfig::default()).unwrap();
        assert_eq!(run.members, 3);
        assert_eq!(run.stages.len(), 4, "validate/regrid/normalize/shard");
        for m in 0..3 {
            let prefix = format!("climate/m{m}/");
            assert!(
                run.shard_files.iter().any(|n| n.starts_with(&prefix)),
                "no shards under {prefix}: {:?}",
                run.shard_files
            );
        }
        // Each member ran regrid + normalize + shard through the shared
        // ledger.
        assert!(run.ledger.len() >= 3 * 3, "ledger has {}", run.ledger.len());
        // Member seeds differ, so member inputs differ.
        assert_ne!(member_input(&cfg, 0).fields, member_input(&cfg, 1).fields);
    }

    #[test]
    fn streaming_batch_outputs_match_rayon_batch() {
        let cfg = small_cfg();
        let items = |n: usize| -> Vec<(usize, ClimateData)> {
            (0..n).map(|m| (m, member_input(&cfg, m))).collect()
        };
        let s1: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let p1 = build_batch_pipeline(&cfg, s1, Arc::new(Ledger::new()));
        let (streamed, _) = p1
            .run_batch_streaming(items(3), &ExecutorConfig::default())
            .unwrap();
        let s2: Arc<dyn StorageSink> = Arc::new(MemSink::new());
        let p2 = build_batch_pipeline(&cfg, s2, Arc::new(Ledger::new()));
        let (batched, _) = p2.run_batch(items(3)).unwrap();
        assert_eq!(streamed.len(), batched.len());
        for ((ma, a), (mb, b)) in streamed.iter().zip(&batched) {
            assert_eq!(ma, mb, "member order preserved");
            assert_eq!(a.fields, b.fields, "member {ma} fields differ");
        }
    }
}
