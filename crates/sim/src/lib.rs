//! # drai-sim
//!
//! A simulated striped parallel filesystem, standing in for the
//! leadership-class Lustre/GPFS systems the paper's pipelines target
//! (DESIGN.md substitution table). A laptop's single SSD cannot show the
//! *shape* of parallel-I/O scaling — stripe-count speedup, per-OST
//! contention, the shard-size sweet spot — so the scaling benches run
//! against this model instead, while the same `StorageSink` trait lets
//! every other test run on the real filesystem.
//!
//! ## Model
//!
//! A [`SimFs`] has `ost_count` object storage targets. Each file is
//! striped round-robin in `stripe_size` chunks across `stripe_count`
//! consecutive OSTs starting at a per-file offset (Lustre's default
//! layout). Writing `n` bytes to an OST costs
//!
//! ```text
//! latency + n / bandwidth
//! ```
//!
//! on that OST's private clock; OST clocks only ever move forward, so
//! concurrent writes to one OST serialize (contention) while writes to
//! different OSTs overlap. The simulated completion time of an operation
//! is the max over the OSTs it touched — the standard first-order model
//! of striped I/O.
//!
//! Data is actually stored (it's also a correct [`StorageSink`]), so
//! shard round-trip tests can run against the simulator too.

#![forbid(unsafe_code)]

use drai_io::fault::{FaultConfig, FaultSink};
use drai_io::sink::StorageSink;
use drai_io::IoError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulated filesystem geometry and device model.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of object storage targets.
    pub ost_count: usize,
    /// Stripe unit in bytes.
    pub stripe_size: usize,
    /// OSTs each file stripes across (clamped to `ost_count`).
    pub stripe_count: usize,
    /// Per-OST sequential bandwidth, bytes/second.
    pub ost_bandwidth: f64,
    /// Per-operation, per-OST latency, seconds.
    pub ost_latency: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        // A small Lustre-like system: 8 OSTs of 1 GB/s, 1 MiB stripes,
        // 0.5 ms per-op latency.
        SimConfig {
            ost_count: 8,
            stripe_size: 1 << 20,
            stripe_count: 4,
            ost_bandwidth: 1e9,
            ost_latency: 5e-4,
        }
    }
}

impl SimConfig {
    /// Validate the geometry.
    pub fn validate(&self) -> Result<(), IoError> {
        if self.ost_count == 0 || self.stripe_size == 0 || self.stripe_count == 0 {
            return Err(IoError::Format(
                "ost_count, stripe_size, stripe_count must be positive".into(),
            ));
        }
        let bandwidth_bad = self.ost_bandwidth.is_nan() || self.ost_bandwidth <= 0.0;
        let latency_bad = self.ost_latency.is_nan() || self.ost_latency < 0.0;
        if bandwidth_bad || latency_bad {
            return Err(IoError::Format("bad bandwidth/latency".into()));
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct SimState {
    /// Per-OST clock: when that OST becomes free (virtual seconds).
    ost_free_at: Vec<f64>,
    /// Per-OST total bytes written (for balance reports).
    ost_bytes: Vec<u64>,
    /// Per-OST total bytes read.
    ost_read_bytes: Vec<u64>,
    /// Stored blobs and the starting OST each was striped from.
    files: BTreeMap<String, (usize, Vec<u8>)>,
    /// Next file's starting OST (round-robin placement).
    next_start_ost: usize,
    /// Completion time of the most recent operation.
    last_completion: f64,
}

/// The simulated filesystem. Cloning shares state (like an `Arc`).
#[derive(Debug, Clone)]
pub struct SimFs {
    config: SimConfig,
    state: Arc<Mutex<SimState>>,
}

/// Per-OST utilization snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct OstReport {
    /// Bytes written per OST.
    pub bytes_per_ost: Vec<u64>,
    /// Virtual time at which each OST becomes idle.
    pub busy_until: Vec<f64>,
}

impl SimFs {
    /// Create with the given geometry.
    pub fn new(config: SimConfig) -> Result<SimFs, IoError> {
        config.validate()?;
        let state = SimState {
            ost_free_at: vec![0.0; config.ost_count],
            ost_bytes: vec![0; config.ost_count],
            ost_read_bytes: vec![0; config.ost_count],
            ..SimState::default()
        };
        Ok(SimFs {
            config,
            state: Arc::new(Mutex::new(state)),
        })
    }

    /// The geometry in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Virtual completion time of all issued operations (the makespan):
    /// max over OST clocks.
    pub fn makespan(&self) -> f64 {
        let st = self.state.lock();
        st.ost_free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Completion time of the most recently issued operation.
    pub fn last_completion(&self) -> f64 {
        self.state.lock().last_completion
    }

    /// Aggregate write bandwidth achieved so far: total bytes / makespan.
    pub fn achieved_bandwidth(&self) -> f64 {
        let st = self.state.lock();
        let total: u64 = st.ost_bytes.iter().sum();
        let makespan = st.ost_free_at.iter().copied().fold(0.0, f64::max);
        if makespan > 0.0 {
            total as f64 / makespan
        } else {
            0.0
        }
    }

    /// Per-OST utilization.
    pub fn ost_report(&self) -> OstReport {
        let st = self.state.lock();
        OstReport {
            bytes_per_ost: st.ost_bytes.clone(),
            busy_until: st.ost_free_at.clone(),
        }
    }

    /// Reset clocks and counters but keep stored data (so a bench can
    /// measure distinct phases).
    pub fn reset_clocks(&self) {
        let mut st = self.state.lock();
        for t in &mut st.ost_free_at {
            *t = 0.0;
        }
        for b in &mut st.ost_bytes {
            *b = 0;
        }
        for b in &mut st.ost_read_bytes {
            *b = 0;
        }
        st.last_completion = 0.0;
    }

    /// Total bytes served by reads so far.
    pub fn total_read_bytes(&self) -> u64 {
        self.state.lock().ost_read_bytes.iter().sum()
    }

    /// Wrap a clone of this filesystem in a deterministic fault
    /// injector (the simulated cluster's flaky-OST mode). Clones share
    /// state, so the returned sink and `self` observe the same files
    /// and clocks — compose with [`drai_io::retry::RetrySink`] to model
    /// a resilient client against a misbehaving striped store.
    pub fn faulty(&self, config: FaultConfig) -> FaultSink<SimFs> {
        FaultSink::new(self.clone(), config)
    }

    /// Simulate moving `len` bytes striped from `start_ost` (the cost
    /// model is symmetric for reads and writes); returns the operation's
    /// completion time. `is_read` selects which byte counter to charge.
    fn simulate_transfer(
        &self,
        st: &mut SimState,
        len: usize,
        start_ost: usize,
        is_read: bool,
    ) -> f64 {
        let stripe_count = self.config.stripe_count.min(self.config.ost_count);
        // Split the file into stripe_size chunks, distribute round-robin
        // over the file's stripe group, then issue one batched op per OST.
        let mut per_ost_bytes = vec![0u64; stripe_count];
        if len == 0 {
            per_ost_bytes[0] = 0;
        } else {
            let full_chunks = len / self.config.stripe_size;
            let tail = len % self.config.stripe_size;
            for c in 0..full_chunks {
                per_ost_bytes[c % stripe_count] += self.config.stripe_size as u64;
            }
            if tail > 0 {
                per_ost_bytes[full_chunks % stripe_count] += tail as u64;
            }
        }
        let mut completion = 0.0_f64;
        for (slot, &bytes) in per_ost_bytes.iter().enumerate() {
            if bytes == 0 && len != 0 {
                continue;
            }
            let ost = (start_ost + slot) % self.config.ost_count;
            let service = self.config.ost_latency + bytes as f64 / self.config.ost_bandwidth;
            let done = st.ost_free_at[ost] + service;
            st.ost_free_at[ost] = done;
            if is_read {
                st.ost_read_bytes[ost] += bytes;
            } else {
                st.ost_bytes[ost] += bytes;
            }
            completion = completion.max(done);
        }
        st.last_completion = completion;
        completion
    }
}

impl StorageSink for SimFs {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), IoError> {
        if name.is_empty() || name.starts_with('/') || name.contains("..") {
            return Err(IoError::Format(format!("bad blob name {name:?}")));
        }
        let mut st = self.state.lock();
        let start = st.next_start_ost;
        st.next_start_ost = (st.next_start_ost + 1) % self.config.ost_count;
        self.simulate_transfer(&mut st, data.len(), start, false);
        st.files.insert(name.to_string(), (start, data.to_vec()));
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, IoError> {
        let mut st = self.state.lock();
        let (start, data) = st
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| IoError::Format(format!("no such blob: {name}")))?;
        // Reads hit the same stripe group the file was written to.
        self.simulate_transfer(&mut st, data.len(), start, true);
        Ok(data)
    }

    fn list(&self) -> Result<Vec<String>, IoError> {
        Ok(self.state.lock().files.keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<(), IoError> {
        self.state.lock().files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.state.lock().files.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(ost_count: usize, stripe_count: usize) -> SimFs {
        SimFs::new(SimConfig {
            ost_count,
            stripe_count,
            stripe_size: 1 << 20,
            ost_bandwidth: 1e9,
            ost_latency: 0.0,
        })
        .unwrap()
    }

    #[test]
    fn sink_round_trip() {
        let fs = fs(4, 2);
        fs.write_file("a/b.shard", &[7u8; 1000]).unwrap();
        assert_eq!(fs.read_file("a/b.shard").unwrap(), vec![7u8; 1000]);
        assert!(fs.exists("a/b.shard"));
        assert_eq!(fs.list().unwrap(), vec!["a/b.shard"]);
        fs.delete("a/b.shard").unwrap();
        assert!(!fs.exists("a/b.shard"));
        assert!(fs.read_file("a/b.shard").is_err());
        assert!(fs.write_file("../evil", &[]).is_err());
    }

    #[test]
    fn striping_scales_bandwidth() {
        // One 64 MiB file at stripe_count 1 vs 8 on an 8-OST system:
        // 8-way striping should finish ~8x sooner.
        let data = vec![0u8; 64 << 20];
        let narrow = fs(8, 1);
        narrow.write_file("f", &data).unwrap();
        let wide = fs(8, 8);
        wide.write_file("f", &data).unwrap();
        let speedup = narrow.makespan() / wide.makespan();
        assert!((speedup - 8.0).abs() < 0.01, "speedup {speedup}");
    }

    #[test]
    fn contention_serializes_one_ost() {
        // Two files striped over the same single OST take twice as long
        // as one; placement round-robins, so pin with ost_count=1.
        let single = fs(1, 1);
        let data = vec![0u8; 8 << 20];
        single.write_file("a", &data).unwrap();
        let t1 = single.makespan();
        single.write_file("b", &data).unwrap();
        let t2 = single.makespan();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_robin_placement_balances() {
        let fs = fs(4, 1);
        let data = vec![0u8; 1 << 20];
        for i in 0..8 {
            fs.write_file(&format!("f{i}"), &data).unwrap();
        }
        let report = fs.ost_report();
        // 8 single-stripe files over 4 OSTs: 2 MiB each.
        assert!(
            report.bytes_per_ost.iter().all(|&b| b == 2 << 20),
            "{report:?}"
        );
        // Perfect overlap: makespan = time for 2 files on one OST.
        let expected = 2.0 * (1 << 20) as f64 / 1e9;
        assert!((fs.makespan() - expected).abs() < 1e-12);
    }

    #[test]
    fn latency_dominates_small_writes() {
        let fs = SimFs::new(SimConfig {
            ost_count: 4,
            stripe_count: 4,
            stripe_size: 1 << 20,
            ost_bandwidth: 1e9,
            ost_latency: 1e-3,
        })
        .unwrap();
        // A 1 KiB write costs ~latency, not bandwidth.
        fs.write_file("tiny", &[0u8; 1024]).unwrap();
        let t = fs.last_completion();
        assert!((t - 1e-3).abs() / 1e-3 < 0.01, "t = {t}");
    }

    #[test]
    fn achieved_bandwidth_reported() {
        let fs = fs(8, 8);
        fs.write_file("f", &vec![0u8; 80 << 20]).unwrap();
        let bw = fs.achieved_bandwidth();
        // 8 OSTs at 1 GB/s, perfectly striped → ~8 GB/s aggregate.
        assert!((bw - 8e9).abs() / 8e9 < 0.01, "bw {bw}");
    }

    #[test]
    fn stripe_count_clamped_to_osts() {
        let fs = fs(2, 16);
        fs.write_file("f", &vec![0u8; 4 << 20]).unwrap();
        let report = fs.ost_report();
        assert_eq!(report.bytes_per_ost.len(), 2);
        assert_eq!(report.bytes_per_ost.iter().sum::<u64>(), 4 << 20);
    }

    #[test]
    fn reset_clocks_keeps_data() {
        let fs = fs(2, 1);
        fs.write_file("keep", &[1u8; 100]).unwrap();
        fs.reset_clocks();
        assert_eq!(fs.makespan(), 0.0);
        assert_eq!(fs.read_file("keep").unwrap(), vec![1u8; 100]);
    }

    #[test]
    fn bad_configs_rejected() {
        for cfg in [
            SimConfig {
                ost_count: 0,
                ..SimConfig::default()
            },
            SimConfig {
                stripe_size: 0,
                ..SimConfig::default()
            },
            SimConfig {
                stripe_count: 0,
                ..SimConfig::default()
            },
            SimConfig {
                ost_bandwidth: 0.0,
                ..SimConfig::default()
            },
            SimConfig {
                ost_latency: -1.0,
                ..SimConfig::default()
            },
        ] {
            assert!(SimFs::new(cfg).is_err());
        }
    }

    #[test]
    fn empty_file_write() {
        let fs = fs(2, 2);
        fs.write_file("empty", &[]).unwrap();
        assert_eq!(fs.read_file("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reads_charge_virtual_time() {
        let fs = fs(4, 4);
        let data = vec![0u8; 16 << 20];
        fs.write_file("f", &data).unwrap();
        let after_write = fs.makespan();
        assert_eq!(fs.total_read_bytes(), 0);
        let back = fs.read_file("f").unwrap();
        assert_eq!(back.len(), data.len());
        assert!(fs.makespan() > after_write, "read did not advance clocks");
        assert_eq!(fs.total_read_bytes(), data.len() as u64);
        // Symmetric cost model: read takes about as long as the write.
        assert!((fs.makespan() - 2.0 * after_write).abs() / after_write < 0.05);
    }

    #[test]
    fn resilient_client_survives_flaky_osts() {
        use drai_io::retry::{RetryPolicy, RetrySink, VirtualClock};
        use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};

        let fs = fs(4, 2);
        let clock = VirtualClock::new();
        let policy = RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        };
        let sink = RetrySink::with_clock(
            fs.faulty(FaultConfig::transient(17, 0.25)),
            policy,
            clock.clone(),
        );
        let records: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 4096]).collect();
        let manifest = ShardWriter::new(ShardSpec::new("flaky", 32 * 1024), &sink)
            .write_all(&records)
            .unwrap();
        assert!(manifest.shards.len() > 1);
        let reader = ShardReader::open("flaky", &sink).unwrap();
        let recovered = reader.read_all_recovering();
        assert!(recovered.damage.is_clean(), "{:?}", recovered.damage);
        assert_eq!(recovered.records, records);
        // The retries cost (virtual) backoff time, and the successful
        // attempts advanced the simulated OST clocks.
        assert!(clock.slept_ns() > 0, "expected injected faults to back off");
        assert!(fs.makespan() > 0.0);
    }

    #[test]
    fn works_as_shard_sink() {
        use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};
        let fs = fs(4, 2);
        let records: Vec<Vec<u8>> = (0..50).map(|i| vec![i as u8; 4096]).collect();
        let manifest = ShardWriter::new(ShardSpec::new("sim", 64 * 1024), &fs)
            .write_all(&records)
            .unwrap();
        assert!(manifest.shards.len() > 1);
        let reader = ShardReader::open("sim", &fs).unwrap();
        assert_eq!(reader.read_all().unwrap(), records);
        assert!(fs.makespan() > 0.0);
    }
}
