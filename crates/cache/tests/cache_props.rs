//! Property tests for the stage-result cache: key-scheme laws (stability
//! and sensitivity to every keyed dimension) and hit/fresh equivalence
//! across all entry codecs.

use drai_cache::clock::LogicalClock;
use drai_cache::{config_fingerprint, CacheBytes, CacheKey, StageCache};
use drai_io::codec::CodecId;
use drai_io::sink::{MemSink, StorageSink};
use proptest::prelude::*;
use std::sync::Arc;

const ALL_CODECS: [CodecId; 7] = [
    CodecId::Raw,
    CodecId::Rle,
    CodecId::Delta { width: 1 },
    CodecId::Delta { width: 2 },
    CodecId::Delta { width: 4 },
    CodecId::Delta { width: 8 },
    CodecId::Lz,
];

fn fp(pairs: &[(String, String)]) -> Vec<u8> {
    config_fingerprint(pairs.iter().map(|(k, v)| (k.as_str(), v.clone())))
}

proptest! {
    /// Same stage, input and config ⇒ same key, every time.
    #[test]
    fn key_is_stable(
        stage in "[a-z]{1,12}",
        input in proptest::collection::vec(any::<u8>(), 0..2048),
        config in proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,16}"), 0..6),
    ) {
        let f = fp(&config);
        let a = CacheKey::compute(&stage, &input, &f);
        let b = CacheKey::compute(&stage, &input, &f);
        prop_assert_eq!(a.hex(), b.hex());
        prop_assert_eq!(a.blob_name(), b.blob_name());
    }

    /// Perturbing a single input byte changes the key.
    #[test]
    fn key_sensitive_to_single_input_byte(
        stage in "[a-z]{1,12}",
        input in proptest::collection::vec(any::<u8>(), 1..2048),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let f = fp(&[("k".to_string(), "v".to_string())]);
        let base = CacheKey::compute(&stage, &input, &f);
        let mut mutated = input.clone();
        mutated[pos % input.len()] ^= 1 << bit;
        let other = CacheKey::compute(&stage, &mutated, &f);
        prop_assert_ne!(base.hex(), other.hex());
    }

    /// Perturbing any config field's value changes the key; so does the
    /// stage name and appending/removing a field.
    #[test]
    fn key_sensitive_to_config_and_stage(
        stage in "[a-z]{1,12}",
        input in proptest::collection::vec(any::<u8>(), 0..512),
        config in proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9]{1,16}"), 1..5),
        which in any::<usize>(),
    ) {
        let base = CacheKey::compute(&stage, &input, &fp(&config));

        // Mutate one field's value.
        let idx = which % config.len();
        let mut changed = config.clone();
        changed[idx].1.push('x');
        prop_assert_ne!(
            base.hex(),
            CacheKey::compute(&stage, &input, &fp(&changed)).hex()
        );

        // Drop one field entirely.
        let mut dropped = config.clone();
        dropped.remove(idx);
        prop_assert_ne!(
            base.hex(),
            CacheKey::compute(&stage, &input, &fp(&dropped)).hex()
        );

        // Same input/config under a different stage name.
        let other_stage = format!("{stage}x");
        prop_assert_ne!(
            base.hex(),
            CacheKey::compute(&other_stage, &input, &fp(&config)).hex()
        );
    }

    /// A value served from cache equals the freshly stored one, bitwise,
    /// under every entry codec — and its counters replay exactly.
    #[test]
    fn cached_value_round_trips_under_every_codec(
        // Length a multiple of 8 so delta widths {1,2,4,8} all divide it.
        words in proptest::collection::vec(any::<u64>(), 0..256),
        records in any::<u64>(),
        bytes in any::<u64>(),
        codec_pick in 0usize..7,
    ) {
        let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let codec = ALL_CODECS[codec_pick];
        let cache = StageCache::new(Arc::new(MemSink::new()) as Arc<dyn StorageSink>, 64 << 20)
            .with_clock(Arc::new(LogicalClock::new()))
            .with_codec(codec);
        let key = CacheKey::compute("stage", b"input", &fp(&[]));
        prop_assert!(cache.get(&key).is_none());
        cache.put(&key, &payload, records, bytes).unwrap();
        let hit = cache.get(&key).expect("stored entry must hit");
        prop_assert_eq!(&hit.payload, &payload);
        prop_assert_eq!(hit.records, records);
        prop_assert_eq!(hit.bytes, bytes);
    }

    /// `Vec<f64>`'s CacheBytes impl is bitwise-exact (NaN bit patterns,
    /// signed zeros and subnormals all survive the round trip).
    #[test]
    fn f64_cache_bytes_bitwise_round_trip(
        bits in proptest::collection::vec(any::<u64>(), 0..512),
    ) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let encoded = values.to_cache_bytes();
        let back = Vec::<f64>::from_cache_bytes(&encoded).unwrap();
        let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
    }
}
