//! The cache's injectable time source.
//!
//! LRU eviction needs a recency order, nothing more — so the clock is a
//! trait, mirroring the retry layer's `RetryClock` seam: production code
//! uses [`WallClock`] (the only place this crate touches the wall clock,
//! and the one file the `no-wallclock` lint rule allowlists), while
//! tests and deterministic replays inject [`LogicalClock`], whose ticks
//! advance only when read. Eviction decisions therefore never depend on
//! real time unless the caller explicitly opts in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic time source for LRU recency stamps.
pub trait CacheClock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Must be
    /// monotonically non-decreasing across calls.
    fn now_ns(&self) -> u64;
}

/// Wall-clock implementation: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl CacheClock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic clock: every read returns the next integer, so access
/// order *is* recency order regardless of scheduling or machine speed.
#[derive(Debug, Default)]
pub struct LogicalClock {
    tick: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick zero.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// The number of reads so far.
    pub fn reads(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }
}

impl CacheClock for LogicalClock {
    fn now_ns(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_orders_reads() {
        let c = LogicalClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 1);
        assert_eq!(c.now_ns(), 2);
        assert_eq!(c.reads(), 3);
    }
}
