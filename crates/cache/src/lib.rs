//! # drai-cache
//!
//! Content-addressed incremental stage-result cache: re-running a
//! pipeline over unchanged inputs is the dominant workload when corpora
//! are re-evaluated after every config tweak, so stage outputs are
//! memoized under a key that captures *everything* that could change
//! them:
//!
//! ```text
//! key = digest(input bytes) × stage name × config fingerprint × format version
//! ```
//!
//! Entries are self-describing blobs persisted through any
//! [`StorageSink`] — a local filesystem, the in-memory test sink, the
//! simulated striped store, or a fault-injecting wrapper — under
//! `cache/<stage>/<key>.entry`. Each blob carries a digest of its
//! decoded payload; an entry that fails verification (bit rot, torn
//! write, format drift) is **quarantined and recomputed, never served**:
//! the bad bytes move to `cache/quarantine/` for post-mortems and the
//! lookup reports a miss.
//!
//! Capacity is bounded by a size-capped LRU policy whose recency stamps
//! come from an injectable [`clock::CacheClock`] — production uses the
//! wall clock (the one allowlisted wall-clock read outside the
//! retry/telemetry layers), tests use [`clock::LogicalClock`] so
//! eviction order is deterministic.
//!
//! Pipelines opt in per stage through [`CachedPipelineExt`], which wraps
//! a stage function exactly like `PipelineBuilder::retry_stage` wraps
//! one for retries. Artifact types describe their exact byte form via
//! [`CacheBytes`] (helpers in [`bytes`]).
//!
//! Telemetry: `cache.hits`, `cache.misses`, `cache.evictions`,
//! `cache.quarantined` counters and `cache.get`/`cache.put` spans, all
//! into the context registry. Provenance: when a [`StageCache`] carries
//! a ledger, every hit records a `cache_hit` transformation stamped with
//! the TraceId that originally produced the entry.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod clock;

use clock::{CacheClock, WallClock};
use drai_core::pipeline::{FastPath, PipelineBuilder, StageCounters};
use drai_core::readiness::ProcessingStage;
use drai_io::checksum::{content_hash128, hash_hex};
use drai_io::codec::{codec_for, CodecId};
use drai_io::sink::StorageSink;
use drai_io::IoError;
use drai_provenance::{Artifact, Ledger};
use drai_telemetry::{Registry, TraceContext};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bytes::{ByteReader, ByteWriter};

/// Version baked into every cache key and entry header. Bump whenever
/// the entry layout or any cached payload encoding changes: old entries
/// then simply never match a new key, and stale blobs age out via LRU.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of a serialized cache entry.
const ENTRY_MAGIC: &[u8; 4] = b"DRCE";

/// Exact byte representation of a pipeline artifact, for keying and
/// storage. Implementations must round-trip *bitwise*: the cache
/// digests these bytes for identity, and a hit is deserialized from
/// exactly the bytes a previous run serialized.
pub trait CacheBytes: Sized {
    /// Serialize to the canonical byte form.
    fn to_cache_bytes(&self) -> Vec<u8>;
    /// Reconstruct from bytes produced by [`CacheBytes::to_cache_bytes`].
    fn from_cache_bytes(data: &[u8]) -> Result<Self, String>;
}

impl CacheBytes for Vec<u8> {
    fn to_cache_bytes(&self) -> Vec<u8> {
        self.clone()
    }
    fn from_cache_bytes(data: &[u8]) -> Result<Self, String> {
        Ok(data.to_vec())
    }
}

impl CacheBytes for Vec<f64> {
    fn to_cache_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(8 + self.len() * 8);
        w.put_f64_slice(self);
        w.finish()
    }
    fn from_cache_bytes(data: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(data);
        let v = r.f64_vec()?;
        r.expect_end()?;
        Ok(v)
    }
}

/// Deterministic fingerprint of a stage's configuration, built from
/// key/value pairs. Order-sensitive on purpose — pass fields in a fixed
/// declaration order so the fingerprint is stable across runs.
pub fn config_fingerprint<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for (k, v) in fields {
        w.put_str(k);
        w.put_str(&v);
    }
    w.finish()
}

/// A fully resolved cache key: the stage name (for the blob namespace)
/// plus a 128-bit digest over input bytes, stage name, config
/// fingerprint, and [`CACHE_FORMAT_VERSION`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    stage: String,
    hash: [u8; 16],
}

impl CacheKey {
    /// Compute the key for `stage` over serialized input bytes and a
    /// config fingerprint. The input is digested first, so keying cost
    /// is one hash pass regardless of how many key components change.
    pub fn compute(stage: &str, input_bytes: &[u8], config_fp: &[u8]) -> CacheKey {
        let input_digest = content_hash128(input_bytes);
        let mut w = ByteWriter::with_capacity(64 + config_fp.len());
        w.put_u64(u64::from(CACHE_FORMAT_VERSION));
        w.put_str(stage);
        w.put_bytes(&input_digest);
        w.put_bytes(config_fp);
        CacheKey {
            stage: stage.to_string(),
            hash: content_hash128(&w.finish()),
        }
    }

    /// Stage this key belongs to.
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// Lowercase hex of the 128-bit key digest.
    pub fn hex(&self) -> String {
        hash_hex(&self.hash)
    }

    /// Blob name the entry is stored under.
    pub fn blob_name(&self) -> String {
        format!("cache/{}/{}.entry", self.stage, self.hex())
    }

    /// Blob name a corrupt entry is quarantined under (flat namespace:
    /// path separators in the stage name become dots).
    fn quarantine_name(&self) -> String {
        format!(
            "cache/quarantine/{}.{}.entry",
            self.stage.replace('/', "."),
            self.hex()
        )
    }
}

/// A verified cache hit.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The decoded stage-output payload, digest-verified.
    pub payload: Vec<u8>,
    /// Stage record counter captured when the entry was produced.
    pub records: u64,
    /// Stage byte counter captured when the entry was produced.
    pub bytes: u64,
    /// TraceId of the run that originally computed this entry, if one
    /// was attached at `put` time.
    pub origin_trace: Option<u64>,
}

struct DecodedEntry {
    payload: Vec<u8>,
    records: u64,
    bytes: u64,
    origin_trace: Option<u64>,
}

/// Serialize an entry blob. Layout (all integers little-endian):
/// magic `DRCE` · format version u32 · codec tag u8 · origin trace u64
/// (0 = none) · records u64 · bytes u64 · digest of the *decoded*
/// payload (16 bytes) · encoded payload (length-prefixed).
fn encode_entry(
    codec: CodecId,
    origin_trace: Option<u64>,
    records: u64,
    bytes: u64,
    payload: &[u8],
) -> Vec<u8> {
    let encoded = codec_for(codec).encode(payload);
    let mut w = ByteWriter::with_capacity(64 + encoded.len());
    w.put_u8(ENTRY_MAGIC[0]);
    w.put_u8(ENTRY_MAGIC[1]);
    w.put_u8(ENTRY_MAGIC[2]);
    w.put_u8(ENTRY_MAGIC[3]);
    w.put_u64(u64::from(CACHE_FORMAT_VERSION));
    w.put_u8(codec.tag());
    w.put_u64(origin_trace.unwrap_or(0));
    w.put_u64(records);
    w.put_u64(bytes);
    w.put_bytes(&content_hash128(payload));
    w.put_bytes(&encoded);
    w.finish()
}

/// Parse, decode, and digest-verify an entry blob. Any failure — bad
/// magic, version drift, unknown codec, truncation, codec error, digest
/// mismatch — is reported as a string so the caller can quarantine.
fn decode_entry(data: &[u8]) -> Result<DecodedEntry, String> {
    let mut r = ByteReader::new(data);
    let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
    if &magic != ENTRY_MAGIC {
        return Err("bad entry magic".to_string());
    }
    let version = r.u64()?;
    if version != u64::from(CACHE_FORMAT_VERSION) {
        return Err(format!(
            "entry format version {version} != {CACHE_FORMAT_VERSION}"
        ));
    }
    let codec = CodecId::from_tag(r.u8()?).map_err(|e| e.to_string())?;
    let origin = r.u64()?;
    let records = r.u64()?;
    let bytes = r.u64()?;
    let digest = r.bytes()?;
    if digest.len() != 16 {
        return Err(format!("digest is {} bytes, want 16", digest.len()));
    }
    let encoded = r.bytes()?;
    r.expect_end()?;
    let payload = codec_for(codec)
        .decode(encoded)
        .map_err(|e| e.to_string())?;
    if content_hash128(&payload).as_slice() != digest {
        return Err("payload digest mismatch".to_string());
    }
    Ok(DecodedEntry {
        payload,
        records,
        bytes,
        origin_trace: (origin != 0).then_some(origin),
    })
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    size: u64,
    last_access: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: BTreeMap<String, IndexEntry>,
    total: u64,
}

impl Index {
    fn touch(&mut self, blob: &str, size: u64, now: u64) {
        match self.entries.get_mut(blob) {
            Some(e) => e.last_access = now,
            None => {
                self.entries.insert(
                    blob.to_string(),
                    IndexEntry {
                        size,
                        last_access: now,
                    },
                );
                self.total += size;
            }
        }
    }

    fn remove(&mut self, blob: &str) {
        if let Some(e) = self.entries.remove(blob) {
            self.total -= e.size;
        }
    }

    /// Least-recently-used blob, excluding `keep` (ties break on name
    /// so eviction order is deterministic even on a frozen clock).
    fn victim(&self, keep: &str) -> Option<String> {
        self.entries
            .iter()
            .filter(|(name, _)| name.as_str() != keep)
            .min_by_key(|(name, e)| (e.last_access, name.as_str()))
            .map(|(name, _)| name.clone())
    }
}

/// A shared, size-capped, content-addressed stage-result cache over a
/// [`StorageSink`].
///
/// Thread-safe: the index is mutex-guarded and sinks are required to be
/// thread-safe, so one `Arc<StageCache>` can serve parallel pipeline
/// workers. Each `get` counts exactly one of `cache.hits`/`cache.misses`.
pub struct StageCache {
    sink: Arc<dyn StorageSink>,
    clock: Arc<dyn CacheClock>,
    capacity_bytes: u64,
    codec: CodecId,
    ledger: Option<Arc<Ledger>>,
    index: Mutex<Index>,
}

impl StageCache {
    /// Cache over `sink` holding at most `capacity_bytes` of entry
    /// blobs, with a wall clock and raw (uncompressed) entries.
    pub fn new(sink: Arc<dyn StorageSink>, capacity_bytes: u64) -> StageCache {
        StageCache {
            sink,
            clock: Arc::new(WallClock::new()),
            capacity_bytes,
            codec: CodecId::Raw,
            ledger: None,
            index: Mutex::new(Index::default()),
        }
    }

    /// Replace the recency clock (tests inject a deterministic one).
    pub fn with_clock(mut self, clock: Arc<dyn CacheClock>) -> StageCache {
        self.clock = clock;
        self
    }

    /// Compress entry payloads with `codec`.
    pub fn with_codec(mut self, codec: CodecId) -> StageCache {
        self.codec = codec;
        self
    }

    /// Record a `cache_hit` provenance transformation for every hit.
    pub fn with_ledger(mut self, ledger: Arc<Ledger>) -> StageCache {
        self.ledger = Some(ledger);
        self
    }

    /// The sink entries persist through.
    pub fn sink(&self) -> &Arc<dyn StorageSink> {
        &self.sink
    }

    /// Number of entries the LRU index currently tracks.
    pub fn tracked_entries(&self) -> usize {
        self.index.lock().entries.len()
    }

    /// Total entry bytes the LRU index currently tracks.
    pub fn tracked_bytes(&self) -> u64 {
        self.index.lock().total
    }

    /// Look up `key`. Returns a digest-verified hit, or `None` on miss —
    /// including *corruption-as-miss*: an unreadable or unverifiable
    /// entry is moved to the quarantine namespace (and counted in
    /// `cache.quarantined`) so it can never be served, and the caller
    /// recomputes.
    pub fn get(&self, key: &CacheKey) -> Option<CacheHit> {
        let registry = Registry::current();
        let span = registry.span("cache.get");
        let _in_get = span.enter();
        let blob = key.blob_name();
        let raw = match self.sink.read_file(&blob) {
            Ok(raw) => raw,
            Err(_) => {
                registry.counter("cache.misses").incr();
                return None;
            }
        };
        match decode_entry(&raw) {
            Ok(entry) => {
                registry.counter("cache.hits").incr();
                span.add_items(1);
                span.add_bytes(entry.payload.len() as u64);
                self.index
                    .lock()
                    .touch(&blob, raw.len() as u64, self.clock.now_ns());
                if let Some(ledger) = &self.ledger {
                    ledger.record(
                        "cache_hit",
                        [
                            ("stage".to_string(), key.stage.clone()),
                            ("key".to_string(), key.hex()),
                            (
                                "origin_trace".to_string(),
                                entry
                                    .origin_trace
                                    .map(|t| t.to_string())
                                    .unwrap_or_else(|| "none".to_string()),
                            ),
                        ],
                        Vec::new(),
                        vec![Artifact::new(&blob, &entry.payload)],
                    );
                }
                Some(CacheHit {
                    payload: entry.payload,
                    records: entry.records,
                    bytes: entry.bytes,
                    origin_trace: entry.origin_trace,
                })
            }
            Err(_) => {
                self.quarantine(key, &blob, &raw);
                registry.counter("cache.quarantined").incr();
                registry.counter("cache.misses").incr();
                None
            }
        }
    }

    /// Whether an entry for `key` exists, without reading or verifying
    /// its payload — an O(1) metadata probe (`StorageSink::exists`)
    /// that moves no entry bytes and touches no hit/miss counters.
    /// `drai-sched` cost estimators use it to shrink a job's cost by
    /// the stages expected to short-circuit on warm cache entries; a
    /// probe that lies (entry corrupt) only costs the job its estimate,
    /// since `get` still quarantines and recomputes.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.sink.exists(&key.blob_name())
    }

    /// Move a corrupt entry out of the serving namespace. Best-effort:
    /// even if the quarantine copy cannot be written, the entry is
    /// deleted so it cannot be served again.
    fn quarantine(&self, key: &CacheKey, blob: &str, raw: &[u8]) {
        let _ = self.sink.write_file(&key.quarantine_name(), raw);
        let _ = self.sink.delete(blob);
        self.index.lock().remove(blob);
    }

    /// Store a stage output under `key`, stamping the current TraceId
    /// as the entry's origin, then evict least-recently-used entries
    /// until the tracked total fits the capacity. Payloads whose entry
    /// blob alone exceeds the capacity are not stored at all.
    pub fn put(
        &self,
        key: &CacheKey,
        payload: &[u8],
        records: u64,
        bytes: u64,
    ) -> Result<(), IoError> {
        let registry = Registry::current();
        let span = registry.span("cache.put");
        let _in_put = span.enter();
        let origin = TraceContext::current().map(|ctx| ctx.trace_id().as_u64());
        let entry = encode_entry(self.codec, origin, records, bytes, payload);
        let entry_len = entry.len() as u64;
        if entry_len > self.capacity_bytes {
            return Ok(());
        }
        let blob = key.blob_name();
        self.sink.write_file(&blob, &entry)?;
        span.add_items(1);
        span.add_bytes(entry_len);
        let mut index = self.index.lock();
        // Replacing an entry under the same key: drop the old size first.
        index.remove(&blob);
        index.touch(&blob, entry_len, self.clock.now_ns());
        while index.total > self.capacity_bytes {
            let Some(victim) = index.victim(&blob) else {
                break;
            };
            let _ = self.sink.delete(&victim);
            index.remove(&victim);
            registry.counter("cache.evictions").incr();
        }
        Ok(())
    }
}

/// Builder extension wiring a [`StageCache`] into pipeline stages —
/// the cache-layer counterpart of `PipelineBuilder::retry_stage`.
pub trait CachedPipelineExt<T> {
    /// Add a stage whose output is memoized in `cache`. On a verified
    /// hit the stage function never runs; its record/byte counters are
    /// restored from the entry. On a miss (or quarantined corruption)
    /// the function runs and its output is stored best-effort — a
    /// failed cache write degrades to uncached behaviour, never to a
    /// stage error.
    ///
    /// `config_fp` must fingerprint every configuration input that
    /// affects the stage's output (see [`config_fingerprint`]).
    fn cached_stage(
        self,
        name: &str,
        kind: ProcessingStage,
        cache: Arc<StageCache>,
        config_fp: Vec<u8>,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self;

    /// Like [`CachedPipelineExt::cached_stage`], with a semantic check
    /// applied to each decoded hit: `check` returning false rejects the
    /// hit and recomputes. Used by stages whose output references
    /// external state (e.g. shard files that may have been deleted
    /// since the entry was written).
    fn cached_stage_with_check(
        self,
        name: &str,
        kind: ProcessingStage,
        cache: Arc<StageCache>,
        config_fp: Vec<u8>,
        check: impl Fn(&T) -> bool + Send + Sync + 'static,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self;
}

impl<T: CacheBytes + Send + Sync + 'static> CachedPipelineExt<T> for PipelineBuilder<T> {
    fn cached_stage(
        self,
        name: &str,
        kind: ProcessingStage,
        cache: Arc<StageCache>,
        config_fp: Vec<u8>,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        self.cached_stage_with_check(name, kind, cache, config_fp, |_| true, func)
    }

    fn cached_stage_with_check(
        self,
        name: &str,
        kind: ProcessingStage,
        cache: Arc<StageCache>,
        config_fp: Vec<u8>,
        check: impl Fn(&T) -> bool + Send + Sync + 'static,
        func: impl Fn(T, &mut StageCounters) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        // The probe is the stage's *fast path*: sequential runs try it
        // immediately before the function, and the streaming executor
        // probes it on the sending side of a channel so a hit skips the
        // stage's channel hop entirely. Exactly one probe happens per
        // stage execution either way, so hit/miss counters are
        // identical across `run`, `run_batch` and streaming.
        let probe_name = name.to_string();
        let probe_cache = cache.clone();
        let probe_fp = config_fp.clone();
        let probe = move |input: T, counters: &mut StageCounters| {
            let input_bytes = input.to_cache_bytes();
            let key = CacheKey::compute(&probe_name, &input_bytes, &probe_fp);
            if let Some(hit) = probe_cache.get(&key) {
                // The digest already verified; a decode failure here
                // means the payload schema drifted without a format
                // version bump — recompute and overwrite.
                if let Ok(output) = T::from_cache_bytes(&hit.payload) {
                    if check(&output) {
                        counters.records = hit.records;
                        counters.bytes = hit.bytes;
                        return FastPath::Hit(output);
                    }
                }
            }
            FastPath::Miss(input)
        };
        let stage_name = name.to_string();
        let compute = move |input: T, counters: &mut StageCounters| {
            // Recompute the key (the probe consumed its copy of the
            // input bytes): the put must be keyed by the *input*, which
            // `func` consumes.
            let input_bytes = input.to_cache_bytes();
            let key = CacheKey::compute(&stage_name, &input_bytes, &config_fp);
            let output = func(input, counters)?;
            let _ = cache.put(
                &key,
                &output.to_cache_bytes(),
                counters.records,
                counters.bytes,
            );
            Ok(output)
        };
        self.stage_with_fast_path(name, kind, probe, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock::LogicalClock;
    use drai_core::pipeline::Pipeline;
    use drai_core::readiness::ProcessingStage as S;
    use drai_io::sink::MemSink;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn mem_cache(capacity: u64) -> StageCache {
        StageCache::new(Arc::new(MemSink::new()), capacity)
            .with_clock(Arc::new(LogicalClock::new()))
    }

    /// Run `f` against a fresh private registry and return its snapshot.
    fn with_registry<R>(f: impl FnOnce() -> R) -> (R, drai_telemetry::Snapshot) {
        let reg = Registry::new();
        let out = TraceContext::root(&reg).scope(f);
        (out, reg.snapshot())
    }

    #[test]
    fn key_is_stable_and_component_sensitive() {
        let base = CacheKey::compute("regrid", b"input", b"cfg");
        assert_eq!(base, CacheKey::compute("regrid", b"input", b"cfg"));
        assert_ne!(base, CacheKey::compute("normalize", b"input", b"cfg"));
        assert_ne!(base, CacheKey::compute("regrid", b"inpuT", b"cfg"));
        assert_ne!(base, CacheKey::compute("regrid", b"input", b"cfG"));
        assert!(base.blob_name().starts_with("cache/regrid/"));
        assert!(base.blob_name().ends_with(".entry"));
    }

    #[test]
    fn miss_then_hit_round_trips_payload_and_counters() {
        let cache = mem_cache(1 << 20);
        let key = CacheKey::compute("s", b"in", b"");
        let ((), snap) = with_registry(|| {
            assert!(cache.get(&key).is_none());
            cache.put(&key, b"payload bytes", 7, 13).unwrap();
            let hit = cache.get(&key).expect("hit after put");
            assert_eq!(hit.payload, b"payload bytes");
            assert_eq!(hit.records, 7);
            assert_eq!(hit.bytes, 13);
            // A trace context is attached (with_registry), so the origin
            // trace must be stamped.
            assert!(hit.origin_trace.is_some());
        });
        assert_eq!(snap.counters["cache.misses"], 1);
        assert_eq!(snap.counters["cache.hits"], 1);
        assert!(!snap.spans_named("cache.get").is_empty());
        assert!(!snap.spans_named("cache.put").is_empty());
    }

    #[test]
    fn contains_probes_without_touching_counters() {
        let cache = mem_cache(1 << 20);
        let key = CacheKey::compute("s", b"in", b"");
        let ((), snap) = with_registry(|| {
            assert!(!cache.contains(&key));
            cache.put(&key, b"payload", 1, 7).unwrap();
            assert!(cache.contains(&key));
        });
        // The probe is metadata-only: no hit/miss accounting, no get span.
        assert!(!snap.counters.contains_key("cache.hits"));
        assert!(!snap.counters.contains_key("cache.misses"));
        assert!(snap.spans_named("cache.get").is_empty());
    }

    #[test]
    fn entries_survive_all_codecs() {
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 7) as u8).collect();
        for codec in [
            CodecId::Raw,
            CodecId::Rle,
            CodecId::Delta { width: 1 },
            CodecId::Delta { width: 2 },
            CodecId::Delta { width: 4 },
            CodecId::Delta { width: 8 },
            CodecId::Lz,
        ] {
            let cache = mem_cache(1 << 20).with_codec(codec);
            let key = CacheKey::compute("s", b"in", b"");
            let ((), _snap) = with_registry(|| {
                cache.put(&key, &payload, 1, payload.len() as u64).unwrap();
                let hit = cache.get(&key).expect("hit");
                assert_eq!(hit.payload, payload, "codec {}", codec.name());
            });
        }
    }

    #[test]
    fn corrupt_entry_is_quarantined_never_served() {
        let sink = Arc::new(MemSink::new());
        let cache =
            StageCache::new(sink.clone(), 1 << 20).with_clock(Arc::new(LogicalClock::new()));
        let key = CacheKey::compute("s", b"in", b"");
        let ((), snap) = with_registry(|| {
            cache.put(&key, b"good payload", 1, 12).unwrap();
            // Flip one payload byte behind the cache's back.
            let blob = key.blob_name();
            let mut raw = sink.read_file(&blob).unwrap();
            let last = raw.len() - 1;
            raw[last] ^= 0x40;
            sink.write_file(&blob, &raw).unwrap();
            assert!(cache.get(&key).is_none(), "corrupt entry must not serve");
            // The entry moved to quarantine and a re-read is a plain miss.
            assert!(!sink.exists(&blob));
            let names = sink.list().unwrap();
            assert!(
                names.iter().any(|n| n.starts_with("cache/quarantine/")),
                "{names:?}"
            );
            assert!(cache.get(&key).is_none());
        });
        assert_eq!(snap.counters["cache.quarantined"], 1);
        assert_eq!(snap.counters["cache.misses"], 2);
        assert_eq!(snap.counters.get("cache.hits"), None);
    }

    #[test]
    fn truncated_and_bad_magic_entries_quarantine() {
        for mutate in [
            // Truncate mid-header.
            (|raw: &mut Vec<u8>| raw.truncate(10)) as fn(&mut Vec<u8>),
            // Clobber the magic.
            |raw: &mut Vec<u8>| raw[0] = b'X',
            // Trailing garbage.
            |raw: &mut Vec<u8>| raw.push(0),
        ] {
            let sink = Arc::new(MemSink::new());
            let cache =
                StageCache::new(sink.clone(), 1 << 20).with_clock(Arc::new(LogicalClock::new()));
            let key = CacheKey::compute("s", b"in", b"");
            let ((), snap) = with_registry(|| {
                cache.put(&key, b"payload", 0, 0).unwrap();
                let blob = key.blob_name();
                let mut raw = sink.read_file(&blob).unwrap();
                mutate(&mut raw);
                sink.write_file(&blob, &raw).unwrap();
                assert!(cache.get(&key).is_none());
            });
            assert_eq!(snap.counters["cache.quarantined"], 1);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Each entry blob is identical in size; capacity fits two.
        let payload = [0u8; 128];
        let cache = mem_cache(500);
        let ka = CacheKey::compute("s", b"a", b"");
        let kb = CacheKey::compute("s", b"b", b"");
        let kc = CacheKey::compute("s", b"c", b"");
        let ((), snap) = with_registry(|| {
            cache.put(&ka, &payload, 0, 0).unwrap();
            cache.put(&kb, &payload, 0, 0).unwrap();
            // Touch `a` so `b` becomes the LRU victim.
            assert!(cache.get(&ka).is_some());
            cache.put(&kc, &payload, 0, 0).unwrap();
            assert!(cache.get(&kb).is_none(), "LRU entry must be evicted");
            assert!(cache.get(&ka).is_some(), "recently used entry survives");
            assert!(cache.get(&kc).is_some(), "just-inserted entry survives");
        });
        assert_eq!(snap.counters["cache.evictions"], 1);
        assert!(cache.tracked_bytes() <= 500);
        assert_eq!(cache.tracked_entries(), 2);
    }

    #[test]
    fn oversized_payload_is_not_stored() {
        let cache = mem_cache(64);
        let key = CacheKey::compute("s", b"in", b"");
        let ((), snap) = with_registry(|| {
            cache.put(&key, &[0u8; 1024], 0, 0).unwrap();
            assert!(cache.get(&key).is_none());
        });
        assert_eq!(cache.tracked_entries(), 0);
        assert_eq!(snap.counters.get("cache.evictions"), None);
    }

    #[test]
    fn pre_existing_blobs_enter_the_index_on_hit() {
        // A cache restarted over a sink that already holds entries must
        // learn their sizes so eviction accounting stays correct.
        let sink = Arc::new(MemSink::new());
        let key = CacheKey::compute("s", b"in", b"");
        let ((), _snap) = with_registry(|| {
            let first =
                StageCache::new(sink.clone(), 1 << 20).with_clock(Arc::new(LogicalClock::new()));
            first.put(&key, b"payload", 0, 0).unwrap();
        });
        let restarted =
            StageCache::new(sink.clone(), 1 << 20).with_clock(Arc::new(LogicalClock::new()));
        assert_eq!(restarted.tracked_entries(), 0);
        let ((), _snap) = with_registry(|| {
            assert!(restarted.get(&key).is_some());
        });
        assert_eq!(restarted.tracked_entries(), 1);
        assert!(restarted.tracked_bytes() > 0);
    }

    #[test]
    fn cached_stage_skips_recompute_and_restores_counters() {
        let cache = Arc::new(mem_cache(1 << 20));
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in_stage = calls.clone();
        let pipeline: Pipeline<Vec<f64>> = Pipeline::builder("cache-unit")
            .cached_stage(
                "double",
                S::Transform,
                cache.clone(),
                config_fingerprint([("factor", "2".to_string())]),
                move |v: Vec<f64>, c| {
                    calls_in_stage.fetch_add(1, Ordering::SeqCst);
                    c.records = v.len() as u64;
                    c.bytes = (v.len() * 8) as u64;
                    Ok(v.into_iter().map(|x| x * 2.0).collect())
                },
            )
            .build();
        let ((), snap) = with_registry(|| {
            let cold = pipeline.run(vec![1.0, 2.0, 3.0]).unwrap();
            assert_eq!(cold.output, vec![2.0, 4.0, 6.0]);
            let warm = pipeline.run(vec![1.0, 2.0, 3.0]).unwrap();
            assert_eq!(warm.output, vec![2.0, 4.0, 6.0]);
            // Counters on the warm run come from the entry, not the fn.
            assert_eq!(warm.stage("double").unwrap().throughput.records, 3);
            assert_eq!(warm.stage("double").unwrap().throughput.bytes, 24);
            // Different input → recompute.
            pipeline.run(vec![5.0]).unwrap();
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2, "one cold run per input");
        assert_eq!(snap.counters["cache.hits"], 1);
        assert_eq!(snap.counters["cache.misses"], 2);
    }

    #[test]
    fn config_fingerprint_invalidates() {
        let cache = Arc::new(mem_cache(1 << 20));
        let build = |factor: f64, cache: Arc<StageCache>| -> Pipeline<Vec<f64>> {
            Pipeline::builder("cache-cfg")
                .cached_stage(
                    "scale",
                    S::Transform,
                    cache,
                    config_fingerprint([("factor", format!("{factor}"))]),
                    move |v: Vec<f64>, _| Ok(v.into_iter().map(|x| x * factor).collect()),
                )
                .build()
        };
        let ((), snap) = with_registry(|| {
            let out2 = build(2.0, cache.clone()).run(vec![1.0]).unwrap().output;
            let out3 = build(3.0, cache.clone()).run(vec![1.0]).unwrap().output;
            assert_eq!(out2, vec![2.0]);
            assert_eq!(out3, vec![3.0], "config change must invalidate");
        });
        assert_eq!(snap.counters["cache.misses"], 2);
        assert_eq!(snap.counters.get("cache.hits"), None);
    }

    #[test]
    fn rejected_check_recomputes() {
        let cache = Arc::new(mem_cache(1 << 20));
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in_stage = calls.clone();
        let pipeline: Pipeline<Vec<f64>> = Pipeline::builder("cache-check")
            .cached_stage_with_check(
                "picky",
                S::Transform,
                cache.clone(),
                Vec::new(),
                |_| false, // every hit is rejected
                move |v: Vec<f64>, _| {
                    calls_in_stage.fetch_add(1, Ordering::SeqCst);
                    Ok(v)
                },
            )
            .build();
        let ((), snap) = with_registry(|| {
            pipeline.run(vec![1.0]).unwrap();
            pipeline.run(vec![1.0]).unwrap();
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // The lookup itself still hit; the semantic check rejected it.
        assert_eq!(snap.counters["cache.hits"], 1);
    }

    #[test]
    fn hits_record_provenance_with_origin_trace() {
        let ledger = Arc::new(Ledger::new());
        let cache = Arc::new(mem_cache(1 << 20).with_ledger(ledger.clone()));
        let key = CacheKey::compute("s", b"in", b"");
        let ((), _snap) = with_registry(|| {
            cache.put(&key, b"payload", 1, 7).unwrap();
        });
        let (origin, _snap) = with_registry(|| {
            let hit = cache.get(&key).expect("hit");
            hit.origin_trace.expect("origin trace stamped at put")
        });
        assert_eq!(ledger.len(), 1);
        let produced = ledger
            .producer(&drai_provenance::ArtifactId::of(b"payload"))
            .expect("hit recorded as producer of the payload artifact");
        assert_eq!(produced.operation, "cache_hit");
        assert_eq!(produced.params["stage"], "s");
        assert_eq!(produced.params["origin_trace"], origin.to_string());
        assert!(produced.trace.is_some(), "hit stamped with current trace");
    }

    #[test]
    fn entry_decode_rejects_wrong_version() {
        let entry = encode_entry(CodecId::Raw, None, 0, 0, b"p");
        // Version field sits at bytes 4..12.
        let mut bad = entry.clone();
        bad[4] ^= 0xFF;
        assert!(decode_entry(&bad).is_err());
        assert!(decode_entry(&entry).is_ok());
    }
}
