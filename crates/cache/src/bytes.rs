//! Minimal exact binary (de)serialization helpers for cache payloads.
//!
//! Cache identity is byte identity: the key digests the serialized
//! input, and hit/miss equivalence demands that serialization round-trip
//! values *bitwise* (text formatting of floats would silently change
//! keys between runs). These little-endian, length-framed helpers give
//! artifact types an exact encoding without pulling in a serde stack —
//! `drai-domains` uses them to implement [`crate::CacheBytes`] for its
//! pipeline artifacts.

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` bitwise (NaN payloads survive).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `f64` slice: length then bitwise values.
    ///
    /// Converted in fixed-size blocks through a stack buffer: this path
    /// serializes every field stack on every cached-stage invocation
    /// (the key digests the input bytes), so it must run at memcpy-like
    /// speed, not one 8-byte append per element.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 8);
        let mut block = [0u8; 8 * 256];
        for chunk in vs.chunks(256) {
            for (slot, &v) in block.chunks_exact_mut(8).zip(chunk) {
                slot.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            self.buf.extend_from_slice(&block[..chunk.len() * 8]);
        }
    }

    /// Append raw bytes with a length prefix.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_u64(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Append a UTF-8 string with a length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Consume into the serialized bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked reader over bytes produced by [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `data`.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("truncated: need {n} bytes at offset {}", self.pos))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Read a bitwise `f64`.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed `f64` slice (bulk-converted; the warm
    /// cache path decodes whole field stacks through here).
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, String> {
        let n =
            usize::try_from(self.u64()?).map_err(|_| "f64 slice length overflows".to_string())?;
        if n.saturating_mul(8) > self.remaining() {
            return Err(format!("truncated f64 slice: {n} values declared"));
        }
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect())
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n =
            usize::try_from(self.u64()?).map_err(|_| "byte slice length overflows".to_string())?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, String> {
        std::str::from_utf8(self.bytes()?).map_err(|e| format!("invalid utf-8: {e}"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Error unless every byte was consumed (catches framing drift).
    pub fn expect_end(&self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after payload", self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u64(u64::MAX);
        w.put_f64(f64::NAN);
        w.put_f64_slice(&[1.5, -0.0, f64::INFINITY]);
        w.put_bytes(b"raw");
        w.put_str("stage-name");
        let buf = w.finish();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.f64().unwrap().is_nan());
        let v = r.f64_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1.5);
        assert!(v[1] == 0.0 && v[1].is_sign_negative());
        assert_eq!(v[2], f64::INFINITY);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "stage-name");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_errors_cleanly() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[1, 2, 3, 4]);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf[..buf.len() - 1]);
        assert!(r.bytes().is_err());
        // Declared length far beyond the buffer must not allocate.
        let mut w2 = ByteWriter::new();
        w2.put_u64(u64::MAX);
        let buf2 = w2.finish();
        assert!(ByteReader::new(&buf2).f64_vec().is_err());
        assert!(ByteReader::new(&buf2).bytes().is_err());
    }

    #[test]
    fn expect_end_flags_trailing() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
        r.u8().unwrap();
        r.expect_end().unwrap();
    }
}
