//! Unified telemetry for the DRAI stack.
//!
//! A [`Registry`] holds named [`Counter`]s, [`Gauge`]s, and log2-bucket
//! latency [`Histogram`]s, plus a log of completed [`SpanRecord`]s from
//! scoped timers. All hot-path operations are single atomic instructions
//! so instrumentation is safe inside pipeline stage loops and I/O worker
//! threads. [`Snapshot`] freezes the registry into plain data and the
//! [`export`] module renders it as JSON, JSONL, or criterion-style
//! `estimates.json` files consumed by `scripts/summarize_bench.py`.
//!
//! The metric namespace is a public interface: dashboards, the bench
//! summarizer, and regression tests key on exact dotted names. Every
//! family in use is registered in [`METRIC_FAMILIES`], and the
//! `telemetry-names` rule of `drai-lint` checks both directions —
//! every name emitted in code unifies with a registered family, and
//! every registered family is emitted somewhere. To add a metric,
//! add its family here and emit it in the same change.
//!
//! Producers: `pipeline.*` comes from drai-core; `io.{prefetch,shard,
//! codec,sink}.*` from drai-io; `io.{fault,retry}.*` from the fault/
//! retry layer; `*.ns` is the histogram every [`Span`] records on drop.
//!
//! ```
//! use drai_telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("io.bytes").add(4096);
//! {
//!     let span = reg.span("pipeline.demo.validate");
//!     span.add_items(128);
//!     // ... stage work ...
//! } // span records its duration on drop
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["io.bytes"], 4096);
//! assert_eq!(snap.spans[0].items, 128);
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

pub mod export;

pub use export::write_criterion_estimates;

/// Number of log2 latency buckets: bucket `i` holds values with
/// `ilog2(v) == i` (bucket 0 also holds 0), so the range spans 1 ns to
/// ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Registered metric families. Dotted patterns; a `*` segment stands
/// for one or more name segments filled in at emission time (pipeline
/// and stage names, codec ids, fault kinds).
///
/// This list is the contract between producers and consumers of the
/// namespace, enforced by the `telemetry-names` lint rule: emitting an
/// unregistered name or registering a never-emitted family both fail
/// CI.
pub const METRIC_FAMILIES: &[&str] = &[
    // drai-core pipeline stages (counter, counter, counter, span histogram)
    "pipeline.*.*.records",
    "pipeline.*.*.bytes",
    "pipeline.*.*.retries",
    "pipeline.*.refinements",
    // drai-io prefetch workers
    "io.prefetch.items",
    "io.prefetch.work_ns",
    "io.prefetch.wait_ns",
    "io.prefetch.reorder_depth",
    // drai-io shard writer/reader, including the resilience counters
    "io.shard.records",
    "io.shard.bytes_in",
    "io.shard.bytes_out",
    "io.shard.encode_ns",
    "io.shard.write_ns",
    "io.shard.compression_permille",
    "io.shard.verify_rewrites",
    "io.shard.quarantined",
    "io.shard.records_lost",
    // drai-io codecs (per-codec id)
    "io.codec.*.encode_ns",
    "io.codec.*.decode_ns",
    "io.codec.*.bytes_in",
    "io.codec.*.bytes_out",
    // drai-io sink
    "io.sink.bytes_written",
    "io.sink.files_written",
    "io.sink.bytes_read",
    "io.sink.fsync_ns",
    "io.sink.dirsync_ns",
    // fault injection
    "io.fault.injected",
    "io.fault.write_transient",
    "io.fault.write_permanent",
    "io.fault.read_transient",
    "io.fault.corrupted",
    // retry layer
    "io.retry.attempts",
    "io.retry.backoff_ns",
    "io.retry.exhausted",
    // every Span records `<span name>.ns` on drop
    "*.ns",
];

/// Monotonic elapsed-time source.
///
/// This is the only sanctioned way for workspace code to read time:
/// the `no-wallclock` lint rule confines `Instant::now`/
/// `SystemTime::now` to this crate (and the retry layer's injectable
/// clock) so timing stays behind one seam and data-plane behaviour
/// never depends on the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max_seen: AtomicI64,
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max_seen.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` and return the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max_seen.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since creation/reset.
    pub fn max(&self) -> i64 {
        self.max_seen.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 histogram for durations (or any u64 magnitude).
///
/// Recording is two relaxed atomic adds plus two atomic min/max — no
/// locks, no allocation — so it can sit inside per-record loops.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Smallest observation, or 0 with no data.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile from bucket midpoints (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Midpoint of bucket i: [2^i, 2^(i+1)).
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return (lo + (hi - lo) / 2).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    fn bucket_counts(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect()
    }
}

/// A completed span: one timed, named unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `pipeline.climate.regrid`).
    pub name: String,
    /// Start offset in ns from the registry's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns (at least 1).
    pub dur_ns: u64,
    /// Items processed inside the span (0 when not applicable).
    pub items: u64,
    /// Bytes processed inside the span (0 when not applicable).
    pub bytes: u64,
}

/// Live scoped timer; records a [`SpanRecord`] (and a `<name>.ns`
/// histogram observation) into its registry when dropped.
pub struct Span<'a> {
    registry: &'a Registry,
    name: String,
    start: Instant,
    start_ns: u64,
    items: AtomicU64,
    bytes: AtomicU64,
}

impl Span<'_> {
    /// Attribute `n` processed items to this span.
    pub fn add_items(&self, n: u64) {
        self.items.fetch_add(n, Ordering::Relaxed);
    }

    /// Attribute `n` processed bytes to this span.
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Span name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur_ns = (self.start.elapsed().as_nanos() as u64).max(1);
        self.registry
            .histogram(&format!("{}.ns", self.name))
            .record(dur_ns);
        self.registry.spans.lock().push(SpanRecord {
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            dur_ns,
            items: self.items.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        });
    }
}

/// Frozen copy of a registry's state, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → (current, high-water mark).
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// Histogram name → summary.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

/// Scalar summary of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty log2 buckets as `(bucket_index, count)`.
    pub buckets: Vec<(u8, u64)>,
}

impl Snapshot {
    /// Spans with the given name, in completion order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Full JSON document (see [`export::to_json`]).
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// JSONL, one metric or span per line (see [`export::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self)
    }
}

/// Holds all named metrics. Cheap to share (`&Registry` or the
/// process-wide [`Registry::global`]).
pub struct Registry {
    epoch: Instant,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .field("spans", &self.spans.lock().len())
            .finish()
    }
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry {
            epoch: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Process-wide registry used by the instrumented pipeline and I/O
    /// layers.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(v) = map.read().get(name) {
            return v.clone();
        }
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default()))
            .clone()
    }

    /// Named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// Named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// Named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// Start a scoped timer; it records itself when dropped.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            registry: self,
            name: name.into(),
            start: Instant::now(),
            start_ns: self.epoch.elapsed().as_nanos() as u64,
            items: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Time `f` under `name`, returning its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _span = self.span(name);
        f()
    }

    /// Freeze current state into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), (v.get(), v.max())))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: v.count(),
                            sum: v.sum(),
                            min: v.min(),
                            max: v.max(),
                            mean: v.mean(),
                            p50: v.quantile(0.50),
                            p90: v.quantile(0.90),
                            p99: v.quantile(0.99),
                            buckets: v.bucket_counts(),
                        },
                    )
                })
                .collect(),
            spans: self.spans.lock().clone(),
        }
    }

    /// Drop every metric and span. Handed-out `Arc`s keep working but
    /// are no longer reachable from the registry.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.counter("c").incr();
        assert_eq!(reg.counter("c").get(), 4);

        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 7, 8, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_017);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        // 0 and the two 1s share bucket 0; 7 is bucket 2; 8 bucket 3.
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], (0, 3));
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn spans_record_on_drop() {
        let reg = Registry::new();
        {
            let span = reg.span("work.unit");
            span.add_items(10);
            span.add_bytes(4096);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _s = reg.span("work.unit");
        }
        let snap = reg.snapshot();
        let spans = snap.spans_named("work.unit");
        assert_eq!(spans.len(), 2);
        assert!(spans[0].dur_ns >= 1_000_000);
        assert_eq!(spans[0].items, 10);
        assert_eq!(spans[0].bytes, 4096);
        assert!(spans[1].start_ns >= spans[0].start_ns);
        // Drop also feeds the latency histogram.
        assert_eq!(snap.histograms["work.unit.ns"].count, 2);
    }

    #[test]
    fn time_helper_returns_value() {
        let reg = Registry::new();
        let out = reg.time("calc", || 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(reg.snapshot().spans_named("calc").len(), 1);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let c = reg.counter("hot");
                    let h = reg.histogram("lat");
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(reg.counter("hot").get(), 80_000);
        assert_eq!(reg.histogram("lat").count(), 80_000);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("a").incr();
        reg.time("s", || ());
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        // Histogram created by the span drop is also gone.
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn metric_families_are_well_formed() {
        assert!(!METRIC_FAMILIES.is_empty());
        for fam in METRIC_FAMILIES {
            let segs: Vec<&str> = fam.split('.').collect();
            assert!(segs.len() >= 2, "family `{fam}` needs >= 2 segments");
            for seg in segs {
                assert!(
                    seg == "*"
                        || (!seg.is_empty()
                            && seg
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
                    "family `{fam}` has a bad segment `{seg}`"
                );
            }
        }
    }
}
