//! Unified telemetry for the DRAI stack.
//!
//! A [`Registry`] holds named [`Counter`]s, [`Gauge`]s, and log2-bucket
//! latency [`Histogram`]s, plus a log of completed [`SpanRecord`]s from
//! scoped timers. All hot-path operations are single atomic instructions
//! so instrumentation is safe inside pipeline stage loops and I/O worker
//! threads. [`Snapshot`] freezes the registry into plain data and the
//! [`export`] module renders it as JSON, JSONL, or criterion-style
//! `estimates.json` files consumed by `scripts/summarize_bench.py`.
//!
//! # Hierarchical traces
//!
//! Spans are not just a flat log: every span carries a [`TraceId`]
//! (one per causally connected run), its own [`SpanId`], and the id of
//! the span that was *current* when it was opened. Currency is a
//! thread-local stack of [`TraceContext`]s: entering a span with
//! [`Span::enter`] pushes, dropping the guard pops. Crossing a thread
//! boundary is explicit — capture [`TraceContext::current`] (or
//! [`Span::context`]) when the closure is *created* and
//! [`TraceContext::attach`] it inside the worker, so trace shape is
//! deterministic no matter how a thread pool schedules the work. The
//! [`trace`] module reassembles the records into trees and exports
//! Chrome trace-event JSON, folded flamegraph stacks, and a
//! critical-path summary.
//!
//! [`Registry::current`] returns the context's registry (falling back
//! to [`Registry::global`]); instrumented library code resolves its
//! metrics through it so a private per-test registry captures worker
//! metrics too.
//!
//! The metric namespace is a public interface: dashboards, the bench
//! summarizer, and regression tests key on exact dotted names. Every
//! family in use — histogram/counter/gauge names *and* span names —
//! is registered in [`METRIC_FAMILIES`], and the `telemetry-names`
//! rule of `drai-lint` checks both directions — every name emitted in
//! code unifies with a registered family, and every registered family
//! is emitted somewhere. To add a metric or span, add its family here
//! and emit it in the same change.
//!
//! Producers: `pipeline.*` comes from drai-core; `executor.*` from
//! drai-core's streaming batch executor (queue depth, send stalls,
//! per-stage in-flight, fast-path short-circuits); `io.{prefetch,
//! shard,codec,sink}.*` from drai-io; `io.{fault,retry}.*` from the
//! fault/retry layer; `domain.*` from drai-domains; `cache.*` from the
//! drai-cache stage-result cache; `bench.*` from the
//! `drai-bench-report` binary; `monitor.*` from the [`monitor`]
//! sampler's health layer; `*.ns` is the histogram every [`Span`]
//! records on drop.
//!
//! The [`monitor`] module adds the *live* view: a background sampler
//! on an injectable clock that turns the registry into bounded
//! ring-buffer time series (deltas, rates, gauge window watermarks),
//! evaluates declarative health rules per sample, and diagnoses
//! streaming-executor backpressure post-run.
//!
//! ```
//! use drai_telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("io.bytes").add(4096);
//! {
//!     let span = reg.span("pipeline.demo.validate");
//!     span.add_items(128);
//!     let _in_stage = span.enter(); // children opened now nest under it
//!     // ... stage work ...
//! } // span records its duration on drop
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["io.bytes"], 4096);
//! assert_eq!(snap.spans[0].items, 128);
//! ```

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

pub mod export;
pub mod monitor;
pub mod trace;

pub use export::write_criterion_estimates;

/// Number of log2 latency buckets: bucket `i` holds values with
/// `ilog2(v) == i` (bucket 0 also holds 0), so the range spans 1 ns to
/// ~584 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Registered metric and span families. Dotted patterns; a `*` segment
/// stands for one or more name segments filled in at emission time
/// (pipeline and stage names, codec ids, fault kinds).
///
/// This list is the contract between producers and consumers of the
/// namespace, enforced by the `telemetry-names` lint rule: emitting an
/// unregistered name or registering a never-emitted family both fail
/// CI. Span names (`Registry::span` / `Registry::time`) are validated
/// against the same list.
pub const METRIC_FAMILIES: &[&str] = &[
    // drai-core pipeline stages (counter, counter, counter, histogram,
    // span histogram)
    "pipeline.*.*.records",
    "pipeline.*.*.bytes",
    "pipeline.*.*.retries",
    "pipeline.*.*.item_ns",
    "pipeline.*.refinements",
    // drai-core streaming executor (gauge, histogram, counter, gauge,
    // counter)
    "executor.queue_depth",
    "executor.stall_ns",
    "executor.shortcircuits",
    "executor.*.*.inflight",
    "executor.items_completed",
    // drai-telemetry monitor sampler: one count per sample tick, one
    // per health violation, and a per-rule breakdown (rule names are
    // single segments supplied to HealthSpec::rule)
    "monitor.samples",
    "monitor.health.violations",
    "monitor.rule.*",
    // drai-io prefetch workers
    "io.prefetch.items",
    "io.prefetch.work_ns",
    "io.prefetch.wait_ns",
    "io.prefetch.reorder_depth",
    // drai-io shard writer/reader, including the resilience counters
    "io.shard.records",
    "io.shard.bytes_in",
    "io.shard.bytes_out",
    "io.shard.encode_ns",
    "io.shard.write_ns",
    "io.shard.compression_permille",
    "io.shard.verify_rewrites",
    "io.shard.quarantined",
    "io.shard.records_lost",
    // drai-io codecs (per-codec id)
    "io.codec.*.encode_ns",
    "io.codec.*.decode_ns",
    "io.codec.*.bytes_in",
    "io.codec.*.bytes_out",
    // drai-io sink
    "io.sink.bytes_written",
    "io.sink.files_written",
    "io.sink.bytes_read",
    "io.sink.fsync_ns",
    "io.sink.dirsync_ns",
    // fault injection
    "io.fault.injected",
    "io.fault.write_transient",
    "io.fault.write_permanent",
    "io.fault.read_transient",
    "io.fault.corrupted",
    // retry layer
    "io.retry.attempts",
    "io.retry.backoff_ns",
    "io.retry.exhausted",
    // drai-sched multi-tenant scheduler: admission + lifecycle
    // counters, queue/in-flight gauges (global and per-tenant; tenant
    // ids are sanitized to one [a-z0-9_]+ segment), wait/run
    // histograms, and a per-tenant job span
    "sched.submitted",
    "sched.admitted",
    "sched.rejected.backpressure",
    "sched.rejected.quota",
    "sched.rejected.deadline",
    "sched.shed",
    "sched.dispatched",
    "sched.completed",
    "sched.failed",
    "sched.cancelled",
    "sched.queued",
    "sched.queued_cost",
    "sched.inflight_cost",
    "sched.tenant.*.queued",
    "sched.wait_ns",
    "sched.run_ns",
    "sched.job.*",
    // drai-cache stage-result cache (counters + get/put spans)
    "cache.hits",
    "cache.misses",
    "cache.evictions",
    "cache.quarantined",
    "cache.get",
    "cache.put",
    // span tree: drai-core pipeline run/stage spans
    "pipeline.*.run",
    "pipeline.*.run_batch",
    "pipeline.*.run_streaming",
    "pipeline.*.run_iterative",
    "pipeline.*.*",
    // span tree: drai-domains archetype runs
    "domain.*.run",
    "domain.*.run_batch",
    "domain.*.ingest",
    // span tree: drai-io worker and shard container spans
    "io.prefetch.worker",
    "io.shard.write_all",
    "io.shard.read_all",
    // span tree: drai-bench-report harness
    "bench.*",
    // every Span records `<span name>.ns` on drop
    "*.ns",
];

/// Monotonic elapsed-time source.
///
/// This is the only sanctioned way for workspace code to read time:
/// the `no-wallclock` lint rule confines `Instant::now`/
/// `SystemTime::now` to this crate (and the retry layer's injectable
/// clock) so timing stays behind one seam and data-plane behaviour
/// never depends on the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight work).
///
/// Alongside the lifetime high/low watermarks, a gauge keeps a second
/// pair of *window* watermarks that the monitor sampler drains with
/// [`Gauge::take_window`]: between two samples the gauge may spike and
/// fall back, and the last-written value alone would hide the
/// excursion entirely.
///
/// All watermarks start at the initial level 0, matching the
/// semantics of a freshly created gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max_seen: AtomicI64,
    min_seen: AtomicI64,
    win_max: AtomicI64,
    win_min: AtomicI64,
}

/// One sampling window of a gauge, drained by [`Gauge::take_window`]:
/// the level at sample time plus the lowest and highest levels touched
/// since the previous sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeWindow {
    /// Level at sample time.
    pub value: i64,
    /// Lowest level touched during the window (`<= value`).
    pub lo: i64,
    /// Highest level touched during the window (`>= value`).
    pub hi: i64,
}

impl Gauge {
    #[inline]
    fn watermark(&self, v: i64) {
        self.max_seen.fetch_max(v, Ordering::Relaxed);
        self.min_seen.fetch_min(v, Ordering::Relaxed);
        self.win_max.fetch_max(v, Ordering::Relaxed);
        self.win_min.fetch_min(v, Ordering::Relaxed);
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.watermark(v);
    }

    /// Adjust the level by `delta` and return the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.watermark(new);
        new
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since creation/reset.
    pub fn max(&self) -> i64 {
        self.max_seen.load(Ordering::Relaxed)
    }

    /// Low-water mark since creation/reset (0 until the level first
    /// drops below its initial 0).
    pub fn min(&self) -> i64 {
        self.min_seen.load(Ordering::Relaxed)
    }

    /// Drain the current sampling window: return the level plus the
    /// low/high watermarks touched since the previous `take_window`
    /// (or creation), then restart the window at the current level.
    ///
    /// Concurrent updates racing the drain land in one window or the
    /// other, never nowhere; the returned `lo`/`hi` always bracket
    /// `value`.
    pub fn take_window(&self) -> GaugeWindow {
        let value = self.value.load(Ordering::Relaxed);
        let hi = self.win_max.swap(value, Ordering::Relaxed).max(value);
        let lo = self.win_min.swap(value, Ordering::Relaxed).min(value);
        GaugeWindow { value, lo, hi }
    }

    /// RAII increment: `+1` now, `-1` when the guard drops. The only
    /// way to keep an in-flight gauge honest across early returns and
    /// unwinds — a manual `add(-1)` on every exit path eventually
    /// misses one, and the metric drifts up forever.
    #[inline]
    pub fn inc_scope(&self) -> GaugeGuard<'_> {
        self.add(1);
        GaugeGuard { gauge: self }
    }
}

/// Guard returned by [`Gauge::inc_scope`]; decrements on drop.
#[must_use = "dropping the guard immediately undoes the increment"]
#[derive(Debug)]
pub struct GaugeGuard<'a> {
    gauge: &'a Gauge,
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// Fixed-bucket log2 histogram for durations (or any u64 magnitude).
///
/// Recording is two relaxed atomic adds plus two atomic min/max — no
/// locks, no allocation — so it can sit inside per-record loops.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Smallest observation, or 0 with no data.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile from bucket midpoints (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Midpoint of bucket i: [2^i, 2^(i+1)).
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return (lo + (hi - lo) / 2).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    fn bucket_counts(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect()
    }
}

/// Identifier of one causally connected run. Allocated process-wide so
/// ids stay unique across registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of one span within its registry (unique per registry,
/// never 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

thread_local! {
    static CONTEXT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The propagation unit of a trace: which registry to record into,
/// which trace the work belongs to, and which span is the parent of
/// anything opened under it.
///
/// Handoff rules:
/// - Same thread: [`Span::enter`] pushes the span's context onto a
///   thread-local stack; the returned guard pops it.
/// - Across threads: capture the context when the closure is
///   *created* ([`TraceContext::current`] or [`Span::context`]) and
///   [`attach`](TraceContext::attach) it inside the worker. Capturing
///   at creation time (not at run time) is what makes trace shape
///   independent of how a pool schedules the closure.
#[derive(Debug, Clone)]
pub struct TraceContext {
    registry: Registry,
    trace: TraceId,
    parent: Option<SpanId>,
}

impl TraceContext {
    /// Start a fresh trace rooted in `registry`. Spans opened while
    /// this context is attached become roots of the new trace.
    pub fn root(registry: &Registry) -> TraceContext {
        TraceContext {
            registry: registry.clone(),
            trace: TraceId::next(),
            parent: None,
        }
    }

    /// The context attached to the current thread, if any.
    pub fn current() -> Option<TraceContext> {
        CONTEXT.with(|stack| stack.borrow().last().cloned())
    }

    /// Registry this context records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Trace this context belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Span that new child spans will attach under (`None` → root).
    pub fn parent(&self) -> Option<SpanId> {
        self.parent
    }

    /// Make this context current on this thread until the guard drops.
    /// Guards must drop in reverse attach order (RAII scoping does
    /// this naturally).
    pub fn attach(&self) -> ContextGuard {
        CONTEXT.with(|stack| stack.borrow_mut().push(self.clone()));
        ContextGuard {
            _not_send: PhantomData,
        }
    }

    /// Run `f` with this context attached.
    pub fn scope<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.attach();
        f()
    }
}

/// RAII guard from [`TraceContext::attach`] / [`Span::enter`]; pops
/// the thread-local context stack on drop. Not `Send`: it must drop on
/// the thread that created it.
pub struct ContextGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// A completed span: one timed, named unit of work, placed in its
/// trace tree by `(trace, id, parent)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `pipeline.climate.regrid`).
    pub name: String,
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (unique within the registry).
    pub id: SpanId,
    /// Id of the span that was current when this one opened; `None`
    /// for trace roots.
    pub parent: Option<SpanId>,
    /// Start offset in ns from the registry's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns (at least 1).
    pub dur_ns: u64,
    /// Items processed inside the span (0 when not applicable).
    pub items: u64,
    /// Bytes processed inside the span (0 when not applicable).
    pub bytes: u64,
}

/// Live scoped timer; records a [`SpanRecord`] (and a `<name>.ns`
/// histogram observation) into its registry when dropped.
///
/// On creation the span adopts the thread's current [`TraceContext`]
/// (same registry only) as its parent; otherwise it roots a new
/// trace. Use [`Span::enter`] to make it the parent of subsequent
/// spans on this thread, and [`Span::context`] to hand it across a
/// thread boundary.
pub struct Span {
    registry: Registry,
    name: String,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    start: Instant,
    start_ns: u64,
    items: AtomicU64,
    bytes: AtomicU64,
}

impl Span {
    /// Attribute `n` processed items to this span.
    pub fn add_items(&self, n: u64) {
        self.items.fetch_add(n, Ordering::Relaxed);
    }

    /// Attribute `n` processed bytes to this span.
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Span name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Trace this span belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// A context that parents new spans under this one — capture it
    /// before spawning workers and `attach` it inside them.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            registry: self.registry.clone(),
            trace: self.trace,
            parent: Some(self.id),
        }
    }

    /// Make this span the current parent on this thread until the
    /// guard drops. Keep the guard narrower than the span itself.
    pub fn enter(&self) -> ContextGuard {
        self.context().attach()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = (self.start.elapsed().as_nanos() as u64).max(1);
        self.registry
            .histogram(&format!("{}.ns", self.name))
            .record(dur_ns);
        self.registry.inner.spans.lock().push(SpanRecord {
            name: std::mem::take(&mut self.name),
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            start_ns: self.start_ns,
            dur_ns,
            items: self.items.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        });
    }
}

/// Frozen statistics of one gauge: the level at snapshot time plus the
/// lifetime low/high watermarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeStat {
    /// Level at snapshot time.
    pub value: i64,
    /// Lifetime low-water mark.
    pub min: i64,
    /// Lifetime high-water mark.
    pub max: i64,
}

/// Frozen copy of a registry's state, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level and lifetime watermarks.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histogram name → summary.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

/// Scalar summary of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty log2 buckets as `(bucket_index, count)`.
    pub buckets: Vec<(u8, u64)>,
}

impl Snapshot {
    /// Spans with the given name, in completion order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Full JSON document (see [`export::to_json`]).
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// JSONL, one metric or span per line (see [`export::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self)
    }

    /// Reassemble the span log into trace trees (see
    /// [`trace::build_forest`]).
    pub fn trace_forest(&self) -> Vec<trace::TraceNode> {
        trace::build_forest(&self.spans)
    }
}

struct RegistryInner {
    epoch: Instant,
    next_span_id: AtomicU64,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Holds all named metrics. A cheap-clone handle (`Arc` inside): clone
/// it to share across threads, or use the process-wide
/// [`Registry::global`].
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.read().len())
            .field("gauges", &self.inner.gauges.read().len())
            .field("histograms", &self.inner.histograms.read().len())
            .field("spans", &self.inner.spans.lock().len())
            .finish()
    }
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Process-wide registry used by the instrumented pipeline and I/O
    /// layers when no [`TraceContext`] is attached.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The registry instrumented library code should record into: the
    /// attached [`TraceContext`]'s registry, else [`Registry::global`].
    pub fn current() -> Registry {
        match TraceContext::current() {
            Some(ctx) => ctx.registry,
            None => Registry::global().clone(),
        }
    }

    /// Whether two handles point at the same underlying registry.
    pub fn same_as(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(v) = map.read().get(name) {
            return v.clone();
        }
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default()))
            .clone()
    }

    /// Named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.inner.counters, name)
    }

    /// Named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.inner.gauges, name)
    }

    /// Named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.inner.histograms, name)
    }

    /// Start a scoped timer; it records itself when dropped.
    ///
    /// If the thread's current [`TraceContext`] records into this same
    /// registry, the span joins that trace under the context's parent;
    /// otherwise it roots a new trace.
    pub fn span(&self, name: impl Into<String>) -> Span {
        let id = SpanId(self.inner.next_span_id.fetch_add(1, Ordering::Relaxed));
        let (trace, parent) = match TraceContext::current() {
            Some(ctx) if ctx.registry.same_as(self) => (ctx.trace, ctx.parent),
            _ => (TraceId::next(), None),
        };
        Span {
            registry: self.clone(),
            name: name.into(),
            trace,
            id,
            parent,
            start: Instant::now(),
            start_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            items: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Time `f` under `name` (entered, so spans `f` opens nest under
    /// it), returning its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let span = self.span(name);
        let _ctx = span.enter();
        f()
    }

    /// Freeze current state into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeStat {
                            value: v.get(),
                            min: v.min(),
                            max: v.max(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: v.count(),
                            sum: v.sum(),
                            min: v.min(),
                            max: v.max(),
                            mean: v.mean(),
                            p50: v.quantile(0.50),
                            p90: v.quantile(0.90),
                            p99: v.quantile(0.99),
                            buckets: v.bucket_counts(),
                        },
                    )
                })
                .collect(),
            spans: self.inner.spans.lock().clone(),
        }
    }

    /// Current value of every counter, in name order. A cheap read for
    /// the [`monitor`] sampler: no histogram summarisation, no span
    /// cloning, just one pass under the counter read lock.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// `(count, sum)` of every histogram, in name order. Like
    /// [`Registry::counter_values`], skips the per-bucket summary work
    /// a full snapshot does.
    pub fn histogram_totals(&self) -> Vec<(String, (u64, u64))> {
        self.inner
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), (v.count(), v.sum())))
            .collect()
    }

    /// Drain the sampling window of every gauge (see
    /// [`Gauge::take_window`]), in name order. Destructive: each call
    /// restarts every gauge's window watermarks at its current level,
    /// so only one sampler should drain a registry.
    pub fn take_gauge_windows(&self) -> Vec<(String, GaugeWindow)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.take_window()))
            .collect()
    }

    /// Drop every metric and span. Handed-out `Arc`s keep working but
    /// are no longer reachable from the registry.
    pub fn reset(&self) {
        self.inner.counters.write().clear();
        self.inner.gauges.write().clear();
        self.inner.histograms.write().clear();
        self.inner.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.counter("c").incr();
        assert_eq!(reg.counter("c").get(), 4);

        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 5);
        assert_eq!(g.min(), 0, "initial level 0 is the low-water mark");
        g.add(-7);
        assert_eq!(g.min(), -4);
        assert_eq!(g.max(), 5);
    }

    #[test]
    fn gauge_window_watermarks_drain_and_restart() {
        let g = Gauge::default();
        g.set(5);
        g.set(-3);
        g.set(2);
        // First window saw the full excursion [-3, 5] and ends at 2.
        assert_eq!(
            g.take_window(),
            GaugeWindow {
                value: 2,
                lo: -3,
                hi: 5
            }
        );
        // A quiet window collapses to the current level...
        assert_eq!(
            g.take_window(),
            GaugeWindow {
                value: 2,
                lo: 2,
                hi: 2
            }
        );
        // ...while lifetime watermarks keep the full history.
        assert_eq!(g.min(), -3);
        assert_eq!(g.max(), 5);
        // A spike-and-return inside one window is still captured.
        g.add(10);
        g.add(-10);
        let w = g.take_window();
        assert_eq!((w.value, w.hi), (2, 12));
    }

    #[test]
    fn gauge_max_is_exact_under_concurrent_add() {
        let reg = Registry::new();
        let g = reg.gauge("inflight");
        // 8 threads each ramp up to 1000 then back down; the true
        // high-water mark is at most 8000 and at least 1000 (one
        // thread's full ramp), and the final level is exactly 0.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1);
                    }
                    for _ in 0..1000 {
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(g.get(), 0);
        assert!(g.max() >= 1000, "max {} lost updates", g.max());
        assert!(g.max() <= 8000, "max {} overcounted", g.max());
        // The level never went below its initial 0.
        assert_eq!(g.min(), 0);
        // The window watermarks saw the same excursion: draining the
        // window after the ramps reports the same exact bounds, and
        // the next window restarts at the settled level.
        let w = g.take_window();
        assert_eq!(w.value, 0);
        assert_eq!(w.lo, 0);
        assert!((1000..=8000).contains(&w.hi), "window hi {}", w.hi);
        assert_eq!(
            g.take_window(),
            GaugeWindow {
                value: 0,
                lo: 0,
                hi: 0
            },
            "drained window must restart at the current level"
        );
        // Snapshot exposes the same watermarks.
        let stat = reg.snapshot().gauges["inflight"];
        assert_eq!((stat.value, stat.min), (0, 0));
        assert!(stat.max >= 1000);
    }

    #[test]
    fn gauge_scope_guard_balances() {
        let g = Gauge::default();
        {
            let _outer = g.inc_scope();
            let _inner = g.inc_scope();
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        assert_eq!(g.max(), 2);
    }

    #[test]
    fn gauge_scope_guard_decrements_on_unwind() {
        let g = Gauge::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _busy = g.inc_scope();
            panic!("stage failed");
        }));
        assert!(r.is_err());
        assert_eq!(g.get(), 0, "guard must decrement on unwind");
        assert_eq!(g.max(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 7, 8, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_017);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        // 0 and the two 1s share bucket 0; 7 is bucket 2; 8 bucket 3.
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], (0, 3));
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantile_is_that_sample() {
        let h = Histogram::default();
        h.record(100);
        // Whatever the bucket midpoint says, clamping to [min, max]
        // must return the only observation for every q.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100, "q={q}");
        }
    }

    #[test]
    fn quantile_at_exact_log2_boundaries() {
        let h = Histogram::default();
        // Each value sits exactly on a bucket lower bound: 1 → bucket
        // 0, 2 → 1, 4 → 2, 8 → 3.
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(
            h.bucket_counts(),
            vec![(0, 1), (1, 1), (2, 1), (3, 1)],
            "one observation per boundary bucket"
        );
        // q=0 resolves to the first bucket, clamped up to min=1.
        assert_eq!(h.quantile(0.0), 1);
        // q=1 resolves to the last bucket [8, 15], clamped down to
        // max=8.
        assert_eq!(h.quantile(1.0), 8);
        // Quantiles are monotone in q across boundary buckets.
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
        // All results stay inside the observed range.
        for &q in &qs {
            assert!((1..=8).contains(&q));
        }
    }

    #[test]
    fn spans_record_on_drop() {
        let reg = Registry::new();
        {
            let span = reg.span("work.unit");
            span.add_items(10);
            span.add_bytes(4096);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _s = reg.span("work.unit");
        }
        let snap = reg.snapshot();
        let spans = snap.spans_named("work.unit");
        assert_eq!(spans.len(), 2);
        assert!(spans[0].dur_ns >= 1_000_000);
        assert_eq!(spans[0].items, 10);
        assert_eq!(spans[0].bytes, 4096);
        assert!(spans[1].start_ns >= spans[0].start_ns);
        // Without an entered parent each span roots its own trace.
        assert_ne!(spans[0].trace, spans[1].trace);
        assert_eq!(spans[0].parent, None);
        // Drop also feeds the latency histogram.
        assert_eq!(snap.histograms["work.unit.ns"].count, 2);
    }

    #[test]
    fn entered_spans_nest() {
        let reg = Registry::new();
        {
            let outer = reg.span("outer.run");
            let _in_outer = outer.enter();
            {
                let mid = reg.span("mid.step");
                let _in_mid = mid.enter();
                let _leaf = reg.span("leaf.step");
            }
            let _sibling = reg.span("mid.step");
        }
        let snap = reg.snapshot();
        let outer = snap.spans_named("outer.run")[0].clone();
        let mids = snap.spans_named("mid.step");
        let leaf = snap.spans_named("leaf.step")[0].clone();
        assert_eq!(outer.parent, None);
        for mid in &mids {
            assert_eq!(mid.parent, Some(outer.id));
            assert_eq!(mid.trace, outer.trace);
        }
        assert_eq!(leaf.parent, Some(mids[0].id));
        assert_eq!(leaf.trace, outer.trace);
    }

    #[test]
    fn context_handoff_across_threads_is_deterministic() {
        let reg = Registry::new();
        {
            let stage = reg.span("stage.parallel");
            // Capture at closure-creation time, attach inside workers.
            let ctx = stage.context();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _guard = ctx.attach();
                        let reg = Registry::current();
                        let _w = reg.span("worker.task");
                    });
                }
            });
        }
        let snap = reg.snapshot();
        let stage = snap.spans_named("stage.parallel")[0].clone();
        let workers = snap.spans_named("worker.task");
        assert_eq!(workers.len(), 4);
        for w in workers {
            assert_eq!(w.parent, Some(stage.id), "worker not under stage");
            assert_eq!(w.trace, stage.trace);
        }
    }

    #[test]
    fn current_registry_follows_context() {
        let private = Registry::new();
        // No context: global.
        assert!(Registry::current().same_as(Registry::global()));
        let root = TraceContext::root(&private);
        root.scope(|| {
            assert!(Registry::current().same_as(&private));
        });
        assert!(Registry::current().same_as(Registry::global()));
    }

    #[test]
    fn foreign_registry_context_does_not_leak_parent() {
        let a = Registry::new();
        let b = Registry::new();
        let span_a = a.span("a.root");
        let _in_a = span_a.enter();
        // A span on a *different* registry must not adopt a parent id
        // from registry `a`'s context.
        let span_b = b.span("b.root");
        assert_ne!(span_b.trace_id(), span_a.trace_id());
        drop(span_b);
        let snap = b.snapshot();
        assert_eq!(snap.spans[0].parent, None);
    }

    #[test]
    fn time_helper_returns_value() {
        let reg = Registry::new();
        let out = reg.time("calc", || 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(reg.snapshot().spans_named("calc").len(), 1);
    }

    #[test]
    fn time_helper_nests_children() {
        let reg = Registry::new();
        reg.time("outer.calc", || {
            let _inner = reg.span("inner.calc");
        });
        let snap = reg.snapshot();
        let outer = snap.spans_named("outer.calc")[0].clone();
        let inner = snap.spans_named("inner.calc")[0].clone();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let c = reg.counter("hot");
                    let h = reg.histogram("lat");
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(reg.counter("hot").get(), 80_000);
        assert_eq!(reg.histogram("lat").count(), 80_000);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("a").incr();
        reg.time("s", || ());
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        // Histogram created by the span drop is also gone.
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn metric_families_are_well_formed() {
        assert!(!METRIC_FAMILIES.is_empty());
        for fam in METRIC_FAMILIES {
            let segs: Vec<&str> = fam.split('.').collect();
            assert!(segs.len() >= 2, "family `{fam}` needs >= 2 segments");
            for seg in segs {
                assert!(
                    seg == "*"
                        || (!seg.is_empty()
                            && seg
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
                    "family `{fam}` has a bad segment `{seg}`"
                );
            }
        }
    }
}
