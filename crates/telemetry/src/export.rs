//! Render a [`Snapshot`] as JSON, JSONL, or criterion-compatible
//! `estimates.json` files.
//!
//! The JSON document has four top-level keys:
//!
//! ```json
//! {
//!   "counters":   {"io.shard.bytes_in": 123},
//!   "gauges":     {"io.prefetch.reorder_depth": {"value": 0, "min": 0,
//!                  "max": 3}},
//!   "histograms": {"io.sink.fsync_ns": {"count": 2, "sum": 900, "min": 400,
//!                  "max": 500, "mean": 450.0, "p50": 448, "p90": 500,
//!                  "p99": 500, "buckets": [[8, 2]]}},
//!   "spans":      [{"name": "pipeline.climate.regrid", "trace": 1,
//!                  "id": 4, "parent": 2, "start_ns": 10,
//!                  "dur_ns": 4200, "items": 240, "bytes": 0}]
//! }
//! ```
//!
//! JSONL emits the same data one object per line with a `"kind"`
//! discriminator, suitable for appending across runs.
//! [`write_criterion_estimates`] writes each histogram's mean as
//! `<root>/<name>/new/estimates.json` in the layout
//! `scripts/summarize_bench.py` already consumes.

use std::fmt::Write as _;
use std::path::Path;

use crate::{HistogramSummary, Snapshot, SpanRecord};

/// Escape a string for inclusion in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Keep integers terse but always valid JSON numbers.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

fn histogram_json(h: &HistogramSummary) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|(i, n)| format!("[{i},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        fmt_f64(h.mean),
        h.p50,
        h.p90,
        h.p99,
        buckets.join(",")
    )
}

fn span_json(s: &SpanRecord) -> String {
    let parent = match s.parent {
        Some(p) => p.0.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"name\":\"{}\",\"trace\":{},\"id\":{},\"parent\":{},\
         \"start_ns\":{},\"dur_ns\":{},\"items\":{},\"bytes\":{}}}",
        escape_json(&s.name),
        s.trace.0,
        s.id.0,
        parent,
        s.start_ns,
        s.dur_ns,
        s.items,
        s.bytes
    )
}

/// Render the whole snapshot as one JSON object.
pub fn to_json(snap: &Snapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, g)| {
            format!(
                "\"{}\":{{\"value\":{},\"min\":{},\"max\":{}}}",
                escape_json(k),
                g.value,
                g.min,
                g.max
            )
        })
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| format!("\"{}\":{}", escape_json(k), histogram_json(h)))
        .collect();
    let spans: Vec<String> = snap.spans.iter().map(span_json).collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"spans\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        spans.join(",")
    )
}

/// Render the snapshot as JSONL: one object per metric/span, each
/// tagged with a `"kind"` field.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(k),
            v
        );
    }
    for (k, g) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{},\"min\":{},\"max\":{}}}",
            escape_json(k),
            g.value,
            g.min,
            g.max
        );
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"summary\":{}}}",
            escape_json(k),
            histogram_json(h)
        );
    }
    for s in &snap.spans {
        let _ = writeln!(out, "{{\"kind\":\"span\",\"span\":{}}}", span_json(s));
    }
    out
}

/// Write each histogram's mean as a criterion-style estimate:
/// `<root>/<histogram name with '.' as '/'>/new/estimates.json`, the
/// layout `scripts/summarize_bench.py` walks. Returns the number of
/// files written.
pub fn write_criterion_estimates(snap: &Snapshot, root: &Path) -> std::io::Result<usize> {
    let mut written = 0;
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        let mut dir = root.to_path_buf();
        for seg in name.split('.') {
            if !seg.is_empty() {
                dir.push(seg);
            }
        }
        dir.push("new");
        std::fs::create_dir_all(&dir)?;
        let json = format!(
            "{{\"mean\":{{\"point_estimate\":{}}},\"median\":{{\"point_estimate\":{}}},\
             \"sample_count\":{}}}",
            fmt_f64(h.mean),
            h.p50,
            h.count
        );
        std::fs::write(dir.join("estimates.json"), json)?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.depth").set(4);
        reg.gauge("b.depth").set(2);
        reg.histogram("c.ns").record(100);
        reg.histogram("c.ns").record(300);
        {
            let s = reg.span("stage.one");
            s.add_items(5);
        }
        reg.snapshot()
    }

    #[test]
    fn json_has_all_sections_and_values() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"a.count\":7"));
        assert!(json.contains("\"b.depth\":{\"value\":2,\"min\":0,\"max\":4}"));
        assert!(json.contains("\"c.ns\":{\"count\":2,\"sum\":400"));
        assert!(json.contains("\"name\":\"stage.one\""));
        assert!(json.contains("\"items\":5"));
        // Trace placement fields are present; a lone span is a root.
        assert!(json.contains("\"parent\":null"), "{json}");
        assert!(json.contains("\"trace\":"), "{json}");
        // Balanced braces and quotes — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let snap = sample_snapshot();
        let jsonl = snap.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 1 counter + 1 gauge + 2 histograms (c.ns + stage.one.ns) + 1 span.
        assert_eq!(lines.len(), 5);
        for line in lines {
            assert!(line.starts_with("{\"kind\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn criterion_layout_matches_summarizer() {
        let snap = sample_snapshot();
        let tmp = std::env::temp_dir().join(format!("drai-telem-{}", std::process::id()));
        let n = write_criterion_estimates(&snap, &tmp).unwrap();
        assert_eq!(n, 2);
        let est = std::fs::read_to_string(tmp.join("c/ns/new/estimates.json")).unwrap();
        assert!(est.contains("\"mean\":{\"point_estimate\":200.0}"), "{est}");
        assert!(tmp.join("stage/one/ns/new/estimates.json").is_file());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
