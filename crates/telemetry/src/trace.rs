//! Trace-tree assembly and exporters.
//!
//! [`build_forest`] reassembles a flat span log into trees using each
//! record's `(trace, id, parent)` triple. Three exporters render the
//! forest:
//!
//! - [`to_chrome_json`] — Chrome trace-event JSON (`traceEvents` with
//!   `"ph": "X"` complete events), loadable in Perfetto or
//!   `chrome://tracing`. Each trace becomes one `pid`; concurrent
//!   subtrees (parallel workers) fan out across `tid` lanes while
//!   sequential chains share their parent's lane, so the viewer shows
//!   nesting by containment and parallelism by lane.
//! - [`to_folded`] — folded flamegraph stacks, one
//!   `root;child;leaf <self_ns>` line per distinct path, aggregated
//!   and suitable for `flamegraph.pl` / speedscope (the "count" is
//!   self-time in nanoseconds).
//! - [`critical_path_summary`] — the dominant chain from the longest
//!   root down, always following the child with the largest total
//!   duration, with self/total time per node.
//!
//! Self-time of a node is its duration minus the summed durations of
//! its direct children (saturating: overlapping parallel children can
//! legitimately sum past the parent's duration).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::export::escape_json;
use crate::SpanRecord;

/// One span with its children, as reassembled by [`build_forest`].
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The completed span at this node.
    pub record: SpanRecord,
    /// Child spans, sorted by start time.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total duration of this node (the span's own duration).
    pub fn total_ns(&self) -> u64 {
        self.record.dur_ns
    }

    /// Duration not accounted for by direct children. Saturates at 0
    /// when parallel children overlap.
    pub fn self_ns(&self) -> u64 {
        let child_sum: u64 = self.children.iter().map(|c| c.record.dur_ns).sum();
        self.record.dur_ns.saturating_sub(child_sum)
    }

    /// Number of nodes in this subtree, including self.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TraceNode::size).sum::<usize>()
    }

    /// Depth-first search for the first node with the given name.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.record.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All nodes in this subtree with the given name (DFS order).
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a TraceNode>) {
        if self.record.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }
}

/// Reassemble span records into trace trees.
///
/// Roots are spans with no parent, or whose parent record is missing
/// (e.g. the snapshot was taken before the parent span dropped).
/// Roots sort by `(trace, start)`; children by `(start, id)`.
pub fn build_forest(spans: &[SpanRecord]) -> Vec<TraceNode> {
    let present: BTreeSet<(u64, u64)> = spans.iter().map(|s| (s.trace.0, s.id.0)).collect();
    let mut children: BTreeMap<(u64, u64), Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent {
            Some(p) if present.contains(&(s.trace.0, p.0)) => {
                children.entry((s.trace.0, p.0)).or_default().push(s);
            }
            _ => roots.push(s),
        }
    }

    fn build(rec: &SpanRecord, children: &BTreeMap<(u64, u64), Vec<&SpanRecord>>) -> TraceNode {
        let mut kids: Vec<&SpanRecord> = children
            .get(&(rec.trace.0, rec.id.0))
            .cloned()
            .unwrap_or_default();
        kids.sort_by_key(|s| (s.start_ns, s.id.0));
        TraceNode {
            record: rec.clone(),
            children: kids.into_iter().map(|k| build(k, children)).collect(),
        }
    }

    roots.sort_by_key(|s| (s.trace.0, s.start_ns, s.id.0));
    roots.into_iter().map(|r| build(r, &children)).collect()
}

fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn chrome_event(rec: &SpanRecord, lane: u64, out: &mut String) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
         \"args\":{{\"span_id\":{},\"parent_id\":{},\"items\":{},\"bytes\":{}}}}}",
        escape_json(&rec.name),
        rec.trace.0,
        lane,
        ns_to_us(rec.start_ns),
        ns_to_us(rec.dur_ns.max(1)),
        rec.id.0,
        rec.parent.map(|p| p.0).unwrap_or(0),
        rec.items,
        rec.bytes
    );
}

fn place_chrome(
    node: &TraceNode,
    lane: u64,
    next_lane: &mut u64,
    events: &mut Vec<(u64, u64, String)>,
) {
    let mut buf = String::new();
    chrome_event(&node.record, lane, &mut buf);
    events.push((node.record.start_ns, node.record.id.0, buf));
    // A child stays on the parent's lane when no earlier sibling on
    // that lane is still running at its start; overlapping siblings
    // (parallel workers) get globally fresh lanes so distinct subtrees
    // can never collide.
    let mut parent_lane_busy_until = 0u64;
    for child in &node.children {
        let child_lane = if child.record.start_ns >= parent_lane_busy_until {
            parent_lane_busy_until = child.record.start_ns + child.record.dur_ns;
            lane
        } else {
            let fresh = *next_lane;
            *next_lane += 1;
            fresh
        };
        place_chrome(child, child_lane, next_lane, events);
    }
}

/// Render spans as a Chrome trace-event JSON document.
pub fn to_chrome_json(spans: &[SpanRecord]) -> String {
    let forest = build_forest(spans);
    let mut events: Vec<(u64, u64, String)> = Vec::with_capacity(spans.len());
    let mut next_lane = 0u64;
    for root in &forest {
        let lane = next_lane;
        next_lane += 1;
        place_chrome(root, lane, &mut next_lane, &mut events);
    }
    events.sort_by_key(|(start, id, _)| (*start, *id));
    let body: Vec<String> = events.into_iter().map(|(_, _, e)| e).collect();
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        body.join(",")
    )
}

/// Render spans as folded flamegraph stacks: one
/// `name;name;name <self_ns>` line per distinct path, lines sorted,
/// self-times aggregated across traces.
pub fn to_folded(spans: &[SpanRecord]) -> String {
    fn walk(node: &TraceNode, prefix: &str, agg: &mut BTreeMap<String, u64>) {
        let path = if prefix.is_empty() {
            node.record.name.clone()
        } else {
            format!("{prefix};{}", node.record.name)
        };
        *agg.entry(path.clone()).or_insert(0) += node.self_ns();
        for c in &node.children {
            walk(c, &path, agg);
        }
    }
    let mut agg = BTreeMap::new();
    for root in build_forest(spans) {
        walk(&root, "", &mut agg);
    }
    let mut out = String::new();
    for (path, self_ns) in agg {
        let _ = writeln!(out, "{path} {self_ns}");
    }
    out
}

/// One node on a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathNode {
    /// Span name.
    pub name: String,
    /// Total duration of the span.
    pub total_ns: u64,
    /// Duration not attributed to direct children.
    pub self_ns: u64,
    /// Items attributed to the span.
    pub items: u64,
    /// Bytes attributed to the span.
    pub bytes: u64,
}

/// The dominant chain from `root` down: at each node, follow the child
/// with the largest total duration (ties break toward the earlier
/// start).
pub fn critical_path(root: &TraceNode) -> Vec<CriticalPathNode> {
    let mut out = Vec::new();
    let mut node = root;
    loop {
        out.push(CriticalPathNode {
            name: node.record.name.clone(),
            total_ns: node.total_ns(),
            self_ns: node.self_ns(),
            items: node.record.items,
            bytes: node.record.bytes,
        });
        match node
            .children
            .iter()
            .max_by(|a, b| {
                a.record
                    .dur_ns
                    .cmp(&b.record.dur_ns)
                    // On equal durations prefer the earlier start, so
                    // max_by (which keeps the *last* max) needs the
                    // earlier start to compare greater.
                    .then(b.record.start_ns.cmp(&a.record.start_ns))
                    .then(b.record.id.0.cmp(&a.record.id.0))
            })
            .filter(|c| c.record.dur_ns > 0)
        {
            Some(child) => node = child,
            None => break,
        }
    }
    out
}

/// Human-readable critical-path summary for the longest root span in
/// the log (one line per node: name, total, self, share of root).
pub fn critical_path_summary(spans: &[SpanRecord]) -> String {
    let forest = build_forest(spans);
    let Some(root) = forest
        .iter()
        .max_by_key(|n| (n.record.dur_ns, std::cmp::Reverse(n.record.start_ns)))
    else {
        return "critical path: (no spans)\n".to_string();
    };
    let path = critical_path(root);
    let root_total = path[0].total_ns.max(1);
    let mut out = format!(
        "critical path (trace {}, {} nodes in forest, root `{}`, total {} ns):\n",
        root.record.trace.0,
        forest.iter().map(TraceNode::size).sum::<usize>(),
        root.record.name,
        root.record.dur_ns
    );
    for (depth, node) in path.iter().enumerate() {
        let pct = 100.0 * node.total_ns as f64 / root_total as f64;
        let _ = writeln!(
            out,
            "  {:indent$}{name}  total {total} ns  self {selfns} ns  ({pct:.1}% of root)",
            "",
            indent = depth * 2,
            name = node.name,
            total = node.total_ns,
            selfns = node.self_ns,
        );
    }
    out
}

/// Aggregate of all spans sharing a name within a forest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameAggregate {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed total duration.
    pub total_ns: u64,
    /// Summed self-time.
    pub self_ns: u64,
    /// Summed items.
    pub items: u64,
    /// Summed bytes.
    pub bytes: u64,
}

/// Per-name aggregates over a forest (used for per-stage breakdowns).
/// Note that nested spans with the same name double-count `total_ns`;
/// `self_ns` always partitions cleanly.
pub fn aggregate_by_name(forest: &[TraceNode]) -> BTreeMap<String, NameAggregate> {
    fn walk(node: &TraceNode, agg: &mut BTreeMap<String, NameAggregate>) {
        let e = agg.entry(node.record.name.clone()).or_default();
        e.count += 1;
        e.total_ns += node.total_ns();
        e.self_ns += node.self_ns();
        e.items += node.record.items;
        e.bytes += node.record.bytes;
        for c in &node.children {
            walk(c, agg);
        }
    }
    let mut agg = BTreeMap::new();
    for root in forest {
        walk(root, &mut agg);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, SpanId, TraceId};

    fn rec(
        name: &str,
        trace: u64,
        id: u64,
        parent: Option<u64>,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            start_ns,
            dur_ns,
            items: 0,
            bytes: 0,
        }
    }

    fn sample() -> Vec<SpanRecord> {
        vec![
            // run [0, 1000) with two sequential stages and two
            // parallel workers under stage b.
            rec("run.root", 1, 1, None, 0, 1000),
            rec("stage.a", 1, 2, Some(1), 0, 400),
            rec("stage.b", 1, 3, Some(1), 400, 600),
            rec("worker.task", 1, 4, Some(3), 410, 500),
            rec("worker.task", 1, 5, Some(3), 420, 500),
        ]
    }

    #[test]
    fn forest_shape_and_ordering() {
        let forest = build_forest(&sample());
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.record.name, "run.root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.name, "stage.a");
        assert_eq!(root.children[1].record.name, "stage.b");
        assert_eq!(root.children[1].children.len(), 2);
        assert_eq!(root.size(), 5);
        // self time: 1000 - (400 + 600) = 0 for root.
        assert_eq!(root.self_ns(), 0);
        // stage.b: 600 - (500 + 500) saturates to 0 (parallel kids).
        assert_eq!(root.children[1].self_ns(), 0);
        assert_eq!(root.children[0].self_ns(), 400);
        assert!(root.find("worker.task").is_some());
        let mut all = Vec::new();
        root.find_all("worker.task", &mut all);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn orphans_become_roots() {
        let spans = vec![
            rec("a.live", 1, 2, Some(99), 0, 10),
            rec("b.live", 2, 3, None, 5, 10),
        ];
        let forest = build_forest(&spans);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].record.name, "a.live");
    }

    #[test]
    fn chrome_lanes_share_sequential_fan_out_parallel() {
        let json = to_chrome_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 5);
        // Sequential stages share the root's lane 0.
        assert_eq!(
            json.matches("\"tid\":0,").count(),
            4,
            "root + 2 stages + first worker on lane 0: {json}"
        );
        // The overlapping second worker takes a fresh lane.
        assert_eq!(json.matches("\"tid\":1,").count(), 1, "{json}");
        // Same trace → same pid everywhere.
        assert_eq!(json.matches("\"pid\":1,").count(), 5);
        // µs timestamps keep ns precision as fractions.
        assert!(json.contains("\"ts\":0.400"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let folded = to_folded(&sample());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "run.root 0",
                "run.root;stage.a 400",
                "run.root;stage.b 0",
                "run.root;stage.b;worker.task 1000",
            ]
        );
    }

    #[test]
    fn critical_path_follows_dominant_child() {
        let forest = build_forest(&sample());
        let path = critical_path(&forest[0]);
        let names: Vec<&str> = path.iter().map(|n| n.name.as_str()).collect();
        // stage.b (600) beats stage.a (400); the two workers tie at
        // 500 so the earlier start wins.
        assert_eq!(names, vec!["run.root", "stage.b", "worker.task"]);
        assert_eq!(path[1].total_ns, 600);
        let summary = critical_path_summary(&sample());
        assert!(summary.contains("root `run.root`"), "{summary}");
        assert!(summary.contains("stage.b"), "{summary}");
        assert!(summary.contains("(100.0% of root)"), "{summary}");
    }

    #[test]
    fn aggregates_sum_per_name() {
        let agg = aggregate_by_name(&build_forest(&sample()));
        assert_eq!(agg["worker.task"].count, 2);
        assert_eq!(agg["worker.task"].total_ns, 1000);
        assert_eq!(agg["stage.a"].self_ns, 400);
    }

    #[test]
    fn live_registry_roundtrip() {
        let reg = Registry::new();
        {
            let run = reg.span("run.root");
            let _in_run = run.enter();
            reg.time("stage.a", || {
                let _leaf = reg.span("leaf.op");
            });
        }
        let forest = reg.snapshot().trace_forest();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.record.name, "run.root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].children[0].record.name, "leaf.op");
        let json = to_chrome_json(&reg.snapshot().spans);
        assert!(json.contains("\"name\":\"leaf.op\""));
    }
}
